//! # cen-dtn — contact-expectation routing for delay tolerant networks
//!
//! A complete, from-scratch Rust reproduction of *"On Using Contact
//! Expectation for Routing in Delay Tolerant Networks"* (Chen & Lou,
//! ICPP 2011): the EER and CR routing protocols, every baseline they are
//! compared against, and the full simulation stack (event-driven DTN engine,
//! map-driven bus mobility, contact-trace generation) needed to regenerate
//! the paper's evaluation.
//!
//! This crate is a facade: it re-exports the four library crates of the
//! workspace. Depend on the individual crates for finer-grained builds.
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] (`dtn-sim`) | deterministic event-driven DTN simulator |
//! | [`mobility`] (`dtn-mobility`) | road maps, bus lines, trajectories, contact traces |
//! | [`routing`] (`dtn-routing`) | Epidemic, Direct, First-Contact, PRoPHET, Spray-and-Wait/Focus, EBR, MaxProp |
//! | [`core`] (`ce-core`) | the paper's EER and CR protocols and their estimators |
//!
//! The experiment harness (crate `bench`, not re-exported here — it is a
//! binary-oriented crate) drives everything above through first-class
//! `ScenarioSpec`/`WorkloadSpec`/`ProtocolSpec` values and captures results
//! as serializable run records with multi-seed statistics
//! (`bench::report`); see `docs/ARCHITECTURE.md` for the full data flow.
//! The serializable face of a run's statistics,
//! [`StatsSnapshot`](sim::StatsSnapshot), is part of [`sim`] and this
//! facade's [`prelude`].
//!
//! ## Quickstart
//!
//! ```
//! use cen_dtn::prelude::*;
//!
//! // Build the paper's bus scenario with 16 nodes for 1200 simulated
//! // seconds, then run EER over it.
//! let scenario = ScenarioConfig::paper(16).sized(1200.0).build(7);
//! let workload = TrafficConfig::paper(1200.0).generate(16, 7);
//! let stats = Simulation::new(&scenario.trace, workload, SimConfig::paper(7), |id, n| {
//!     Box::new(Eer::new(id, n, 10))
//! })
//! .run();
//! assert!(stats.created > 0);
//! ```

#![warn(missing_docs)]

pub use ce_core as core;
pub use dtn_mobility as mobility;
pub use dtn_routing as routing;
pub use dtn_sim as sim;

/// One-stop imports for examples and downstream binaries.
pub mod prelude {
    pub use ce_core::{
        cr_factory, CommunityMap, ContactHistory, Cr, CrConfig, Eer, EerConfig, MemdSolver,
        MiMatrix,
    };
    pub use dtn_mobility::scenario::{Scenario, ScenarioConfig};
    pub use dtn_mobility::{
        BusConfig, ContactGenConfig, MapConfig, Point, RoadGraph, RwpConfig, ScenarioSpec,
        Trajectory, WorkloadSpec,
    };
    pub use dtn_routing::{
        DirectDelivery, Ebr, Epidemic, FirstContact, MaxProp, Prophet, SprayAndFocus, SprayAndWait,
    };
    pub use dtn_sim::prelude::*;
}
