//! Property-based integration tests: random-but-valid traces and workloads
//! must never break engine invariants, for any protocol family.

use cen_dtn::prelude::*;
use proptest::prelude::*;

/// Strategy: a valid trace plus a workload fitted to it.
fn scenario_strategy() -> impl Strategy<Value = (ContactTrace, Vec<MessageSpec>)> {
    trace_strategy().prop_flat_map(|trace| {
        let n = trace.n_nodes;
        let horizon = trace.duration;
        (Just(trace), workload_strategy(n, horizon))
    })
}

/// Strategy: a valid contact trace over `n` nodes. Per-pair contacts are
/// built from positive gaps and durations, so they can't overlap.
fn trace_strategy() -> impl Strategy<Value = ContactTrace> {
    (
        3u32..10,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 1u16..200, 1u16..60), 1..60),
    )
        .prop_map(|(n, raw)| {
            use std::collections::HashMap;
            let mut cursor: HashMap<(u32, u32), f64> = HashMap::new();
            let mut contacts = Vec::new();
            for (xa, xb, gap, dur) in raw {
                let a = u32::from(xa) % n;
                let b = u32::from(xb) % n;
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                let start = cursor.get(&key).copied().unwrap_or(0.0) + f64::from(gap);
                let end = start + f64::from(dur);
                cursor.insert(key, end);
                contacts.push(Contact::new(key.0, key.1, start, end));
            }
            let horizon = contacts.iter().map(|c| c.end.as_secs()).fold(0.0, f64::max) + 10.0;
            ContactTrace::new(n, horizon, contacts)
        })
}

/// Strategy: a workload over `n` nodes within `horizon`.
fn workload_strategy(n: u32, horizon: f64) -> impl Strategy<Value = Vec<MessageSpec>> {
    proptest::collection::vec((any::<u16>(), any::<u16>(), 0u16..1000, 1u32..5000), 0..20).prop_map(
        move |raw| {
            raw.into_iter()
                .filter_map(|(xs, xd, tfrac, ttl)| {
                    let src = u32::from(xs) % n;
                    let dst = u32::from(xd) % n;
                    if src == dst {
                        return None;
                    }
                    Some(MessageSpec {
                        create_at: SimTime::secs(horizon * f64::from(tfrac) / 1000.0),
                        src: NodeId(src),
                        dst: NodeId(dst),
                        size: 1000,
                        ttl: f64::from(ttl),
                    })
                })
                .collect()
        },
    )
}

fn check_invariants(label: &str, stats: &SimStats) {
    assert!(
        stats.delivered <= stats.created,
        "{label}: delivered > created"
    );
    assert!(
        stats.delivered <= stats.relayed,
        "{label}: delivered > relayed"
    );
    let dr = stats.delivery_ratio();
    assert!((0.0..=1.0).contains(&dr), "{label}: dr {dr}");
    let gp = stats.goodput();
    assert!((0.0..=1.0).contains(&gp), "{label}: gp {gp}");
    assert!(stats.latency_sum >= 0.0, "{label}: negative latency");
    assert!(
        stats.avg_hops() >= if stats.delivered > 0 { 1.0 } else { 0.0 },
        "{label}: delivered messages need ≥ 1 hop"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The engine upholds its invariants for every protocol family on
    /// arbitrary valid traces.
    #[test]
    fn engine_invariants_hold_for_all_protocols(
        (trace, workload) in scenario_strategy(),
        seedish in 0u16..1000,
    ) {
        prop_assert!(trace.validate().is_ok());

        type Factory = Box<dyn FnMut(NodeId, u32) -> Box<dyn Router>>;
        let cases: Vec<(&str, Factory)> = vec![
            ("epidemic", Box::new(|_, _| Box::new(Epidemic::new()) as Box<dyn Router>)),
            ("spray", Box::new(|_, _| Box::new(SprayAndWait::new(4)) as Box<dyn Router>)),
            ("eer", Box::new(|id, nn| Box::new(Eer::new(id, nn, 4)) as Box<dyn Router>)),
            ("maxprop", Box::new(|id, nn| Box::new(MaxProp::new(id, nn)) as Box<dyn Router>)),
            ("prophet", Box::new(|id, nn| Box::new(Prophet::new(id, nn)) as Box<dyn Router>)),
        ];
        for (label, mut factory) in cases {
            let stats = Simulation::new(
                &trace,
                workload.clone(),
                SimConfig::paper(u64::from(seedish)),
                |id, nn| factory(id, nn),
            )
            .run();
            check_invariants(label, &stats);
        }
    }

    /// Direct delivery is the goodput optimum: every relay is a delivery.
    #[test]
    fn direct_delivery_goodput_is_one((trace, workload) in scenario_strategy()) {
        let stats = Simulation::new(&trace, workload, SimConfig::paper(0), |_, _| {
            Box::new(DirectDelivery::new())
        })
        .run();
        prop_assert_eq!(stats.relayed, stats.delivered + stats.duplicate_deliveries);
    }

    /// Epidemic delivery dominates single-copy spray on the same trace.
    #[test]
    fn epidemic_dominates_wait_phase((trace, workload) in scenario_strategy()) {
        let flood = Simulation::new(&trace, workload.clone(), SimConfig::paper(0), |_, _| {
            Box::new(Epidemic::new())
        })
        .run();
        let single = Simulation::new(&trace, workload, SimConfig::paper(0), |_, _| {
            Box::new(SprayAndWait::new(1))
        })
        .run();
        // λ=1 spray == direct delivery; flooding reaches at least as many.
        prop_assert!(flood.delivered >= single.delivered);
    }
}
