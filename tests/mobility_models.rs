//! Integration: the protocols run over every mobility model in the
//! substrate (bus lines, random waypoint, SPMBM), not just the paper's bus
//! scenario — the contact-trace abstraction makes them interchangeable.

use cen_dtn::prelude::*;
use dtn_mobility::spmbm::SpmbmConfig;
use dtn_mobility::{generate_trace, MapConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_epidemic(trace: &ContactTrace, seed: u64) -> SimStats {
    let wl = TrafficConfig {
        interval_min: 15.0,
        interval_max: 25.0,
        msg_size: 10_000,
        ttl: 600.0,
        start: 0.0,
        end: trace.duration,
    }
    .generate(trace.n_nodes, seed);
    Simulation::new(trace, wl, SimConfig::paper(seed), |_, _| {
        Box::new(Epidemic::new())
    })
    .run()
}

#[test]
fn random_waypoint_feeds_the_engine() {
    let cfg = RwpConfig::square(500.0);
    let mut rng = SmallRng::seed_from_u64(3);
    let trajs: Vec<Trajectory> = (0..16).map(|_| cfg.trajectory(2_000.0, &mut rng)).collect();
    let trace = generate_trace(
        &trajs,
        2_000.0,
        ContactGenConfig {
            range: 30.0,
            dt: 0.5,
        },
    );
    assert!(trace.validate().is_ok());
    assert!(
        !trace.contacts.is_empty(),
        "16 walkers in 500 m with 30 m radios must meet"
    );
    let stats = run_epidemic(&trace, 3);
    assert!(stats.created > 0);
    assert!(
        stats.delivery_ratio() > 0.3,
        "epidemic on dense RWP should deliver plenty, got {}",
        stats.delivery_ratio()
    );
}

#[test]
fn spmbm_feeds_the_engine() {
    let g = MapConfig::tiny().generate(6);
    let cfg = SpmbmConfig {
        speed_min: 2.0,
        speed_max: 6.0,
        pause_max: 20.0,
    };
    let mut rng = SmallRng::seed_from_u64(8);
    let trajs: Vec<Trajectory> = (0..14)
        .map(|_| cfg.trajectory(&g, 2_000.0, &mut rng))
        .collect();
    let trace = generate_trace(
        &trajs,
        2_000.0,
        ContactGenConfig {
            range: 25.0,
            dt: 0.5,
        },
    );
    assert!(trace.validate().is_ok());
    assert!(!trace.contacts.is_empty());
    let stats = run_epidemic(&trace, 8);
    assert!(stats.delivery_ratio() > 0.2, "{}", stats.delivery_ratio());
}

/// EER runs on non-bus mobility too: the estimators make no assumptions
/// about the underlying movement process.
#[test]
fn eer_on_random_waypoint() {
    let cfg = RwpConfig::square(400.0);
    let mut rng = SmallRng::seed_from_u64(11);
    let trajs: Vec<Trajectory> = (0..12).map(|_| cfg.trajectory(2_500.0, &mut rng)).collect();
    let trace = generate_trace(
        &trajs,
        2_500.0,
        ContactGenConfig {
            range: 30.0,
            dt: 0.5,
        },
    );
    let wl = TrafficConfig {
        interval_min: 20.0,
        interval_max: 30.0,
        msg_size: 10_000,
        ttl: 800.0,
        start: 200.0, // warm-up so histories exist
        end: 2_500.0,
    }
    .generate(12, 11);
    let stats = Simulation::new(&trace, wl, SimConfig::paper(11), |id, n| {
        Box::new(Eer::new(id, n, 6))
    })
    .run();
    assert!(stats.created > 0);
    assert!(stats.delivered > 0, "EER must deliver on RWP");
    assert!(stats.relayed as f64 <= 12.0 * stats.created as f64);
}
