//! Integration test: the paper's Figure-1 motivating example.
//!
//! A recurring six-node schedule where the first-contact "best effort"
//! choice is a dead end and the only timely route is A→E→F→D. EER's
//! contact-expectation machinery must learn the good branch; first-contact
//! must fall into the trap.

use cen_dtn::prelude::*;

const A: u32 = 0;
const B: u32 = 1;
const D: u32 = 3;
const E: u32 = 4;
const F: u32 = 5;

fn figure1_trace(repeats: u32, period: f64) -> ContactTrace {
    let mut contacts = Vec::new();
    for k in 0..repeats {
        let t = f64::from(k) * period;
        contacts.push(Contact::new(A, B, t + 10.0, t + 14.0));
        contacts.push(Contact::new(B, 2, t + 20.0, t + 24.0));
        contacts.push(Contact::new(A, E, t + 30.0, t + 34.0));
        contacts.push(Contact::new(E, F, t + 50.0, t + 54.0));
        contacts.push(Contact::new(F, D, t + 70.0, t + 74.0));
    }
    ContactTrace::new(6, f64::from(repeats) * period, contacts)
}

fn workload(repeats: u32, period: f64) -> Vec<MessageSpec> {
    (10..repeats - 1)
        .map(|k| MessageSpec {
            create_at: SimTime::secs(f64::from(k) * period + 1.0),
            src: NodeId(A),
            dst: NodeId(D),
            size: 10_000,
            ttl: 150.0,
        })
        .collect()
}

#[test]
fn eer_learns_the_good_branch() {
    let trace = figure1_trace(40, 100.0);
    let wl = workload(40, 100.0);
    let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
        let cfg = EerConfig {
            lambda: 2,
            forward_hysteresis: 30.0,
            ..EerConfig::default()
        };
        Box::new(Eer::with_config(id, n, cfg))
    })
    .run();
    assert_eq!(
        stats.delivered, stats.created,
        "EER must deliver every message along A→E→F→D"
    );
    // One full chain is 3 hops within ~70 s of creation.
    assert!(
        stats.avg_latency() < 150.0,
        "latency {}",
        stats.avg_latency()
    );
    assert!(stats.avg_hops() >= 3.0 - 1e-9);
}

#[test]
fn first_contact_falls_into_the_trap() {
    let trace = figure1_trace(40, 100.0);
    let wl = workload(40, 100.0);
    let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
        Box::new(FirstContact::new())
    })
    .run();
    assert_eq!(
        stats.delivered, 0,
        "first contact hands every message to the dead-end branch"
    );
}

#[test]
fn cr_reaches_destination_community() {
    // Communities as in Fig. 1: C1 = {A, B}, C2 = {C, E}, C3 = {D, F}.
    let communities = std::sync::Arc::new(CommunityMap::new(vec![0, 0, 1, 2, 1, 2]));
    let trace = figure1_trace(40, 100.0);
    let wl = workload(40, 100.0);
    let stats = Simulation::new(&trace, wl, SimConfig::paper(0), cr_factory(communities, 2)).run();
    // E (community C2) relays towards F (C3, the destination community),
    // which hands custody straight to intra-community routing.
    assert!(
        stats.delivery_ratio() > 0.9,
        "CR delivery ratio {}",
        stats.delivery_ratio()
    );
}
