//! Integration: the full pipeline (map → bus lines → contacts → protocols →
//! metrics) on a reduced paper scenario, checking cross-protocol invariants
//! that the paper's Figure 2 rests on.

use cen_dtn::prelude::*;
use std::sync::Arc;

struct Outcome {
    name: &'static str,
    stats: SimStats,
}

fn run_all(n: u32, duration: f64, seed: u64) -> Vec<Outcome> {
    let scenario = ScenarioConfig::paper(n).sized(duration).build(seed);
    let workload = TrafficConfig::paper(duration).generate(n, seed);
    let map = Arc::new(CommunityMap::new(scenario.communities.clone()));

    type Factory = Box<dyn FnMut(NodeId, u32) -> Box<dyn Router>>;
    let cases: Vec<(&'static str, Factory)> = vec![
        (
            "EER",
            Box::new(|id, nn| Box::new(Eer::new(id, nn, 10)) as Box<dyn Router>),
        ),
        ("CR", Box::new(cr_factory(Arc::clone(&map), 10))),
        (
            "EBR",
            Box::new(|_, _| Box::new(Ebr::new(10)) as Box<dyn Router>),
        ),
        (
            "MaxProp",
            Box::new(|id, nn| Box::new(MaxProp::new(id, nn)) as Box<dyn Router>),
        ),
        (
            "SprayAndWait",
            Box::new(|_, _| Box::new(SprayAndWait::new(10)) as Box<dyn Router>),
        ),
        (
            "Epidemic",
            Box::new(|_, _| Box::new(Epidemic::new()) as Box<dyn Router>),
        ),
    ];
    cases
        .into_iter()
        .map(|(name, mut factory)| Outcome {
            name,
            stats: Simulation::new(
                &scenario.trace,
                workload.clone(),
                SimConfig::paper(seed),
                |id, nn| factory(id, nn),
            )
            .run(),
        })
        .collect()
}

#[test]
fn paper_scenario_cross_protocol_invariants() {
    let outcomes = run_all(32, 4000.0, 3);
    let get = |n: &str| {
        &outcomes
            .iter()
            .find(|o| o.name == n)
            .unwrap_or_else(|| panic!("{n} missing"))
            .stats
    };

    for o in &outcomes {
        let s = &o.stats;
        assert!(s.created > 0, "{}: no traffic", o.name);
        assert!(
            s.delivered <= s.created,
            "{}: delivered more than created",
            o.name
        );
        assert!(
            s.delivered <= s.relayed,
            "{}: every delivery is also a relay",
            o.name
        );
        let dr = s.delivery_ratio();
        assert!((0.0..=1.0).contains(&dr), "{}: dr {dr}", o.name);
        let gp = s.goodput();
        assert!((0.0..=1.0).contains(&gp), "{}: gp {gp}", o.name);
        assert!(s.delivery_ratio() > 0.05, "{}: nothing delivered", o.name);
    }

    // Flooding dominates delivery on a shared trace...
    let epidemic = get("Epidemic");
    let spray = get("SprayAndWait");
    assert!(
        epidemic.delivery_ratio() >= spray.delivery_ratio() - 0.02,
        "flooding can't be clearly worse than a 10-copy quota"
    );
    // ...but pays for it in relays.
    assert!(
        epidemic.relayed > 2 * spray.relayed,
        "epidemic must relay far more than quota spray"
    );
    // Quota protocols stay within λ relays per message plus single-copy
    // forwards — sanity ceiling: 3λ per created message.
    for name in ["EER", "CR", "EBR", "SprayAndWait"] {
        let s = get(name);
        assert!(
            s.relayed <= 3 * 10 * s.created,
            "{name}: relays {} exceed the quota sanity ceiling",
            s.relayed
        );
    }
    // The paper's headline overhead claim, in miniature: MaxProp's goodput
    // is well below EER's and CR's.
    assert!(
        get("MaxProp").goodput() < get("CR").goodput(),
        "MaxProp goodput should trail CR"
    );
    // CR gossips dramatically less control state than EER.
    assert!(
        get("CR").stats_control() * 4 < get("EER").stats_control(),
        "CR control bytes {} vs EER {}",
        get("CR").stats_control(),
        get("EER").stats_control()
    );
}

trait ControlBytes {
    fn stats_control(&self) -> u64;
}
impl ControlBytes for SimStats {
    fn stats_control(&self) -> u64 {
        self.control_bytes
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let a = run_all(24, 2500.0, 9);
    let b = run_all(24, 2500.0, 9);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats.delivered, y.stats.delivered, "{}", x.name);
        assert_eq!(x.stats.relayed, y.stats.relayed, "{}", x.name);
        assert_eq!(x.stats.drops_ttl, y.stats.drops_ttl, "{}", x.name);
        assert_eq!(
            x.stats.latency_sum.to_bits(),
            y.stats.latency_sum.to_bits(),
            "{}: latency sums differ bit-wise",
            x.name
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_all(24, 2500.0, 9);
    let b = run_all(24, 2500.0, 10);
    // At least one protocol must see a different outcome on different
    // mobility+traffic seeds (virtually certain; equality would indicate a
    // seeding bug).
    assert!(
        a.iter()
            .zip(&b)
            .any(|(x, y)| x.stats.delivered != y.stats.delivered
                || x.stats.relayed != y.stats.relayed),
        "seeds 9 and 10 produced identical outcomes for every protocol"
    );
}
