//! Integration: conservation invariants of the quota machinery.
//!
//! For quota protocols the logical copy count of a message is a conserved
//! quantity: replicas split between carriers but are never minted. With no
//! TTL expiry and no buffer pressure, every undelivered message's copies
//! across all buffers must sum to exactly λ.

use cen_dtn::prelude::*;
use std::collections::HashMap;

fn conservation_run(lambda: u32) -> (Simulation, Vec<MessageSpec>) {
    // A lively 12-node random schedule with long-lasting messages.
    let mut contacts = Vec::new();
    let mut t = 5.0;
    let mut x: u64 = 0x243f_6a88_85a3_08d3;
    let mut rng = move || {
        // xorshift for test-local determinism without pulling in rand.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..300 {
        let a = (rng() % 12) as u32;
        let mut b = (rng() % 12) as u32;
        while b == a {
            b = (rng() % 12) as u32;
        }
        contacts.push(Contact::new(a, b, t, t + 1.5));
        t += 2.0 + (rng() % 7) as f64;
    }
    let duration = t + 10.0;
    let trace = ContactTrace::new(12, duration, contacts);
    let workload: Vec<MessageSpec> = (0..20)
        .map(|k| MessageSpec {
            create_at: SimTime::secs(10.0 + f64::from(k) * 5.0),
            src: NodeId(k % 12),
            dst: NodeId((k + 5) % 12),
            size: 1000,
            ttl: 1e6, // never expires
        })
        .collect();
    let sim = Simulation::new(
        &trace,
        workload.clone(),
        SimConfig::paper(1),
        move |_, _| Box::new(SprayAndWait::new(lambda)),
    );
    (sim, workload)
}

#[test]
fn spray_quota_is_conserved() {
    let lambda = 8;
    let (mut sim, workload) = conservation_run(lambda);
    let stats = sim.run_to_end().clone();

    // Tally remaining copies per message across every buffer.
    let mut copies: HashMap<MessageId, u64> = HashMap::new();
    for node in 0..12u32 {
        for entry in sim.buffer(NodeId(node)).iter() {
            *copies.entry(entry.msg.id).or_default() += u64::from(entry.copies);
        }
    }
    for (idx, _) in workload.iter().enumerate() {
        let id = MessageId(idx as u32);
        let total = copies.get(&id).copied().unwrap_or(0);
        if stats.is_delivered(id) {
            // Forward-to-destination retires custody; whatever replicas were
            // still travelling elsewhere remain, but never more than λ.
            assert!(
                total <= u64::from(lambda),
                "{id}: {total} copies after delivery"
            );
        } else {
            assert_eq!(
                total,
                u64::from(lambda),
                "{id}: quota not conserved (have {total}, want λ = {lambda})"
            );
        }
    }
}

#[test]
fn buffers_never_exceed_capacity() {
    let (mut sim, _) = conservation_run(4);
    sim.run_to_end();
    for node in 0..12u32 {
        let buf = sim.buffer(NodeId(node));
        assert!(
            buf.used() <= buf.capacity(),
            "node {node} over capacity: {} > {}",
            buf.used(),
            buf.capacity()
        );
    }
}

#[test]
fn accounting_identity_holds() {
    // created = delivered + still-buffered-somewhere + dropped, where
    // "still buffered" counts distinct messages (TTL never fires here and
    // spray never drops, so drops must be zero).
    let (mut sim, workload) = conservation_run(6);
    let stats = sim.run_to_end().clone();
    assert_eq!(stats.drops_ttl, 0);
    assert_eq!(stats.drops_buffer, 0);
    assert_eq!(stats.drops_protocol, 0);
    assert_eq!(stats.created as usize, workload.len());

    let mut alive = std::collections::HashSet::new();
    for node in 0..12u32 {
        for entry in sim.buffer(NodeId(node)).iter() {
            alive.insert(entry.msg.id);
        }
    }
    // Every message is either delivered or still carried by someone (both
    // can hold: spray leaves replicas behind after a delivery).
    for (idx, _) in workload.iter().enumerate() {
        let id = MessageId(idx as u32);
        assert!(
            stats.is_delivered(id) || alive.contains(&id),
            "{id} vanished without delivery or drop"
        );
    }
}
