//! Render the paper's bus scenario as an SVG: streets, bus lines coloured by
//! district, and bus positions at a chosen instant.
//!
//! ```text
//! cargo run --release --example visualize_city -- [out.svg] [t_seconds]
//! ```

use cen_dtn::prelude::*;
use dtn_mobility::svg::SvgScene;

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "results/city.svg".into());
    let t: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000.0);

    let cfg = ScenarioConfig::paper(48).sized(t + 100.0);
    let scenario = cfg.build(1);
    let svg = SvgScene::new(&scenario.graph)
        .with_trajectory_points(&scenario.trajectories, t, &scenario.communities)
        .with_scale(0.3)
        .render();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, &svg).expect("write svg");
    println!(
        "wrote {out}: {} streets, 48 buses at t = {t:.0} s, {} bytes",
        scenario.graph.n_edges(),
        svg.len()
    );
    println!("open it in any browser; node colours are the four districts.");
}
