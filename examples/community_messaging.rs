//! Community messaging: demonstrate CR's claim — community-local routing
//! state buys almost the same delivery at a fraction of the control-plane
//! overhead of EER's full-matrix gossip.
//!
//! ```text
//! cargo run --release --example community_messaging
//! ```

use cen_dtn::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 48;
    let duration = 4000.0;
    let cfg = ScenarioConfig::paper(n).sized(duration);
    let scenario = cfg.build(7);
    let workload = TrafficConfig::paper(duration).generate(n, 7);

    // Community sizes from the scenario's ground truth.
    let mut sizes = vec![0u32; scenario.n_communities as usize];
    for &c in &scenario.communities {
        sizes[c as usize] += 1;
    }
    println!(
        "{} buses in {} communities (sizes {:?}), {} messages\n",
        n,
        scenario.n_communities,
        sizes,
        workload.len()
    );

    let map = Arc::new(CommunityMap::new(scenario.communities.clone()));

    // EER: full n×n meeting-interval matrix gossip.
    let eer = Simulation::new(
        &scenario.trace,
        workload.clone(),
        SimConfig::paper(7),
        |id, nn| Box::new(Eer::new(id, nn, 10)),
    )
    .run();
    // CR: intra-community matrices plus community-level expectations.
    let cr = Simulation::new(
        &scenario.trace,
        workload.clone(),
        SimConfig::paper(7),
        cr_factory(Arc::clone(&map), 10),
    )
    .run();

    println!(
        "{:<6}{:>10}{:>12}{:>10}{:>16}",
        "proto", "delivery", "latency(s)", "goodput", "control (MB)"
    );
    for (name, s) in [("EER", &eer), ("CR", &cr)] {
        println!(
            "{:<6}{:>10.3}{:>12.1}{:>10.4}{:>16.2}",
            name,
            s.delivery_ratio(),
            s.avg_latency(),
            s.goodput(),
            s.control_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    let ratio = eer.control_bytes as f64 / cr.control_bytes.max(1) as f64;
    println!(
        "\nCR exchanged {ratio:.1}x less control data than EER — the §IV claim\n\
         (\"high delivery ratio with less information exchange overhead\")."
    );
}
