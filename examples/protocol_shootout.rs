//! Protocol shootout: every router in the workspace — the paper's two, the
//! four protocols it compares against, and four extra baselines — on one
//! identical scenario, ranked by delivery ratio.
//!
//! ```text
//! cargo run --release --example protocol_shootout -- [n_nodes] [duration_s]
//! ```

use cen_dtn::prelude::*;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let duration: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4000.0);

    let scenario = ScenarioConfig::paper(n).sized(duration).build(5);
    let workload = TrafficConfig::paper(duration).generate(n, 5);
    let map = Arc::new(CommunityMap::new(scenario.communities.clone()));
    println!(
        "shootout: {n} nodes, {duration:.0} s, {} contacts, {} messages\n",
        scenario.trace.contacts.len(),
        workload.len()
    );

    type Factory = Box<dyn FnMut(NodeId, u32) -> Box<dyn Router>>;
    let map2 = Arc::clone(&map);
    let cases: Vec<(&str, Factory)> = vec![
        (
            "EER",
            Box::new(|id, nn| Box::new(Eer::new(id, nn, 10)) as Box<dyn Router>),
        ),
        ("CR", Box::new(cr_factory(map2, 10))),
        (
            "EBR",
            Box::new(|_, _| Box::new(Ebr::new(10)) as Box<dyn Router>),
        ),
        (
            "MaxProp",
            Box::new(|id, nn| Box::new(MaxProp::new(id, nn)) as Box<dyn Router>),
        ),
        (
            "SprayAndWait",
            Box::new(|_, _| Box::new(SprayAndWait::new(10)) as Box<dyn Router>),
        ),
        (
            "SprayAndFocus",
            Box::new(|_, nn| Box::new(SprayAndFocus::new(10, nn)) as Box<dyn Router>),
        ),
        (
            "Epidemic",
            Box::new(|_, _| Box::new(Epidemic::new()) as Box<dyn Router>),
        ),
        (
            "PRoPHET",
            Box::new(|id, nn| Box::new(Prophet::new(id, nn)) as Box<dyn Router>),
        ),
        (
            "FirstContact",
            Box::new(|_, _| Box::new(FirstContact::new()) as Box<dyn Router>),
        ),
        (
            "Direct",
            Box::new(|_, _| Box::new(DirectDelivery::new()) as Box<dyn Router>),
        ),
    ];

    let mut rows = Vec::new();
    for (name, mut factory) in cases {
        let stats = Simulation::new(
            &scenario.trace,
            workload.clone(),
            SimConfig::paper(5),
            |id, nn| factory(id, nn),
        )
        .run();
        rows.push((
            name,
            stats.delivery_ratio(),
            stats.avg_latency(),
            stats.goodput(),
            stats.relayed,
            stats.avg_hops(),
        ));
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!(
        "{:<4}{:<16}{:>10}{:>12}{:>10}{:>9}{:>7}",
        "#", "protocol", "delivery", "latency(s)", "goodput", "relays", "hops"
    );
    for (i, (name, dr, lat, gp, relays, hops)) in rows.iter().enumerate() {
        println!(
            "{:<4}{:<16}{:>10.3}{:>12.1}{:>10.4}{:>9}{:>7.2}",
            i + 1,
            name,
            dr,
            lat,
            gp,
            relays,
            hops
        );
    }
}
