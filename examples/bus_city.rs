//! Bus city: build the paper's vehicular scenario end-to-end and compare
//! EER against Spray-and-Wait and Epidemic on the very same contact trace.
//!
//! ```text
//! cargo run --release --example bus_city -- [n_nodes] [duration_s]
//! ```

use cen_dtn::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let duration: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4000.0);

    println!("building a downtown bus scenario: {n} buses, {duration:.0} s ...");
    let cfg = ScenarioConfig::paper(n).sized(duration);
    let scenario = cfg.build(42);
    let ts = scenario.trace.stats();
    println!(
        "  map: {} intersections, {:.1} km of streets",
        scenario.graph.n_vertices(),
        scenario.graph.total_length() / 1000.0
    );
    println!(
        "  contacts: {} ({} distinct pairs, mean duration {:.2} s, mean \
         inter-contact {:.0} s)\n",
        ts.contacts, ts.distinct_pairs, ts.mean_duration, ts.mean_intercontact
    );

    let workload = TrafficConfig::paper(duration).generate(n, 42);
    println!(
        "  workload: {} messages (25 KB, TTL 20 min)\n",
        workload.len()
    );

    type Factory = Box<dyn FnMut(NodeId, u32) -> Box<dyn Router>>;
    let cases: Vec<(&str, Factory)> = vec![
        (
            "EER (lambda=10)",
            Box::new(|id, nn| Box::new(Eer::new(id, nn, 10)) as Box<dyn Router>),
        ),
        (
            "SprayAndWait",
            Box::new(|_, _| Box::new(SprayAndWait::new(10)) as Box<dyn Router>),
        ),
        (
            "Epidemic",
            Box::new(|_, _| Box::new(Epidemic::new()) as Box<dyn Router>),
        ),
    ];
    println!(
        "{:<16}{:>10}{:>12}{:>10}{:>10}",
        "protocol", "delivery", "latency(s)", "goodput", "relays"
    );
    for (name, mut factory) in cases {
        let stats = Simulation::new(
            &scenario.trace,
            workload.clone(),
            SimConfig::paper(42),
            |id, nn| factory(id, nn),
        )
        .run();
        println!(
            "{:<16}{:>10.3}{:>12.1}{:>10.4}{:>10}",
            name,
            stats.delivery_ratio(),
            stats.avg_latency(),
            stats.goodput(),
            stats.relayed
        );
    }
    println!(
        "\nAll three ran on the identical contact trace; differences are purely\n\
         protocol behaviour. EER's contact-expectation edge over blind spraying\n\
         grows with scenario size — try `-- 120 8000` — while it keeps relaying\n\
         far less than Epidemic."
    );
}
