//! Trace archive & replay: generate a contact trace, serialise it to the
//! plain-text trace format, reload it, and verify a simulation over the
//! reloaded trace reproduces the original bit-for-bit. This is the workflow
//! for running the protocols over *real-world* contact datasets: convert
//! them to the trace format and replay.
//!
//! ```text
//! cargo run --release --example trace_replay -- [out.trace]
//! ```

use cen_dtn::prelude::*;

fn run_epidemic(trace: &ContactTrace, workload: &[MessageSpec]) -> (u64, u64, f64) {
    let stats = Simulation::new(trace, workload.to_vec(), SimConfig::paper(3), |_, _| {
        Box::new(Epidemic::new())
    })
    .run();
    (stats.delivered, stats.relayed, stats.latency_sum)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/bus_city.trace".to_string());

    // 1. Generate a scenario and archive its contact trace.
    let cfg = ScenarioConfig::paper(24).sized(2500.0);
    let scenario = cfg.build(11);
    let text = scenario.trace.to_text();
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&path, &text).expect("write trace");
    println!(
        "archived {} contacts to {path} ({} KiB)",
        scenario.trace.contacts.len(),
        text.len() / 1024
    );

    // 2. Reload and validate.
    let loaded = ContactTrace::from_text(&std::fs::read_to_string(&path).expect("read"))
        .expect("parse trace");
    loaded.validate().expect("loaded trace is well-formed");
    assert_eq!(loaded.contacts, scenario.trace.contacts);
    println!("reloaded and validated: {} contacts", loaded.contacts.len());

    // 3. Replay: identical trace + identical workload = identical results.
    let workload = TrafficConfig::paper(2500.0).generate(24, 11);
    let a = run_epidemic(&scenario.trace, &workload);
    let b = run_epidemic(&loaded, &workload);
    assert_eq!(a, b, "replay must be bit-for-bit deterministic");
    println!(
        "replay reproduced the run exactly: delivered={} relayed={} \
         latency_sum={:.3}",
        a.0, a.1, a.2
    );
}
