//! Quickstart: the paper's Figure-1 motivating example, hand-built.
//!
//! Six nodes A–F in three communities. Node A wants to reach node D before
//! the TTL expires; the only path in time is A→E→F→D, while the "best
//! effort" first contact (A→B) is a dead end. We run First-Contact (which
//! takes the dead end) and EER (whose contact expectation learns better)
//! over a trace where the pattern repeats, and print the outcome.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cen_dtn::prelude::*;

// Node roles from Figure 1.
const A: u32 = 0;
const B: u32 = 1;
const C: u32 = 2;
const D: u32 = 3;
const E: u32 = 4;
const F: u32 = 5;

/// Builds the recurring Figure-1 contact schedule: every `period` seconds,
/// A meets B (dead end), then A meets E, E meets F, F meets D.
fn figure1_trace(repeats: u32, period: f64) -> ContactTrace {
    let mut contacts = Vec::new();
    for k in 0..repeats {
        let t = f64::from(k) * period;
        contacts.push(Contact::new(A, B, t + 10.0, t + 14.0)); // the trap
        contacts.push(Contact::new(B, C, t + 20.0, t + 24.0)); // B only meets C
        contacts.push(Contact::new(A, E, t + 30.0, t + 34.0));
        contacts.push(Contact::new(E, F, t + 50.0, t + 54.0));
        contacts.push(Contact::new(F, D, t + 70.0, t + 74.0));
    }
    ContactTrace::new(6, f64::from(repeats) * period, contacts)
}

fn main() {
    let period = 100.0;
    let repeats = 40;
    let trace = figure1_trace(repeats, period);
    println!(
        "Figure-1 style trace: {} contacts over {:.0} s\n",
        trace.contacts.len(),
        trace.duration
    );

    // One message per cycle (after a warm-up) from A to D, tight TTL: it
    // must take the A→E→F→D chain within its own cycle.
    let mut workload = Vec::new();
    for k in 10..repeats - 1 {
        workload.push(MessageSpec {
            create_at: SimTime::secs(f64::from(k) * period + 1.0),
            src: NodeId(A),
            dst: NodeId(D),
            size: 10_000,
            ttl: 150.0,
        });
    }

    type Factory = Box<dyn FnMut(NodeId, u32) -> Box<dyn Router>>;
    let cases: Vec<(&str, Factory)> = vec![
        (
            "FirstContact",
            Box::new(|_, _| Box::new(FirstContact::new()) as Box<dyn Router>),
        ),
        (
            "EER (lambda=2)",
            Box::new(|id, n| {
                // The toy schedule is perfectly periodic, so the anti-thrash
                // hysteresis tuned for noisy city traces can be tightened.
                let cfg = EerConfig {
                    lambda: 2,
                    forward_hysteresis: 30.0,
                    ..EerConfig::default()
                };
                Box::new(Eer::with_config(id, n, cfg)) as Box<dyn Router>
            }),
        ),
    ];
    for (name, mut factory) in cases {
        let stats = Simulation::new(&trace, workload.clone(), SimConfig::paper(0), |id, n| {
            factory(id, n)
        })
        .run();
        println!(
            "{name:<15} delivered {:>2}/{:<2} ({:>5.1} %), mean latency {:>6.1} s, \
             goodput {:.3}",
            stats.delivered,
            stats.created,
            100.0 * stats.delivery_ratio(),
            stats.avg_latency(),
            stats.goodput()
        );
    }

    println!(
        "\nEER's contact histories learn that E (not B) leads towards D: after a\n\
         few cycles its MEMD for the A->E->F->D chain beats the dead-end branch,\n\
         which is exactly the paper's Figure-1 motivation."
    );
}
