//! # dtn-testutil — shared generators for the differential test suites
//!
//! The bench-layer property tests (`protocol_spec.rs`, `record_replay.rs`,
//! `scenario_families.rs`, `fabric_equivalence.rs`) all need the same raw
//! material: "an arbitrary but valid protocol spec", "an arbitrary sweep
//! cell", "a small scenario-family matrix with real forwarding work". Until
//! this crate, each test file grew its own copy; this crate is the one
//! canonical source, so every differential test draws specs from the same
//! distribution and a generator fix propagates everywhere at once.
//!
//! Three layers:
//!
//! * deterministic **builders** ([`build_protocol_spec`], [`run_spec_cell`],
//!   [`specs_for`]) — pure functions from raw strategy draws to spec
//!   values, usable without proptest;
//! * proptest **strategies** ([`arb_protocol_spec`], [`arb_run_spec`],
//!   [`arb_spec_matrix`]) — the builders wired to the canonical draw
//!   ranges;
//! * **fixtures** ([`replay_trace`], [`family_matrix`], [`temp_trace`]) —
//!   shared synthetic scenarios and artifact paths.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ce_core::{BufferPolicy, EmdMode};
use dtn_bench::{
    ProbeSpec, ProtocolKind, ProtocolParams, ProtocolSpec, RunSpec, ScenarioSpec, WorkloadSpec,
};
use dtn_sim::{Contact, ContactTrace};
use proptest::collection;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Protocols drawn by the cell generators: a quota family, pure flooding
/// and a history-based one, so generated runs exercise different event
/// mixes (splits, refusals, protocol drops).
pub const PROTOCOLS: &[&str] = &[
    "eer:lambda=4",
    "epidemic",
    "eer:lambda=2,alpha=0.35",
    "prophet",
];

/// Workloads drawn by the cell generators.
pub const WORKLOADS: &[&str] = &["paper", "hotspot"];

/// Deterministically builds a valid protocol spec from raw strategy draws:
/// a family index plus enough scalars to perturb every tunable the CLI
/// grammar exposes.
///
/// Draw ranges (enforced by [`arb_protocol_spec`], assumed here): `frac` in
/// `[0, 1)`, `secs` a positive seconds-scale value, `sel_a`/`sel_b` 3-way
/// selectors, `small` a small positive integer.
#[allow(clippy::too_many_arguments)]
pub fn build_protocol_spec(
    kind_i: u32,
    lambda: u32,
    window: usize,
    frac: f64,
    secs: f64,
    sel_a: u8,
    sel_b: u8,
    small: u32,
) -> ProtocolSpec {
    let kind = ProtocolKind::ALL[kind_i as usize % ProtocolKind::ALL.len()];
    let mut spec = ProtocolSpec::paper(kind);
    match &mut spec.params {
        ProtocolParams::Eer(c) => {
            c.lambda = lambda;
            c.alpha = 0.05 + frac;
            c.window = window;
            c.forward_hysteresis = secs;
            c.refresh = secs * 0.5;
            if sel_a == 1 {
                c.emd_mode = EmdMode::MeanInterval;
            }
            if sel_b == 1 {
                c.buffer_policy = BufferPolicy::LeastRemainingValue;
            }
            if sel_a == 2 {
                c.adaptive_lambda = Some((small, small + 7));
            }
        }
        ProtocolParams::Cr(c) => {
            c.lambda = lambda;
            c.alpha = 0.05 + frac;
            c.window = window;
            c.forward_hysteresis = secs;
            c.probability_hysteresis = frac;
            c.refresh = secs * 2.0;
            if sel_b == 1 {
                c.buffer_policy = BufferPolicy::LeastRemainingValue;
            }
        }
        ProtocolParams::Ebr(c) => {
            c.lambda = lambda;
            c.alpha = frac;
            c.window = secs;
        }
        ProtocolParams::MaxProp(c) => {
            c.hop_threshold = small;
            c.cost_refresh = secs;
        }
        ProtocolParams::SprayAndWait { lambda: l, binary } => {
            *l = lambda;
            *binary = sel_a != 1;
        }
        ProtocolParams::SprayAndFocus(c) => {
            c.lambda = lambda;
            c.utility_threshold = secs;
            c.transitivity_penalty = secs * 3.0;
        }
        ProtocolParams::Prophet(c) => {
            c.p_init = 0.05 + frac * 0.9;
            c.beta = frac;
            c.gamma = 0.5 + frac * 0.49;
            c.time_unit = secs;
        }
        ProtocolParams::Epidemic | ProtocolParams::Direct | ProtocolParams::FirstContact => {}
    }
    if sel_a == 0 {
        spec.buffer = Some(u64::from(small) * 4096);
    }
    if sel_b == 2 {
        spec.ttl = Some(secs * 10.0);
    }
    spec
}

/// The canonical strategy over the whole tuned-protocol space: every
/// family, every tunable perturbed, always grammatically round-trippable.
pub fn arb_protocol_spec() -> impl Strategy<Value = ProtocolSpec> {
    (
        (0u32..10, 1u32..64, 1usize..128),
        (0.0f64..1.0, 0.25f64..5000.0),
        (0u8..3, 0u8..3, 1u32..32),
    )
        .prop_map(
            |((kind_i, lambda, window), (frac, secs), (sel_a, sel_b, small))| {
                build_protocol_spec(kind_i, lambda, window, frac, secs, sel_a, sel_b, small)
            },
        )
}

/// Deterministically builds one sweep cell from raw strategy draws: a
/// paper/rwp scenario (by `family % 2`), a protocol from [`PROTOCOLS`], a
/// workload from [`WORKLOADS`] and a probe set selected by
/// `probe_sel % 4` (none / time series / time series + latency / latency).
///
/// This is the one canonical arbitrary-`RunSpec` source: keep the draw
/// small (n in the low tens, duration a few hundred seconds) so
/// property suites that *run* the cells stay fast.
pub fn run_spec_cell(
    family: usize,
    n: u32,
    duration: f64,
    protocol: usize,
    workload: usize,
    probe_sel: u8,
) -> RunSpec {
    let scenario = match family % 2 {
        0 => ScenarioSpec::parse("paper", n).expect("paper family"),
        _ => ScenarioSpec::parse("rwp", n).expect("rwp family"),
    };
    let protocol = PROTOCOLS[protocol % PROTOCOLS.len()];
    let workload = WorkloadSpec::parse(WORKLOADS[workload % WORKLOADS.len()]).expect("workload");
    let probes = match probe_sel % 4 {
        0 => vec![],
        1 => vec![ProbeSpec::TimeSeries { dt: 50.0 }],
        2 => vec![ProbeSpec::TimeSeries { dt: 50.0 }, ProbeSpec::LatencyHist],
        _ => vec![ProbeSpec::LatencyHist],
    };
    RunSpec::on(
        protocol,
        scenario,
        ProtocolSpec::parse(protocol).expect("protocol"),
    )
    .with_workload(workload)
    .with_duration(duration)
    .with_probes(probes)
}

/// The canonical strategy over single sweep cells (see [`run_spec_cell`]).
pub fn arb_run_spec() -> impl Strategy<Value = RunSpec> {
    (
        (0usize..2, 8u32..14, 300u32..700),
        (0usize..PROTOCOLS.len(), 0usize..WORKLOADS.len(), 0u8..4),
    )
        .prop_map(|((family, n, duration), (protocol, workload, probe_sel))| {
            run_spec_cell(
                family,
                n,
                f64::from(duration),
                protocol,
                workload,
                probe_sel,
            )
        })
}

/// A strategy over small random spec matrices — `len` cells drawn from
/// [`arb_run_spec`] — the input shape of the fabric differential tests.
pub fn arb_spec_matrix(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<RunSpec>> {
    collection::vec(arb_run_spec(), len)
}

/// A unique temp-file path for a TRACE/1.0 artifact; the caller owns
/// cleanup. Paths are namespaced by process id so parallel test binaries
/// never collide.
pub fn temp_trace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dtn_testutil_artifacts");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}_{}.trace", std::process::id()))
}

/// Builds the live (unrecorded) and recording variants of one random cell
/// for the record → replay contract: both carry the time-series + latency
/// probes, the recorded one additionally streams into `artifact`.
pub fn specs_for(
    family: usize,
    n: u32,
    duration: f64,
    protocol: usize,
    workload: usize,
    artifact: &std::path::Path,
) -> (RunSpec, RunSpec) {
    let scenario = match family % 2 {
        0 => ScenarioSpec::parse("paper", n).expect("paper family"),
        _ => ScenarioSpec::parse("rwp", n).expect("rwp family"),
    };
    let protocol = ProtocolSpec::parse(PROTOCOLS[protocol % PROTOCOLS.len()]).expect("protocol");
    let workload = WorkloadSpec::parse(WORKLOADS[workload % WORKLOADS.len()]).expect("workload");
    let live = RunSpec::on("live", scenario, protocol)
        .with_workload(workload)
        .with_duration(duration)
        .with_probe(ProbeSpec::TimeSeries { dt: 50.0 })
        .with_probe(ProbeSpec::LatencyHist);
    let recorded = live.clone().with_probe(ProbeSpec::EventLog {
        path: artifact.display().to_string(),
    });
    (live, recorded)
}

/// A small synthetic recording shared by the trace-replay cells: a
/// deterministic ring of repeating meetings over 8 nodes / 1 200 s so
/// every protocol has real forwarding work to do.
pub fn replay_trace() -> Arc<ContactTrace> {
    let mut contacts = Vec::new();
    for round in 0..10u32 {
        let t0 = f64::from(round) * 110.0;
        for i in 0..8u32 {
            let (a, b) = (i, (i + 1) % 8);
            let start = t0 + f64::from(i) * 5.0;
            contacts.push(Contact::new(a, b, start, start + 20.0));
        }
    }
    Arc::new(ContactTrace::new(8, 1_200.0, contacts))
}

/// One matrix mixing all three scenario families (and a non-paper
/// workload) as separate series, for two protocols — the standard
/// cross-family sweep the thread-invariance tests run.
pub fn family_matrix() -> Vec<RunSpec> {
    let trace = replay_trace();
    let mut specs = Vec::new();
    for (label, proto) in [
        ("EER", ProtocolSpec::paper(ProtocolKind::Eer).with_lambda(6)),
        ("Epidemic", ProtocolSpec::paper(ProtocolKind::Epidemic)),
    ] {
        specs.push(
            RunSpec::on(
                format!("{label} @ paper"),
                ScenarioSpec::paper(8),
                proto.clone(),
            )
            .with_duration(1_200.0),
        );
        specs.push(
            RunSpec::on(
                format!("{label} @ rwp"),
                ScenarioSpec::rwp(10),
                proto.clone(),
            )
            .with_duration(1_200.0),
        );
        specs.push(RunSpec::on(
            format!("{label} @ trace"),
            ScenarioSpec::trace(Arc::clone(&trace)),
            proto.clone(),
        ));
        specs.push(
            RunSpec::on(
                format!("{label} @ paper/hotspot"),
                ScenarioSpec::paper(8),
                proto,
            )
            .with_workload(WorkloadSpec::hotspot())
            .with_duration(1_200.0),
        );
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every generated protocol spec must survive the CLI grammar: the
    /// generators exist to feed round-trip properties, so a spec that
    /// cannot re-parse is a generator bug, not a test finding.
    #[test]
    fn generated_protocol_specs_reparse() {
        let mut rng = proptest::TestRng::deterministic(11);
        let strat = arb_protocol_spec();
        for _ in 0..256 {
            let spec = strat.sample(&mut rng);
            let shown = spec.to_string();
            let parsed = ProtocolSpec::parse(&shown)
                .unwrap_or_else(|e| panic!("generated `{shown}` failed to re-parse: {e}"));
            assert_eq!(parsed, spec);
        }
    }

    /// Generated cells stay inside the fast envelope the property suites
    /// assume, and the probe selector covers all four probe sets.
    #[test]
    fn generated_cells_stay_small_and_cover_probe_sets() {
        let mut rng = proptest::TestRng::deterministic(12);
        let strat = arb_run_spec();
        let mut seen = [false; 4];
        for _ in 0..128 {
            let spec = strat.sample(&mut rng);
            let d = spec.duration.expect("cells always bound their horizon");
            assert!((300.0..700.0).contains(&d));
            let class = match spec.probes.as_slice() {
                [] => 0,
                [ProbeSpec::TimeSeries { .. }] => 1,
                [ProbeSpec::TimeSeries { .. }, ProbeSpec::LatencyHist] => 2,
                [ProbeSpec::LatencyHist] => 3,
                other => panic!("unexpected probe set: {other:?}"),
            };
            seen[class] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "probe selector never drew some probe set: {seen:?}"
        );
    }

    #[test]
    fn family_matrix_spans_families_and_workloads() {
        let specs = family_matrix();
        assert_eq!(specs.len(), 8);
        let series: Vec<&str> = specs.iter().map(|s| s.series.as_str()).collect();
        assert!(series.iter().any(|s| s.contains("@ trace")));
        assert!(series.iter().any(|s| s.contains("@ rwp")));
        assert!(series.iter().any(|s| s.contains("hotspot")));
    }
}
