//! Property-based tests across the baseline protocols: no valid trace or
//! workload may break protocol-level invariants.

use dtn_routing::*;
use dtn_sim::prelude::*;
use proptest::prelude::*;

fn trace_and_workload() -> impl Strategy<Value = (ContactTrace, Vec<MessageSpec>)> {
    (
        4u32..9,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 1u16..120, 1u16..40), 1..50),
    )
        .prop_flat_map(|(n, raw)| {
            let mut cursor: std::collections::HashMap<(u32, u32), f64> = Default::default();
            let mut contacts = Vec::new();
            for (xa, xb, gap, dur) in raw {
                let a = u32::from(xa) % n;
                let b = u32::from(xb) % n;
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                let start = cursor.get(&key).copied().unwrap_or(0.0) + f64::from(gap);
                let end = start + f64::from(dur);
                cursor.insert(key, end);
                contacts.push(Contact::new(key.0, key.1, start, end));
            }
            let horizon = contacts.iter().map(|c| c.end.as_secs()).fold(0.0, f64::max) + 5.0;
            let trace = ContactTrace::new(n, horizon, contacts);
            let wl = proptest::collection::vec(
                (any::<u16>(), any::<u16>(), 0u16..1000, 60u32..2000),
                0..15,
            )
            .prop_map(move |raw| {
                raw.into_iter()
                    .filter_map(|(xs, xd, frac, ttl)| {
                        let src = u32::from(xs) % n;
                        let dst = u32::from(xd) % n;
                        (src != dst).then(|| MessageSpec {
                            create_at: SimTime::secs(horizon * f64::from(frac) / 1000.0),
                            src: NodeId(src),
                            dst: NodeId(dst),
                            size: 500,
                            ttl: f64::from(ttl),
                        })
                    })
                    .collect::<Vec<_>>()
            });
            (Just(trace), wl)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spray-and-Wait with λ=k relays at most (k-1) spray hops plus one
    /// delivery per replica for each message — a hard quota ceiling.
    #[test]
    fn spray_relays_bounded_by_quota((trace, wl) in trace_and_workload(), lambda in 1u32..9) {
        let created = wl.len() as u64;
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(SprayAndWait::new(lambda))
        })
        .run();
        // Spray transfers strictly decrease per-carrier copy counts, and a
        // message can be transferred at most λ-1 times in the spray phase
        // plus λ direct deliveries (each replica once).
        prop_assert!(
            stats.relayed <= created * u64::from(2 * lambda),
            "relayed {} exceeds quota bound {}",
            stats.relayed,
            created * u64::from(2 * lambda)
        );
    }

    /// EBR shares the quota ceiling (it only ever splits or delivers).
    #[test]
    fn ebr_relays_bounded_by_quota((trace, wl) in trace_and_workload()) {
        let created = wl.len() as u64;
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(Ebr::new(8))
        })
        .run();
        prop_assert!(stats.relayed <= created * 16);
    }

    /// PRoPHET predictabilities remain within [0, 1] throughout any run
    /// (checked behaviourally: delivery/goodput invariants hold and the run
    /// never panics the debug asserts inside the engine).
    #[test]
    fn prophet_runs_clean((trace, wl) in trace_and_workload()) {
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
            Box::new(Prophet::new(id, n))
        })
        .run();
        prop_assert!(stats.delivered <= stats.created);
        prop_assert!((0.0..=1.0).contains(&stats.goodput()));
    }

    /// MaxProp's flooded acks never lose deliveries: the set of delivered
    /// messages under MaxProp is identical whether or not duplicates occur,
    /// and delivered ≤ epidemic's delivered on the same trace.
    #[test]
    fn maxprop_bounded_by_epidemic((trace, wl) in trace_and_workload()) {
        let mp = Simulation::new(&trace, wl.clone(), SimConfig::paper(0), |id, n| {
            Box::new(MaxProp::new(id, n))
        })
        .run();
        let ep = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(Epidemic::new())
        })
        .run();
        // Epidemic is the delivery upper bound among flooding protocols as
        // long as buffers don't overflow (sizes here are tiny).
        prop_assert!(mp.delivered <= ep.delivered + 1,
            "MaxProp {} vs Epidemic {}", mp.delivered, ep.delivered);
    }
}
