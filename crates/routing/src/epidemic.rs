//! Epidemic routing (Vahdat & Becker, 2000): replicate everything to
//! everyone. Delivery-ratio upper bound under infinite resources; the
//! overhead baseline every quota protocol is measured against.

use crate::util::deliver_copy;
use dtn_sim::{ContactCtx, Router, TransferPlan};
use std::any::Any;

/// Epidemic (flooding) router.
#[derive(Debug, Default)]
pub struct Epidemic;

impl Epidemic {
    /// Creates an epidemic router.
    pub fn new() -> Self {
        Epidemic
    }
}

impl Router for Epidemic {
    fn label(&self) -> &'static str {
        "Epidemic"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_contact_up(&mut self, ctx: &mut ContactCtx<'_>, _peer: &mut dyn Router) {
        // Summary-vector exchange: one id per buffered message.
        ctx.control_bytes(crate::util::control_size(ctx.buf.len()));
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        if let Some(plan) = deliver_copy(ctx) {
            return Some(plan);
        }
        // Replicate anything the peer misses, oldest first.
        ctx.buf
            .iter()
            .find(|e| ctx.can_offer(e.msg.id))
            .map(|e| TransferPlan::copy(e.msg.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    fn chain_trace() -> ContactTrace {
        // 0-1, then 1-2, then 2-3: epidemic relays along the chain.
        ContactTrace::new(
            4,
            200.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(1, 2, 30.0, 35.0),
                Contact::new(2, 3, 50.0, 55.0),
            ],
        )
    }

    #[test]
    fn floods_along_chain() {
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(3),
            size: 1000,
            ttl: 190.0,
        }];
        let stats = Simulation::new(&chain_trace(), wl, SimConfig::paper(0), |_, _| {
            Box::new(Epidemic::new())
        })
        .run();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 3, "relayed at each hop");
        assert!((stats.goodput() - 1.0 / 3.0).abs() < 1e-9);
        assert!(stats.control_bytes > 0, "summary vectors accounted");
    }

    #[test]
    fn sender_keeps_copy_after_replication() {
        let trace = ContactTrace::new(3, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let trace2 = trace.clone();
        let sim = Simulation::new(&trace2, wl, SimConfig::paper(0), |_, _| {
            Box::new(Epidemic::new())
        });
        let stats = sim.run();
        assert_eq!(stats.relayed, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn does_not_resend_messages_peer_has() {
        // Two long overlapping contacts of the same pair would trigger
        // re-sends if the peer-buffer check were missing; the engine's
        // validate_plan would panic (debug) on an invalid plan.
        let trace = ContactTrace::new(
            2,
            300.0,
            vec![
                Contact::new(0, 1, 10.0, 100.0),
                Contact::new(0, 1, 150.0, 250.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1000,
            ttl: 290.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(Epidemic::new())
        })
        .run();
        // Delivered during the first contact; the second contact re-delivers
        // once more (destinations do not buffer), counted as duplicate.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.duplicate_deliveries, 1);
    }
}
