//! Spray-and-Focus (Spyropoulos, Psounis & Raghavendra, PerCom WS'07).
//!
//! Spray phase as in Spray-and-Wait; but a node holding a single copy
//! (*focus* phase) forwards it to encounters with higher utility for the
//! destination instead of waiting. Utility is the classic last-encounter
//! timer with transitive updates: smaller time-since-last-meeting of the
//! destination is better.

use crate::util::deliver_forward;
use dtn_sim::{ContactCtx, Message, NodeId, Router, SimTime, TransferPlan};
use std::any::Any;

/// Spray-and-Focus tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SprayFocusConfig {
    /// Quota λ: initial number of replicas per message.
    pub lambda: u32,
    /// Forwarding threshold in seconds: forward when the peer's timer is
    /// smaller than ours by more than this.
    pub utility_threshold: f64,
    /// Transitivity penalty in seconds: an indirectly learned timer is
    /// adopted as if it were this much older than the witness's direct
    /// observation. This is the paper's `t_m(d_{A,B})` term — without it,
    /// exchanged timers become equal and focus forwarding never fires.
    pub transitivity_penalty: f64,
}

impl Default for SprayFocusConfig {
    fn default() -> Self {
        SprayFocusConfig {
            lambda: 10,
            utility_threshold: 30.0,
            transitivity_penalty: 300.0,
        }
    }
}

/// Spray-and-Focus router.
#[derive(Debug)]
pub struct SprayAndFocus {
    lambda: u32,
    /// Last time this node met each other node (`None` = never).
    last_enc: Vec<Option<SimTime>>,
    /// Snapshot of current peers' timer ages taken at contact-up.
    peer_age: Vec<(NodeId, Vec<f64>)>,
    /// Forwarding threshold in seconds (see
    /// [`SprayFocusConfig::utility_threshold`]).
    pub utility_threshold: f64,
    /// Transitivity penalty in seconds (see
    /// [`SprayFocusConfig::transitivity_penalty`]).
    pub transitivity_penalty: f64,
}

impl SprayAndFocus {
    /// Creates a Spray-and-Focus router for a network of `n` nodes with the
    /// default utility parameters.
    ///
    /// # Panics
    /// Panics if `lambda` is zero.
    pub fn new(lambda: u32, n: u32) -> Self {
        Self::with_config(
            SprayFocusConfig {
                lambda,
                ..SprayFocusConfig::default()
            },
            n,
        )
    }

    /// Creates a Spray-and-Focus router with explicit parameters.
    ///
    /// # Panics
    /// Panics if `cfg.lambda` is zero.
    pub fn with_config(cfg: SprayFocusConfig, n: u32) -> Self {
        assert!(
            cfg.lambda >= 1,
            "Spray-and-Focus needs a quota of at least 1"
        );
        SprayAndFocus {
            lambda: cfg.lambda,
            last_enc: vec![None; n as usize],
            peer_age: Vec::new(),
            utility_threshold: cfg.utility_threshold,
            transitivity_penalty: cfg.transitivity_penalty,
        }
    }

    /// Age (seconds since last encounter) of `node`'s timer at `now`.
    fn age_of(&self, node: NodeId, now: SimTime) -> f64 {
        match self.last_enc[node.idx()] {
            Some(t) => now.since(t),
            None => f64::INFINITY,
        }
    }

    fn peer_ages(&self, peer: NodeId) -> Option<&[f64]> {
        self.peer_age
            .iter()
            .find(|(id, _)| *id == peer)
            .map(|(_, v)| v.as_slice())
    }
}

impl Router for SprayAndFocus {
    fn label(&self) -> &'static str {
        "SprayAndFocus"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn initial_copies(&self, _msg: &Message) -> u32 {
        self.lambda
    }

    fn on_contact_up(&mut self, ctx: &mut ContactCtx<'_>, peer: &mut dyn Router) {
        let peer_router = peer
            .as_any_mut()
            .downcast_mut::<SprayAndFocus>()
            .expect("all nodes run Spray-and-Focus");
        self.last_enc[ctx.peer.idx()] = Some(ctx.now);
        // Transitive timer update: adopt the peer's observation aged by the
        // transitivity penalty, if it still beats what we have. The penalty
        // keeps direct witnesses strictly better carriers than gossip
        // recipients.
        for x in 0..self.last_enc.len() {
            if let Some(pt) = peer_router.last_enc[x] {
                let adopted = pt + (-self.transitivity_penalty);
                if self.last_enc[x].is_none_or(|mt| adopted > mt) && x != ctx.me.idx() {
                    self.last_enc[x] = Some(adopted);
                }
            }
        }
        let ages: Vec<f64> = (0..self.last_enc.len())
            .map(|x| peer_router.age_of(NodeId(x as u32), ctx.now))
            .collect();
        self.peer_age.retain(|(id, _)| *id != ctx.peer);
        self.peer_age.push((ctx.peer, ages));
        ctx.control_bytes(crate::util::control_size(self.last_enc.len()));
    }

    fn on_contact_down(&mut self, _ctx: &mut dtn_sim::NodeCtx<'_>, peer: NodeId) {
        self.peer_age.retain(|(id, _)| *id != peer);
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        if let Some(plan) = deliver_forward(ctx) {
            return Some(plan);
        }
        // Spray phase.
        if let Some(e) = ctx
            .buf
            .iter()
            .find(|e| e.copies > 1 && ctx.can_offer(e.msg.id))
        {
            return Some(TransferPlan::split(e.msg.id, (e.copies / 2).max(1)));
        }
        // Focus phase: forward single copies towards fresher timers.
        let peer_ages = self.peer_ages(ctx.peer)?;
        ctx.buf
            .iter()
            .find(|e| {
                e.copies == 1
                    && ctx.can_offer(e.msg.id)
                    && peer_ages[e.msg.dst.idx()] + self.utility_threshold
                        < self.age_of(e.msg.dst, ctx.now)
            })
            .map(|e| TransferPlan::forward(e.msg.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    /// In the focus phase the single copy chases fresher encounter timers.
    #[test]
    fn focus_forwards_towards_fresher_timer() {
        let contacts = vec![
            // Node 1 met destination 2 recently.
            Contact::new(1, 2, 50.0, 55.0),
            // Source 0 (λ=1, never met 2) meets 1 → should hand over.
            Contact::new(0, 1, 100.0, 105.0),
            // 1 meets 2 again → delivery.
            Contact::new(1, 2, 150.0, 155.0),
        ];
        let trace = ContactTrace::new(3, 500.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(60.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 400.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
            Box::new(SprayAndFocus::new(1, n.max(id.0 + 1)))
        })
        .run();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 2);
    }

    /// A node with no fresher timer does not receive the single copy.
    #[test]
    fn focus_does_not_forward_to_worse_carrier() {
        let contacts = vec![
            // Source 0 met destination 2 at t=50 (fresh timer).
            Contact::new(0, 2, 50.0, 55.0),
            // 0 meets 1 (1 never met 2): no forward should happen.
            Contact::new(0, 1, 100.0, 105.0),
        ];
        let trace = ContactTrace::new(3, 500.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(60.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 400.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, n| {
            Box::new(SprayAndFocus::new(1, n))
        })
        .run();
        assert_eq!(stats.relayed, 0);
    }

    /// Spray phase splits copies like Spray-and-Wait.
    #[test]
    fn spray_phase_splits() {
        let trace = ContactTrace::new(3, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, n| {
            Box::new(SprayAndFocus::new(8, n))
        })
        .run();
        assert_eq!(stats.relayed, 1, "one split transfer 0→1");
    }

    /// A direct witness beats a node that only learned the timer through
    /// gossip: the transitivity penalty keeps the ordering strict, so the
    /// single copy flows back towards the direct witness.
    #[test]
    fn direct_witness_beats_gossip_recipient() {
        let trace = ContactTrace::new(
            3,
            300.0,
            vec![
                Contact::new(1, 2, 10.0, 12.0),   // 1 directly met 2
                Contact::new(0, 1, 50.0, 52.0),   // 0 learns 2's timer via gossip
                Contact::new(0, 1, 100.0, 102.0), // 0 carries a copy → hands to 1
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(60.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 200.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, n| {
            Box::new(SprayAndFocus::new(1, n))
        })
        .run();
        assert_eq!(
            stats.relayed, 1,
            "direct witness (node 1) must receive the copy from the gossip \
             recipient (node 0)"
        );
    }
}
