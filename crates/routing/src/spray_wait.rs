//! Spray-and-Wait (Spyropoulos, Psounis & Raghavendra, WDTN'05).
//!
//! Each message starts with λ logical copies. In the *spray* phase a node
//! holding more than one copy hands half of them (binary spray) to every new
//! node it meets. A node holding a single copy is in the *wait* phase and
//! only delivers directly to the destination.

use crate::util::{deliver_forward, find_deliverable};
use dtn_sim::{ContactCtx, Message, Router, TransferPlan};
use std::any::Any;

/// Spray-and-Wait router.
#[derive(Debug)]
pub struct SprayAndWait {
    lambda: u32,
    binary: bool,
}

impl SprayAndWait {
    /// Binary Spray-and-Wait with `lambda` initial copies.
    ///
    /// # Panics
    /// Panics if `lambda` is zero.
    pub fn new(lambda: u32) -> Self {
        assert!(lambda >= 1);
        SprayAndWait {
            lambda,
            binary: true,
        }
    }

    /// Source spray variant: only the source distributes copies, one at a
    /// time.
    pub fn source_spray(lambda: u32) -> Self {
        assert!(lambda >= 1);
        SprayAndWait {
            lambda,
            binary: false,
        }
    }

    /// The configured quota.
    pub fn lambda(&self) -> u32 {
        self.lambda
    }
}

impl Router for SprayAndWait {
    fn label(&self) -> &'static str {
        "SprayAndWait"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn initial_copies(&self, _msg: &Message) -> u32 {
        self.lambda
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        if let Some(plan) = deliver_forward(ctx) {
            return Some(plan);
        }
        debug_assert!(find_deliverable(ctx).is_none());
        ctx.buf
            .iter()
            .find(|e| e.copies > 1 && ctx.can_offer(e.msg.id))
            .map(|e| {
                let give = if self.binary { e.copies / 2 } else { 1 };
                TransferPlan::split(e.msg.id, give.max(1))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    fn star_trace(n: u32) -> ContactTrace {
        // Node 0 meets 1, 2, ..., n-1 in sequence.
        let contacts = (1..n)
            .map(|i| Contact::new(0, i, 10.0 * f64::from(i), 10.0 * f64::from(i) + 5.0))
            .collect();
        ContactTrace::new(n, 1000.0, contacts)
    }

    #[test]
    fn binary_spray_halves_copies() {
        let trace = star_trace(4);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(3), // met last
            size: 1000,
            ttl: 900.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(SprayAndWait::new(8))
        })
        .run();
        // 0 starts with 8: gives 4 to node 1, 2 to node 2, then delivers to 3.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 3);
    }

    #[test]
    fn wait_phase_blocks_relaying() {
        // λ=1: only direct delivery ever.
        let trace = ContactTrace::new(
            3,
            100.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(1, 2, 30.0, 35.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(SprayAndWait::new(1))
        })
        .run();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.relayed, 0);
    }

    #[test]
    fn source_spray_gives_one_copy_each() {
        let trace = star_trace(5);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(4),
            size: 1000,
            ttl: 900.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(SprayAndWait::source_spray(8))
        })
        .run();
        // One copy each to 1, 2, 3, then delivery to 4.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 4);
    }

    #[test]
    fn quota_is_conserved() {
        // After binary spray from 8, total copies across the network stay 8.
        let trace = ContactTrace::new(2, 50.0, vec![Contact::new(0, 1, 10.0, 20.0)]);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(1), // direct delivery case: copies vanish with custody
            size: 1000,
            ttl: 45.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(SprayAndWait::new(8))
        })
        .run();
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    #[should_panic]
    fn zero_lambda_rejected() {
        let _ = SprayAndWait::new(0);
    }
}
