//! MaxProp (Burgess, Gallagher, Jensen & Levine, INFOCOM'06).
//!
//! An epidemic-family protocol for vehicular DTNs with three ingredients:
//!
//! 1. **Delivery likelihoods** — incrementally averaged meeting
//!    probabilities, flooded through the network, giving every node an
//!    estimated cost (sum of `1 − p` along the cheapest path) to every
//!    destination;
//! 2. **Transmission priority** — fresh (low hop-count) messages first, then
//!    ascending destination cost;
//! 3. **Acknowledgements** — delivery acks flood the network and purge
//!    delivered messages from buffers; the eviction policy drops
//!    highest-cost, most-travelled messages first.
//!
//! Simplification vs. the original (documented in DESIGN.md): the adaptive
//! hop-count threshold (derived from average transfer opportunity) is a
//! fixed configurable constant.

use crate::util::control_size;
use dtn_sim::{
    Buffer, ContactCtx, Message, MessageId, NodeCtx, NodeId, Router, SimTime, TransferPlan,
};
use std::any::Any;
use std::collections::HashSet;

/// MaxProp parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaxPropConfig {
    /// Messages with fewer hops than this are prioritised by hop count and
    /// protected from eviction.
    pub hop_threshold: u32,
    /// Seconds for which the Dijkstra cost vector is reused before being
    /// recomputed (performance knob; likelihoods drift slowly).
    pub cost_refresh: f64,
}

impl Default for MaxPropConfig {
    fn default() -> Self {
        MaxPropConfig {
            hop_threshold: 7,
            cost_refresh: 60.0,
        }
    }
}

/// MaxProp router.
#[derive(Debug)]
pub struct MaxProp {
    me: NodeId,
    n: usize,
    cfg: MaxPropConfig,
    /// Own meeting-probability vector (normalised to sum 1).
    f: Vec<f64>,
    /// Latest known probability vector of every node, row-major `n × n`
    /// (flat to avoid per-row allocations); `est_time[i]` is row `i`'s
    /// freshness, `-1` = unknown.
    est: Vec<f64>,
    est_time: Vec<f64>,
    /// Delivered-message ids learned so far (flooded acks).
    acked: HashSet<MessageId>,
    /// Cost-to-destination cache and when it was computed (`-∞` = never).
    cost: Vec<f64>,
    cost_valid: bool,
    cost_time: f64,
}

impl MaxProp {
    /// Creates a MaxProp router for `me` in a network of `n` nodes.
    pub fn new(me: NodeId, n: u32) -> Self {
        Self::with_config(me, n, MaxPropConfig::default())
    }

    /// Creates a MaxProp router with explicit parameters.
    pub fn with_config(me: NodeId, n: u32, cfg: MaxPropConfig) -> Self {
        let n = n as usize;
        let init = if n > 1 { 1.0 / (n as f64 - 1.0) } else { 0.0 };
        let mut f = vec![init; n];
        f[me.idx()] = 0.0;
        MaxProp {
            me,
            n,
            cfg,
            f: f.clone(),
            est: vec![0.0; n * n],
            est_time: vec![-1.0; n],
            acked: HashSet::new(),
            cost: vec![f64::INFINITY; n],
            cost_valid: false,
            cost_time: f64::NEG_INFINITY,
        }
    }

    /// The ids this node knows to be delivered.
    pub fn acked(&self) -> &HashSet<MessageId> {
        &self.acked
    }

    /// Own meeting probability towards `peer`.
    pub fn meeting_probability(&self, peer: NodeId) -> f64 {
        self.f[peer.idx()]
    }

    /// Incremental averaging: bump the peer's slot by 1 and re-normalise.
    fn bump(&mut self, peer: NodeId) {
        self.f[peer.idx()] += 1.0;
        let sum: f64 = self.f.iter().sum();
        if sum > 0.0 {
            for v in &mut self.f {
                *v /= sum;
            }
        }
    }

    /// Dijkstra over the likelihood graph: cost of edge `u → v` is
    /// `1 − p_u(v)` using the latest known vector of `u`.
    fn recompute_costs(&mut self, now: SimTime) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct K(f64);
        impl Eq for K {}
        impl PartialOrd for K {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for K {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0)
            }
        }

        let me_lo = self.me.idx() * self.n;
        self.est[me_lo..me_lo + self.n].copy_from_slice(&self.f);
        self.est_time[self.me.idx()] = now.as_secs();
        for c in &mut self.cost {
            *c = f64::INFINITY;
        }
        self.cost[self.me.idx()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((K(0.0), self.me.0)));
        let mut visited = vec![false; self.n];
        while let Some(Reverse((K(d), u))) = heap.pop() {
            let ui = u as usize;
            if visited[ui] {
                continue;
            }
            visited[ui] = true;
            let vec_u: &[f64] = if ui == self.me.idx() {
                &self.f
            } else if self.est_time[ui] >= 0.0 {
                &self.est[ui * self.n..(ui + 1) * self.n]
            } else {
                continue; // no likelihood info about u's links
            };
            for (v, &p) in vec_u.iter().enumerate().take(self.n) {
                if v == ui {
                    continue;
                }
                let nd = d + (1.0 - p);
                if nd < self.cost[v] {
                    self.cost[v] = nd;
                    heap.push(Reverse((K(nd), v as u32)));
                }
            }
        }
        self.cost_valid = true;
    }

    /// Cost to `dst` (∞ when unknown).
    pub fn cost_to(&self, dst: NodeId) -> f64 {
        self.cost[dst.idx()]
    }

    /// Priority key: lower sorts earlier in transmission order.
    fn priority(&self, hops: u32, dst: NodeId) -> (u32, f64) {
        if hops < self.cfg.hop_threshold {
            (hops, 0.0)
        } else {
            (u32::MAX, self.cost[dst.idx()])
        }
    }
}

impl Router for MaxProp {
    fn label(&self) -> &'static str {
        "MaxProp"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_contact_up(&mut self, ctx: &mut ContactCtx<'_>, peer: &mut dyn Router) {
        let peer_router = peer
            .as_any_mut()
            .downcast_mut::<MaxProp>()
            .expect("all nodes run MaxProp");
        self.bump(ctx.peer);

        // Likelihood flooding: adopt fresher vectors known to the peer,
        // including the peer's own (which is always freshest for itself).
        let now = ctx.now.as_secs();
        for i in 0..self.n {
            let (src, peer_time): (&[f64], f64) = if i == ctx.peer.idx() {
                (&peer_router.f, now)
            } else if peer_router.est_time[i] >= 0.0 {
                (
                    &peer_router.est[i * self.n..(i + 1) * self.n],
                    peer_router.est_time[i],
                )
            } else {
                continue;
            };
            if peer_time > self.est_time[i] {
                self.est[i * self.n..(i + 1) * self.n].copy_from_slice(src);
                self.est_time[i] = peer_time;
            }
        }
        // Ack merge and purge of known-delivered messages.
        for id in &peer_router.acked {
            self.acked.insert(*id);
        }
        let to_purge: Vec<MessageId> = ctx
            .buf
            .iter()
            .filter(|e| self.acked.contains(&e.msg.id))
            .map(|e| e.msg.id)
            .collect();
        ctx.purge.extend(to_purge);

        if ctx.now.as_secs() - self.cost_time > self.cfg.cost_refresh {
            self.recompute_costs(ctx.now);
            self.cost_time = ctx.now.as_secs();
        }
        // Vectors + ack ids exchanged.
        ctx.control_bytes(control_size(self.n + self.acked.len()));
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        // Deliverables first; delivery also generates an ack (in on_sent).
        if let Some(e) = ctx
            .buf
            .iter()
            .find(|e| e.msg.dst == ctx.peer && !ctx.sent.contains(&e.msg.id))
        {
            return Some(TransferPlan::forward(e.msg.id));
        }
        if !self.cost_valid {
            return None;
        }
        // Lowest priority key first among offerable, un-acked messages.
        ctx.buf
            .iter()
            .filter(|e| ctx.can_offer(e.msg.id) && !self.acked.contains(&e.msg.id))
            .min_by(|a, b| {
                let ka = self.priority(a.hops, a.msg.dst);
                let kb = self.priority(b.hops, b.msg.dst);
                ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
            })
            .map(|e| TransferPlan::copy(e.msg.id))
    }

    fn on_sent(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        msg: &Message,
        _action: dtn_sim::TransferAction,
        _to: NodeId,
        delivered: bool,
    ) {
        if delivered {
            self.acked.insert(msg.id);
        }
    }

    fn on_delivery_received(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        msg: &Message,
        _from: NodeId,
        _first: bool,
    ) {
        self.acked.insert(msg.id);
    }

    /// MaxProp eviction: highest-cost, most-travelled messages go first;
    /// fresh low-hop messages are protected longest.
    fn select_drops(&mut self, buf: &Buffer, incoming: &Message, _now: SimTime) -> Vec<MessageId> {
        let mut entries: Vec<(dtn_sim::BufferEntry, (u32, f64))> = buf
            .iter()
            .filter(|e| e.msg.id != incoming.id)
            .map(|e| (e, self.priority(e.hops, e.msg.dst)))
            .collect();
        // Reverse priority: worst (highest key) first.
        entries.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(b.1 .1.total_cmp(&a.1 .1)));
        entries.into_iter().map(|(e, _)| e.msg.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    #[test]
    fn bump_keeps_distribution_normalised() {
        let mut r = MaxProp::new(NodeId(0), 4);
        r.bump(NodeId(2));
        r.bump(NodeId(1));
        r.bump(NodeId(1));
        let sum: f64 = r.f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Incremental averaging is recency-weighted: the twice-met (and most
        // recently met) node 1 dominates, never-met node 3 trails.
        assert!(r.meeting_probability(NodeId(1)) > r.meeting_probability(NodeId(2)));
        assert!(r.meeting_probability(NodeId(2)) > r.meeting_probability(NodeId(3)));
        assert!(r.meeting_probability(NodeId(3)) > 0.0, "smoothing mass");
        assert_eq!(r.meeting_probability(NodeId(0)), 0.0, "never self");
    }

    /// A single recent meeting outweighs several old ones — the documented
    /// recency property of MaxProp's incremental averaging.
    #[test]
    fn bump_is_recency_weighted() {
        let mut r = MaxProp::new(NodeId(0), 4);
        r.bump(NodeId(1));
        r.bump(NodeId(1));
        r.bump(NodeId(2));
        assert!(r.meeting_probability(NodeId(2)) > r.meeting_probability(NodeId(1)));
    }

    #[test]
    fn floods_and_delivers_like_epidemic() {
        let trace = ContactTrace::new(
            4,
            200.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(1, 2, 30.0, 35.0),
                Contact::new(2, 3, 50.0, 55.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(3),
            size: 1000,
            ttl: 190.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
            Box::new(MaxProp::new(id, n))
        })
        .run();
        assert_eq!(stats.delivered, 1);
        assert!(stats.relayed >= 3);
    }

    /// Acks purge delivered messages from intermediate buffers.
    #[test]
    fn acks_purge_delivered_messages() {
        let trace = ContactTrace::new(
            4,
            400.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0), // replicate 0→1
                Contact::new(1, 3, 30.0, 35.0), // deliver 1→3 (dst), 1 learns ack
                Contact::new(1, 2, 50.0, 55.0), // 2 learns ack... but 2 has no copy
                Contact::new(0, 2, 70.0, 75.0), // 2 tells 0? no—0 offers copy; 2 knows ack
                Contact::new(0, 1, 90.0, 95.0), // 1 tells 0 the ack → 0 purges
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(3),
            size: 1000,
            ttl: 390.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
            Box::new(MaxProp::new(id, n))
        })
        .run();
        assert_eq!(stats.delivered, 1);
        assert!(
            stats.drops_protocol >= 1,
            "source copy should be purged by the flooded ack"
        );
    }

    #[test]
    fn eviction_prefers_travelled_costly_messages() {
        let mut r = MaxProp::new(NodeId(0), 4);
        r.cost = vec![0.0, 0.5, 1.5, 2.5];
        let mut buf = Buffer::new(10_000);
        let mk = |id: u32, dst: u32, hops: u32| BufferEntry {
            msg: Message {
                id: MessageId(id),
                src: NodeId(0),
                dst: NodeId(dst),
                size: 10,
                created: SimTime::ZERO,
                ttl: 100.0,
            },
            copies: 1,
            received_at: SimTime::ZERO,
            hops,
        };
        buf.insert(mk(0, 1, 0)).unwrap(); // fresh, low hops: protected
        buf.insert(mk(1, 2, 9)).unwrap(); // travelled, cost 1.5
        buf.insert(mk(2, 3, 9)).unwrap(); // travelled, cost 2.5: first victim
        let incoming = mk(9, 1, 0).msg;
        let order = r.select_drops(&buf, &incoming, SimTime::ZERO);
        assert_eq!(order[0], MessageId(2));
        assert_eq!(order[1], MessageId(1));
        assert_eq!(order[2], MessageId(0));
    }
}
