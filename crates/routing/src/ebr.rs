//! EBR — Encounter-Based Routing (Nelson, Bakht & Kravets, INFOCOM'09).
//!
//! The quota protocol the paper's EER directly improves on. Each node tracks
//! an *encounter value* (EV): an exponentially weighted moving average of how
//! many encounters it sees per window. When two nodes meet, replicas of a
//! message split proportionally to their EVs. A single remaining copy waits
//! for the destination.
//!
//! The paper's critique (its §I): EV is a *rate* — identical for all messages
//! and independent of each message's residual TTL. EER replaces it with the
//! TTL-window-conditioned expectation of Theorem 1.

use crate::util::{control_size, deliver_forward};
use dtn_sim::{ContactCtx, Message, NodeId, Router, TransferPlan};
use std::any::Any;

/// EBR tuning parameters (defaults from the EBR paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EbrConfig {
    /// Quota λ: initial number of replicas per message.
    pub lambda: u32,
    /// EWMA weight α for the current-window count.
    pub alpha: f64,
    /// Window length in seconds.
    pub window: f64,
}

impl Default for EbrConfig {
    fn default() -> Self {
        EbrConfig {
            lambda: 10,
            alpha: 0.85,
            window: 30.0,
        }
    }
}

/// EBR router.
#[derive(Debug)]
pub struct Ebr {
    cfg: EbrConfig,
    /// Smoothed encounter value.
    ev: f64,
    /// Encounters in the current window (CWC).
    cwc: u32,
    /// Peer EV snapshots for active contacts.
    peer_ev: Vec<(NodeId, f64)>,
}

impl Ebr {
    /// Creates an EBR router with quota `lambda` and default smoothing.
    pub fn new(lambda: u32) -> Self {
        Self::with_config(EbrConfig {
            lambda,
            ..EbrConfig::default()
        })
    }

    /// Creates an EBR router with explicit parameters.
    ///
    /// # Panics
    /// Panics on a zero quota or out-of-range α.
    pub fn with_config(cfg: EbrConfig) -> Self {
        assert!(cfg.lambda >= 1);
        assert!((0.0..=1.0).contains(&cfg.alpha));
        assert!(cfg.window > 0.0);
        Ebr {
            cfg,
            ev: 0.0,
            cwc: 0,
            peer_ev: Vec::new(),
        }
    }

    /// Current encounter value.
    pub fn encounter_value(&self) -> f64 {
        self.ev
    }

    fn peer_ev(&self, peer: NodeId) -> Option<f64> {
        self.peer_ev
            .iter()
            .find(|(id, _)| *id == peer)
            .map(|(_, v)| *v)
    }
}

impl Router for Ebr {
    fn label(&self) -> &'static str {
        "EBR"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn initial_copies(&self, _msg: &Message) -> u32 {
        self.cfg.lambda
    }

    fn tick_interval(&self) -> Option<f64> {
        Some(self.cfg.window)
    }

    fn on_tick(&mut self, _ctx: &mut dtn_sim::NodeCtx<'_>) {
        self.ev = self.cfg.alpha * f64::from(self.cwc) + (1.0 - self.cfg.alpha) * self.ev;
        self.cwc = 0;
    }

    fn on_contact_up(&mut self, ctx: &mut ContactCtx<'_>, peer: &mut dyn Router) {
        let peer_router = peer
            .as_any_mut()
            .downcast_mut::<Ebr>()
            .expect("all nodes run EBR");
        self.cwc += 1;
        self.peer_ev.retain(|(id, _)| *id != ctx.peer);
        self.peer_ev.push((ctx.peer, peer_router.ev));
        // EV exchange is a single scalar.
        ctx.control_bytes(control_size(1));
    }

    fn on_contact_down(&mut self, _ctx: &mut dtn_sim::NodeCtx<'_>, peer: NodeId) {
        self.peer_ev.retain(|(id, _)| *id != peer);
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        if let Some(plan) = deliver_forward(ctx) {
            return Some(plan);
        }
        let peer_ev = self.peer_ev(ctx.peer)?;
        let my_ev = self.ev;
        let total = my_ev + peer_ev;
        ctx.buf
            .iter()
            .filter(|e| e.copies > 1 && ctx.can_offer(e.msg.id))
            .find_map(|e| {
                let give = if total > 0.0 {
                    (f64::from(e.copies) * peer_ev / total) as u32
                } else {
                    // No history on either side: split evenly, as the EBR
                    // paper's cold-start behaviour.
                    e.copies / 2
                };
                let give = give.min(e.copies - 1);
                (give >= 1).then(|| TransferPlan::split(e.msg.id, give))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    #[test]
    fn ev_ewma_update() {
        let mut r = Ebr::with_config(EbrConfig {
            lambda: 4,
            alpha: 0.5,
            window: 30.0,
        });
        r.cwc = 4;
        let mut purge = vec![];
        let mut stats = SimStats::new(0);
        let buf = Buffer::new(100);
        let mut ctx = NodeCtx {
            now: SimTime::secs(30.0),
            me: NodeId(0),
            buf: &buf,
            stats: &mut stats,
            purge: &mut purge,
        };
        r.on_tick(&mut ctx);
        assert_eq!(r.encounter_value(), 2.0);
        r.cwc = 0;
        r.on_tick(&mut ctx);
        assert_eq!(r.encounter_value(), 1.0);
    }

    /// A high-EV node receives proportionally more copies.
    #[test]
    fn split_proportional_to_ev() {
        // Node 1 is "social": meets nodes 2..5 during warm-up, so its EV
        // grows. Node 0 is isolated. After warm-up, 0 creates a message with
        // λ=10 and meets 1: nearly all copies should move to 1.
        let mut contacts = vec![];
        for k in 0..8 {
            let t = 5.0 + k as f64 * 20.0;
            let peer = 2 + (k % 4);
            contacts.push(Contact::new(1, peer, t, t + 2.0));
        }
        contacts.push(Contact::new(0, 1, 400.0, 410.0));
        let trace = ContactTrace::new(6, 1000.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(300.0),
            src: NodeId(0),
            dst: NodeId(5),
            size: 1000,
            ttl: 600.0,
        }];
        let sim = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(Ebr::new(10))
        });
        let stats = sim.run();
        // One split transfer happened.
        assert_eq!(stats.relayed, 1);
    }

    /// Wait phase: single copies are never relayed.
    #[test]
    fn single_copy_waits() {
        let trace = ContactTrace::new(
            3,
            200.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(0, 1, 50.0, 55.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 190.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(Ebr::new(2))
        })
        .run();
        // First contact splits 2 → 1+1; second contact: both have a single
        // copy, no further transfer.
        assert_eq!(stats.relayed, 1);
        assert_eq!(stats.delivered, 0);
    }
}
