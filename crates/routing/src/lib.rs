//! # dtn-routing — baseline DTN routing protocols
//!
//! Implementations of the protocols the ICPP'11 paper compares against
//! (plus standard baselines), all on top of [`dtn_sim`]'s
//! [`Router`](dtn_sim::Router) API:
//!
//! | Protocol | Module | Family |
//! |---|---|---|
//! | Epidemic | [`epidemic`] | flooding |
//! | Direct delivery | [`direct`] | single copy |
//! | First contact | [`first_contact`] | single copy |
//! | PRoPHET | [`prophet`] | probabilistic replication |
//! | Spray-and-Wait | [`spray_wait`] | quota |
//! | Spray-and-Focus | [`spray_focus`] | quota + utility forwarding |
//! | EBR | [`ebr`] | quota, encounter-rate proportional |
//! | MaxProp | [`maxprop`] | flooding + likelihood priorities + acks |
//!
//! The paper's own protocols (EER and CR) live in the `ce-core` crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod direct;
pub mod ebr;
pub mod epidemic;
pub mod first_contact;
pub mod maxprop;
pub mod prophet;
pub mod spray_focus;
pub mod spray_wait;
pub mod util;

pub use direct::DirectDelivery;
pub use ebr::{Ebr, EbrConfig};
pub use epidemic::Epidemic;
pub use first_contact::FirstContact;
pub use maxprop::{MaxProp, MaxPropConfig};
pub use prophet::{Prophet, ProphetConfig};
pub use spray_focus::{SprayAndFocus, SprayFocusConfig};
pub use spray_wait::SprayAndWait;

/// Re-export for convenience in router factories.
pub use dtn_sim::NodeId;

/// A boxed router-factory signature used throughout the experiment harness.
pub type RouterFactory = Box<dyn FnMut(NodeId, u32) -> Box<dyn dtn_sim::Router>>;
