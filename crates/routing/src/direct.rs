//! Direct delivery: the source holds the message until it meets the
//! destination. One transmission per delivered message — the goodput
//! upper bound and delivery-ratio lower bound among sensible protocols.

use crate::util::deliver_forward;
use dtn_sim::{ContactCtx, Router, TransferPlan};
use std::any::Any;

/// Direct-delivery router.
#[derive(Debug, Default)]
pub struct DirectDelivery;

impl DirectDelivery {
    /// Creates a direct-delivery router.
    pub fn new() -> Self {
        DirectDelivery
    }
}

impl Router for DirectDelivery {
    fn label(&self) -> &'static str {
        "Direct"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        deliver_forward(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    #[test]
    fn delivers_only_to_destination() {
        // 0 meets 1 (not dst), then 0 meets 2 (dst).
        let trace = ContactTrace::new(
            3,
            100.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(0, 2, 30.0, 35.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(DirectDelivery::new())
        })
        .run();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 1, "exactly one transmission");
        assert_eq!(stats.goodput(), 1.0);
        // Delivered at ~30 + transfer time; created at 1.
        assert!((stats.avg_latency() - 29.0).abs() < 0.1);
    }

    #[test]
    fn never_relays_through_intermediaries() {
        let trace = ContactTrace::new(
            3,
            100.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(1, 2, 30.0, 35.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(DirectDelivery::new())
        })
        .run();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.relayed, 0);
    }
}
