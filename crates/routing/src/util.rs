//! Helpers shared by protocol implementations.

use dtn_sim::{ContactCtx, MessageId, TransferPlan};

/// First message buffered here that is destined to the current peer and has
/// not yet been sent during this contact — the universal "deliver first" rule.
pub fn find_deliverable(ctx: &ContactCtx<'_>) -> Option<MessageId> {
    ctx.buf
        .iter()
        .find(|e| e.msg.dst == ctx.peer && !ctx.sent.contains(&e.msg.id))
        .map(|e| e.msg.id)
}

/// Plans a custody-transferring delivery of the first deliverable message.
pub fn deliver_forward(ctx: &ContactCtx<'_>) -> Option<TransferPlan> {
    find_deliverable(ctx).map(TransferPlan::forward)
}

/// Plans a replicating delivery of the first deliverable message (the sender
/// keeps its copy, as epidemic-family protocols do).
pub fn deliver_copy(ctx: &ContactCtx<'_>) -> Option<TransferPlan> {
    find_deliverable(ctx).map(TransferPlan::copy)
}

/// Number of bytes a control structure of `elems` f64-sized elements plus a
/// small header occupies on the wire; used for overhead accounting.
pub fn control_size(elems: usize) -> u64 {
    8 + 8 * elems as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_size_scales() {
        assert_eq!(control_size(0), 8);
        assert_eq!(control_size(10), 88);
    }
}
