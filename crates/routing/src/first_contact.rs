//! First-contact routing (Jain, Fall & Patra, SIGCOMM'04 family): a single
//! copy is handed to the first node encountered — a random walk over the
//! contact graph. Cheap, rarely effective; a useful sanity baseline.
//!
//! Like the ONE's `FirstContactRouter`, a node never hands a message straight
//! back to the neighbour it received it from, which would otherwise ping-pong
//! the copy inside a single contact.

use crate::util::deliver_forward;
use dtn_sim::{BufferEntry, ContactCtx, MessageId, NodeCtx, NodeId, Router, TransferPlan};
use std::any::Any;
use std::collections::HashMap;

/// First-contact router.
#[derive(Debug, Default)]
pub struct FirstContact {
    /// Who each buffered message was received from (absent for own messages).
    received_from: HashMap<MessageId, NodeId>,
}

impl FirstContact {
    /// Creates a first-contact router.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Router for FirstContact {
    fn label(&self) -> &'static str {
        "FirstContact"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_received(&mut self, _ctx: &mut NodeCtx<'_>, entry: &BufferEntry, from: NodeId) {
        self.received_from.insert(entry.msg.id, from);
    }

    fn on_sent(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        msg: &dtn_sim::Message,
        _action: dtn_sim::TransferAction,
        _to: NodeId,
        _delivered: bool,
    ) {
        // Custody moved away (Forward): forget the provenance.
        self.received_from.remove(&msg.id);
    }

    fn on_dropped(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        msg: &dtn_sim::Message,
        _reason: dtn_sim::DropReason,
    ) {
        self.received_from.remove(&msg.id);
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        if let Some(plan) = deliver_forward(ctx) {
            return Some(plan);
        }
        ctx.buf
            .iter()
            .find(|e| {
                ctx.can_offer(e.msg.id) && self.received_from.get(&e.msg.id) != Some(&ctx.peer)
            })
            .map(|e| TransferPlan::forward(e.msg.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    #[test]
    fn custody_moves_single_copy() {
        let trace = ContactTrace::new(
            3,
            100.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(1, 2, 30.0, 35.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(FirstContact::new())
        })
        .run();
        // 0 hands to 1 (first contact), 1 delivers to 2.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 2);
    }

    /// The copy must not bounce straight back to the node it came from.
    #[test]
    fn no_ping_pong_within_contact() {
        let trace = ContactTrace::new(3, 100.0, vec![Contact::new(0, 1, 10.0, 90.0)]);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
            Box::new(FirstContact::new())
        })
        .run();
        assert_eq!(stats.relayed, 1, "0→1 once; never back");
    }

    /// Provenance is forgotten once custody moves on, so a later fresh copy
    /// could legally travel back (bookkeeping stays bounded).
    #[test]
    fn provenance_cleared_on_forward() {
        let mut r = FirstContact::new();
        assert!(r.received_from.is_empty());
        // Simulated lifecycle through the engine is covered above; here we
        // check the map directly.
        r.received_from.insert(MessageId(0), NodeId(1));
        let msg = Message {
            id: MessageId(0),
            src: NodeId(1),
            dst: NodeId(2),
            size: 1,
            created: SimTime::ZERO,
            ttl: 10.0,
        };
        let mut purge = vec![];
        let mut stats = SimStats::new(0);
        let buf = Buffer::new(10);
        let mut ctx = NodeCtx {
            now: SimTime::ZERO,
            me: NodeId(0),
            buf: &buf,
            stats: &mut stats,
            purge: &mut purge,
        };
        r.on_sent(&mut ctx, &msg, TransferAction::Forward, NodeId(2), false);
        assert!(r.received_from.is_empty());
    }
}
