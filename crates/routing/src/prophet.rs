//! PRoPHET (Lindgren, Doria & Schelén, MobiHoc'03): probabilistic routing
//! using delivery predictabilities with aging and transitivity.
//!
//! A message is replicated to the peer when the peer's delivery
//! predictability for the destination exceeds the carrier's.

use crate::util::{control_size, deliver_copy};
use dtn_sim::{ContactCtx, NodeId, Router, SimTime, TransferPlan};
use std::any::Any;

/// PRoPHET tuning parameters (defaults from the original paper / the ONE).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProphetConfig {
    /// Initialisation constant `P_init`.
    pub p_init: f64,
    /// Transitivity scaling `β`.
    pub beta: f64,
    /// Aging base `γ` (applied per time unit).
    pub gamma: f64,
    /// Seconds per aging time unit.
    pub time_unit: f64,
}

impl Default for ProphetConfig {
    fn default() -> Self {
        ProphetConfig {
            p_init: 0.75,
            beta: 0.25,
            gamma: 0.98,
            time_unit: 30.0,
        }
    }
}

/// PRoPHET router.
#[derive(Debug)]
pub struct Prophet {
    me: NodeId,
    cfg: ProphetConfig,
    /// Delivery predictability to each node.
    p: Vec<f64>,
    last_aged: SimTime,
    /// Snapshot of the current peers' predictability vectors, taken at
    /// contact-up (peer id, vector).
    peer_p: Vec<(NodeId, Vec<f64>)>,
}

impl Prophet {
    /// Creates a PRoPHET router for `me` in a network of `n` nodes.
    pub fn new(me: NodeId, n: u32) -> Self {
        Self::with_config(me, n, ProphetConfig::default())
    }

    /// Creates a PRoPHET router with explicit parameters.
    pub fn with_config(me: NodeId, n: u32, cfg: ProphetConfig) -> Self {
        Prophet {
            me,
            cfg,
            p: vec![0.0; n as usize],
            last_aged: SimTime::ZERO,
            peer_p: Vec::new(),
        }
    }

    /// Applies exponential aging up to `now`.
    fn age(&mut self, now: SimTime) {
        let dt = now.since(self.last_aged);
        if dt <= 0.0 {
            return;
        }
        let factor = self.cfg.gamma.powf(dt / self.cfg.time_unit);
        for v in &mut self.p {
            *v *= factor;
        }
        self.last_aged = now;
    }

    /// Current predictability to `dst`.
    pub fn predictability(&self, dst: NodeId) -> f64 {
        self.p[dst.idx()]
    }

    fn peer_vector(&self, peer: NodeId) -> Option<&[f64]> {
        self.peer_p
            .iter()
            .find(|(id, _)| *id == peer)
            .map(|(_, v)| v.as_slice())
    }
}

impl Router for Prophet {
    fn label(&self) -> &'static str {
        "PRoPHET"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_contact_up(&mut self, ctx: &mut ContactCtx<'_>, peer: &mut dyn Router) {
        let peer = peer
            .as_any_mut()
            .downcast_mut::<Prophet>()
            .expect("all nodes run PRoPHET");
        self.age(ctx.now);
        peer.age(ctx.now);
        // Direct update.
        let pi = &mut self.p[ctx.peer.idx()];
        *pi += (1.0 - *pi) * self.cfg.p_init;
        // Transitivity through the peer's (pre-contact) vector.
        let p_ab = self.p[ctx.peer.idx()];
        for c in 0..self.p.len() {
            if c == self.me.idx() || c == ctx.peer.idx() {
                continue;
            }
            let through = p_ab * peer.p[c] * self.cfg.beta;
            if through > self.p[c] {
                self.p[c] = through;
            }
        }
        // Snapshot the peer's vector for forwarding decisions.
        self.peer_p.retain(|(id, _)| *id != ctx.peer);
        self.peer_p.push((ctx.peer, peer.p.clone()));
        ctx.control_bytes(control_size(self.p.len()));
    }

    fn on_contact_down(&mut self, _ctx: &mut dtn_sim::NodeCtx<'_>, peer: NodeId) {
        self.peer_p.retain(|(id, _)| *id != peer);
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        if let Some(plan) = deliver_copy(ctx) {
            return Some(plan);
        }
        let peer_vec = self.peer_vector(ctx.peer)?;
        ctx.buf
            .iter()
            .find(|e| {
                ctx.can_offer(e.msg.id) && peer_vec[e.msg.dst.idx()] > self.p[e.msg.dst.idx()]
            })
            .map(|e| TransferPlan::copy(e.msg.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    #[test]
    fn predictability_rises_on_contact_and_decays() {
        let trace = ContactTrace::new(2, 1000.0, vec![Contact::new(0, 1, 10.0, 12.0)]);
        let sim = Simulation::new(&trace, vec![], SimConfig::paper(0), |id, n| {
            Box::new(Prophet::new(id, n))
        });
        // Run manually: after the contact, p(0→1) should be p_init.
        let stats = sim.run();
        assert_eq!(stats.created, 0);
        // (behavioural check below via routing outcome)
    }

    /// A node that repeatedly meets the destination attracts the message from
    /// a node that never does.
    #[test]
    fn forwards_to_better_carrier() {
        let mut contacts = vec![];
        // Node 1 meets destination 2 often (builds predictability).
        for k in 0..5 {
            let t = 10.0 + k as f64 * 50.0;
            contacts.push(Contact::new(1, 2, t, t + 2.0));
        }
        // Source 0 then meets node 1.
        contacts.push(Contact::new(0, 1, 300.0, 305.0));
        // Node 1 meets destination again → delivery.
        contacts.push(Contact::new(1, 2, 350.0, 355.0));
        let trace = ContactTrace::new(3, 1000.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 900.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
            Box::new(Prophet::new(id, n))
        })
        .run();
        assert_eq!(stats.delivered, 1, "message should flow 0→1→2");
        assert_eq!(stats.relayed, 2);
    }

    /// With no history anywhere, nothing is forwarded except to the
    /// destination itself.
    #[test]
    fn no_history_no_relay() {
        let trace = ContactTrace::new(3, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
            Box::new(Prophet::new(id, n))
        })
        .run();
        assert_eq!(stats.relayed, 0, "peer has no predictability advantage");
    }

    #[test]
    fn aging_is_exponential() {
        let mut r = Prophet::new(NodeId(0), 3);
        r.p[1] = 0.8;
        r.age(SimTime::secs(300.0)); // 10 time units
        let expected = 0.8 * 0.98f64.powi(10);
        assert!((r.p[1] - expected).abs() < 1e-12);
    }
}
