//! The meeting-interval matrix `MI` and its freshness-based gossip.
//!
//! Every EER node maintains an `n × n` matrix whose entry `I_ij` is the
//! average meeting interval between nodes `i` and `j`, together with a
//! last-update time per row. Row `i` is authoritative at node `i` (computed
//! from its own history); all other rows arrive by gossip: when two nodes
//! meet they exchange rows, each adopting the rows the other has fresher —
//! the paper's footnote 1 ("only the rows with the fresher update time need
//! to be exchanged ... which can reduce the routing information exchange
//! overhead greatly").
//!
//! Unknown entries are `f64::INFINITY`; the diagonal is 0.

use dtn_sim::NodeId;

/// Meeting-interval matrix with per-row freshness stamps.
#[derive(Clone, Debug)]
pub struct MiMatrix {
    n: usize,
    /// Row-major `n × n`; `INFINITY` = unknown, diagonal = 0.
    data: Vec<f64>,
    /// Last update time per row; `-1` = never updated.
    row_time: Vec<f64>,
}

impl MiMatrix {
    /// Creates an all-unknown matrix for `n` nodes.
    pub fn new(n: u32) -> Self {
        let n = n as usize;
        let mut data = vec![f64::INFINITY; n * n];
        for i in 0..n {
            data[i * n + i] = 0.0;
        }
        MiMatrix {
            n,
            data,
            row_time: vec![-1.0; n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `I_ij`.
    #[inline]
    pub fn get(&self, i: NodeId, j: NodeId) -> f64 {
        self.data[i.idx() * self.n + j.idx()]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: NodeId) -> &[f64] {
        &self.data[i.idx() * self.n..(i.idx() + 1) * self.n]
    }

    /// Freshness stamp of row `i` (`-1` = never updated).
    #[inline]
    pub fn row_time(&self, i: NodeId) -> f64 {
        self.row_time[i.idx()]
    }

    /// Overwrites row `i` with `values` and stamps it with `time`.
    ///
    /// # Panics
    /// Panics if `values.len() != n`.
    pub fn set_row(&mut self, i: NodeId, values: &[f64], time: f64) {
        assert_eq!(values.len(), self.n);
        self.data[i.idx() * self.n..(i.idx() + 1) * self.n].copy_from_slice(values);
        self.data[i.idx() * self.n + i.idx()] = 0.0;
        self.row_time[i.idx()] = time;
    }

    /// Updates a single entry of row `i` (stamping the row with `time`).
    pub fn set_entry(&mut self, i: NodeId, j: NodeId, value: f64, time: f64) {
        self.data[i.idx() * self.n + j.idx()] = value;
        self.row_time[i.idx()] = self.row_time[i.idx()].max(time);
    }

    /// Adopts every row the `other` matrix has fresher. Returns the number
    /// of rows copied (for control-overhead accounting).
    pub fn merge_from(&mut self, other: &MiMatrix) -> usize {
        assert_eq!(self.n, other.n);
        let mut copied = 0;
        for i in 0..self.n {
            if other.row_time[i] > self.row_time[i] {
                let lo = i * self.n;
                let hi = lo + self.n;
                self.data[lo..hi].copy_from_slice(&other.data[lo..hi]);
                self.row_time[i] = other.row_time[i];
                copied += 1;
            }
        }
        copied
    }

    /// Whether two matrices hold identical data (for convergence tests).
    pub fn same_data(&self, other: &MiMatrix) -> bool {
        self.n == other.n
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a == b || (a.is_infinite() && b.is_infinite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unknown_with_zero_diagonal() {
        let m = MiMatrix::new(3);
        assert_eq!(m.get(NodeId(0), NodeId(0)), 0.0);
        assert!(m.get(NodeId(0), NodeId(1)).is_infinite());
        assert_eq!(m.row_time(NodeId(2)), -1.0);
    }

    #[test]
    fn set_row_stamps_and_zeroes_diagonal() {
        let mut m = MiMatrix::new(3);
        m.set_row(NodeId(1), &[5.0, 99.0, 7.0], 10.0);
        assert_eq!(m.get(NodeId(1), NodeId(0)), 5.0);
        assert_eq!(m.get(NodeId(1), NodeId(1)), 0.0, "diagonal forced to 0");
        assert_eq!(m.get(NodeId(1), NodeId(2)), 7.0);
        assert_eq!(m.row_time(NodeId(1)), 10.0);
    }

    #[test]
    fn merge_adopts_only_fresher_rows() {
        let mut a = MiMatrix::new(3);
        let mut b = MiMatrix::new(3);
        a.set_row(NodeId(0), &[0.0, 10.0, 20.0], 5.0);
        a.set_row(NodeId(2), &[1.0, 2.0, 0.0], 50.0);
        b.set_row(NodeId(0), &[0.0, 11.0, 21.0], 9.0); // fresher
        b.set_row(NodeId(2), &[9.0, 9.0, 0.0], 3.0); // staler
        let copied = a.merge_from(&b);
        assert_eq!(copied, 1);
        assert_eq!(a.get(NodeId(0), NodeId(1)), 11.0, "fresher row adopted");
        assert_eq!(a.get(NodeId(2), NodeId(0)), 1.0, "staler row kept");
    }

    #[test]
    fn bidirectional_merge_converges() {
        let mut a = MiMatrix::new(3);
        let mut b = MiMatrix::new(3);
        a.set_row(NodeId(0), &[0.0, 10.0, 20.0], 5.0);
        b.set_row(NodeId(1), &[30.0, 0.0, 40.0], 7.0);
        let a2 = a.clone();
        a.merge_from(&b);
        b.merge_from(&a2);
        // After a second sync in either direction they are identical.
        b.merge_from(&a);
        assert!(a.same_data(&b));
        assert_eq!(a.get(NodeId(1), NodeId(0)), 30.0);
        assert_eq!(b.get(NodeId(0), NodeId(2)), 20.0);
    }

    #[test]
    fn set_entry_bumps_row_time_monotonically() {
        let mut m = MiMatrix::new(2);
        m.set_entry(NodeId(0), NodeId(1), 42.0, 10.0);
        assert_eq!(m.row_time(NodeId(0)), 10.0);
        m.set_entry(NodeId(0), NodeId(1), 43.0, 5.0);
        assert_eq!(m.row_time(NodeId(0)), 10.0, "older stamp must not regress");
    }
}
