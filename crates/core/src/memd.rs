//! Minimum expected meeting delay (Theorem 3).
//!
//! The `MD` matrix of §III-B2 is the `MI` matrix with the *source node's own
//! row* replaced by its expected meeting delays (Theorem 2), which account
//! for the elapsed time since each last contact. The MEMD from the source to
//! every destination is the shortest-path distance over `MD` — computed here
//! with a dense O(n²) Dijkstra that never materialises the matrix copy: edge
//! weights are read from `MI` except for rows overridden by the caller.
//!
//! One solver instance owns its scratch buffers so repeated per-contact
//! computations don't allocate.

use crate::history::ContactHistory;
use crate::mi::MiMatrix;
use dtn_sim::{NodeId, SimTime};

/// Reusable dense-Dijkstra solver for MEMD queries.
#[derive(Clone, Debug, Default)]
pub struct MemdSolver {
    dist: Vec<f64>,
    done: Vec<bool>,
    /// The source node's EMD row (Theorem 2 values).
    emd_row: Vec<f64>,
}

impl MemdSolver {
    /// Creates a solver (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the source's `MD` row: `EMD(t)` towards every peer, with the
    /// paper-unspecified corner cases resolved as:
    ///
    /// * never met / no intervals → unknown (`INFINITY`);
    /// * "overdue" (elapsed exceeds all recorded intervals, conditional set
    ///   empty) → unknown (`INFINITY`): the estimator has no admissible
    ///   evidence left, and treating overdue links as attractive was measured
    ///   to cause single-copy thrashing (see `ablation_emd`).
    pub fn build_emd_row(&mut self, history: &ContactHistory, now: SimTime) -> &[f64] {
        let n = history.n_nodes();
        self.emd_row.clear();
        self.emd_row.resize(n, f64::INFINITY);
        for j in 0..n {
            let jid = NodeId(j as u32);
            if jid == history.me() {
                self.emd_row[j] = 0.0;
                continue;
            }
            let pair = history.pair(jid);
            self.emd_row[j] = match pair.expected_meeting_delay(now) {
                Some(d) => d.max(0.0),
                None => f64::INFINITY,
            };
        }
        &self.emd_row
    }

    /// Builds an own-row of plain mean intervals (no Theorem-2 elapsed-time
    /// correction) — the Jones et al. MEED-style baseline used by
    /// `ablation_emd` to quantify what the correction buys.
    pub fn build_mean_row(&mut self, history: &ContactHistory) -> &[f64] {
        let n = history.n_nodes();
        self.emd_row.clear();
        self.emd_row.resize(n, f64::INFINITY);
        for j in 0..n {
            let jid = NodeId(j as u32);
            if jid == history.me() {
                self.emd_row[j] = 0.0;
                continue;
            }
            if let Some(mean) = history.pair(jid).mean_interval() {
                self.emd_row[j] = mean;
            }
        }
        &self.emd_row
    }

    /// MEMD from `src` to all nodes, over `mi` with `src`'s row overridden by
    /// `emd_row` (use [`MemdSolver::build_emd_row`] first, or pass any
    /// custom override). Returns the distance vector; unreachable = ∞.
    ///
    /// Optionally `restrict` limits the graph to a subset of nodes (the
    /// intra-community MEMD′ of §IV); `None` means all nodes.
    pub fn memd_from(
        &mut self,
        src: NodeId,
        mi: &MiMatrix,
        emd_row: &[f64],
        restrict: Option<&[NodeId]>,
    ) -> &[f64] {
        let n = mi.n();
        debug_assert_eq!(emd_row.len(), n);
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.done.clear();
        self.done.resize(n, true);
        match restrict {
            Some(nodes) => {
                for v in nodes {
                    self.done[v.idx()] = false;
                }
                self.done[src.idx()] = false;
            }
            None => self.done.iter_mut().for_each(|d| *d = false),
        }
        // `done[v] = true` marks nodes outside the restricted set as already
        // finalised (at ∞), so they are never relaxed through.
        self.dist[src.idx()] = 0.0;
        loop {
            // Dense extraction of the closest unfinished node.
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for v in 0..n {
                if !self.done[v] && self.dist[v] < best {
                    best = self.dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            self.done[u] = true;
            let row: &[f64] = if u == src.idx() {
                emd_row
            } else {
                mi.row(NodeId(u as u32))
            };
            for (v, &w) in row.iter().enumerate().take(n) {
                if self.done[v] {
                    continue;
                }
                if w.is_finite() {
                    let nd = best + w;
                    if nd < self.dist[v] {
                        self.dist[v] = nd;
                    }
                }
            }
        }
        &self.dist
    }

    /// Convenience: full MEMD vector for `history.me()` at `now`.
    pub fn memd_all(
        &mut self,
        history: &ContactHistory,
        mi: &MiMatrix,
        now: SimTime,
        restrict: Option<&[NodeId]>,
    ) -> &[f64] {
        let me = history.me();
        self.build_emd_row(history, now);
        let row = std::mem::take(&mut self.emd_row);
        let _ = self.memd_from(me, mi, &row, restrict);
        self.emd_row = row;
        &self.dist
    }

    /// As [`MemdSolver::memd_all`] but with the mean-interval own-row (no
    /// Theorem-2 correction).
    pub fn memd_all_mean(
        &mut self,
        history: &ContactHistory,
        mi: &MiMatrix,
        restrict: Option<&[NodeId]>,
    ) -> &[f64] {
        let me = history.me();
        self.build_mean_row(history);
        let row = std::mem::take(&mut self.emd_row);
        let _ = self.memd_from(me, mi, &row, restrict);
        self.emd_row = row;
        &self.dist
    }

    /// The last computed distance vector.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi_from(n: u32, entries: &[(u32, u32, f64)]) -> MiMatrix {
        let mut mi = MiMatrix::new(n);
        for &(i, j, v) in entries {
            mi.set_entry(NodeId(i), NodeId(j), v, 1.0);
            mi.set_entry(NodeId(j), NodeId(i), v, 1.0);
        }
        mi
    }

    #[test]
    fn memd_is_shortest_path_over_md() {
        // 0 -10- 1 -10- 2, and a slow direct edge 0 -50- 2.
        let mi = mi_from(3, &[(0, 1, 10.0), (1, 2, 10.0), (0, 2, 50.0)]);
        let mut s = MemdSolver::new();
        let emd_row = vec![0.0, 10.0, 50.0]; // same as MI row here
        let d = s.memd_from(NodeId(0), &mi, &emd_row, None);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 10.0);
        assert_eq!(d[2], 20.0, "two-hop path beats direct");
    }

    #[test]
    fn emd_row_override_changes_first_hop() {
        let mi = mi_from(3, &[(0, 1, 10.0), (1, 2, 10.0), (0, 2, 50.0)]);
        let mut s = MemdSolver::new();
        // Node 0 just met 1 recently: its *current* expected delay to 1 is
        // only 2 (Theorem 2), so MEMD(0→2) drops to 12.
        let emd_row = vec![0.0, 2.0, 50.0];
        let d = s.memd_from(NodeId(0), &mi, &emd_row, None);
        assert_eq!(d[2], 12.0);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mi = mi_from(4, &[(0, 1, 5.0)]);
        let mut s = MemdSolver::new();
        let emd_row = vec![0.0, 5.0, f64::INFINITY, f64::INFINITY];
        let d = s.memd_from(NodeId(0), &mi, &emd_row, None);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
    }

    #[test]
    fn restriction_blocks_outside_relays() {
        // Path 0-1-2 exists, but 1 is outside the allowed subset.
        let mi = mi_from(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)]);
        let mut s = MemdSolver::new();
        let emd_row = vec![0.0, 1.0, 10.0];
        let d = s.memd_from(NodeId(0), &mi, &emd_row, Some(&[NodeId(0), NodeId(2)]));
        assert_eq!(d[2], 10.0, "must use the direct intra-subset edge");
    }

    #[test]
    fn build_emd_row_fallbacks() {
        use dtn_sim::SimTime;
        let mut h = ContactHistory::new(NodeId(0), 3, 8);
        // Peer 1: periodic 100s, last met at 200.
        for t in [0.0, 100.0, 200.0] {
            h.record_meeting(NodeId(1), SimTime::secs(t));
        }
        let mut s = MemdSolver::new();
        // At t=250 (elapsed 50): EMD = 100 - 50 = 50.
        let row = s.build_emd_row(&h, SimTime::secs(250.0));
        assert!((row[1] - 50.0).abs() < 1e-12);
        assert!(row[2].is_infinite(), "never met → unknown");
        assert_eq!(row[0], 0.0);
        // Overdue (elapsed 150 > all intervals): no admissible evidence.
        let row = s.build_emd_row(&h, SimTime::secs(350.0));
        assert!(row[1].is_infinite());
    }

    #[test]
    fn memd_all_composes() {
        use dtn_sim::SimTime;
        let mut h = ContactHistory::new(NodeId(0), 3, 8);
        for t in [0.0, 100.0, 200.0] {
            h.record_meeting(NodeId(1), SimTime::secs(t));
        }
        // MI knows 1-2 meet every 30 on average.
        let mut mi = MiMatrix::new(3);
        mi.set_entry(NodeId(1), NodeId(2), 30.0, 5.0);
        let mut s = MemdSolver::new();
        let d = s.memd_all(&h, &mi, SimTime::secs(250.0), None);
        assert!((d[1] - 50.0).abs() < 1e-12);
        assert!((d[2] - 80.0).abs() < 1e-12, "50 to reach 1 + 30 onwards");
    }
}
