//! CR — the Community-based Routing protocol (§IV, Algorithms 2–4).
//!
//! Nodes are partitioned into communities (predefined, as in the paper's
//! implementation). Every message carries its destination's community id.
//!
//! **Inter-community routing** (carrier outside the destination community):
//!
//! * peer *in* the destination community → hand over **all** replicas
//!   (Algorithm 3, lines 1–2);
//! * `Mk > 1` → split replicas proportionally to the two nodes' expected
//!   numbers of encountering communities, `ENEC(t, α·TTLk)` (Theorem 4);
//! * `Mk = 1` → forward iff the peer's probability of meeting the
//!   destination community within `α·TTLk` exceeds ours (`P_ic < P_jc`).
//!
//! **Intra-community routing** (carrier inside the destination community):
//!
//! * only same-community peers are considered;
//! * `Mk > 1` → split by intra-community EEV′ proportion;
//! * `Mk = 1` → forward iff intra-community `MEMD′(me, dst) > MEMD′(peer,
//!   dst)`.
//!
//! The key systems payoff over EER: the gossiped state shrinks from the full
//! `n × n` MI to the community-local sub-matrix, so CR exchanges far fewer
//! control bytes (measured by `ablation_cr_state`).

use crate::community::CommunityMap;
use crate::eer::{quantise_tau, replica_share};
use crate::history::{ContactHistory, DEFAULT_WINDOW};
use crate::memd::MemdSolver;
use crate::mi::MiMatrix;
use crate::policy::BufferPolicy;
use dtn_sim::{
    ContactCtx, Message, NodeCtx, NodeId, Router, SimTime, TransferAction, TransferPlan,
};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// CR tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrConfig {
    /// Quota λ: initial replicas per message.
    pub lambda: u32,
    /// The TTL-fraction horizon parameter α (paper: 0.28).
    pub alpha: f64,
    /// Sliding-window length per pair history.
    pub window: usize,
    /// Intra-community single-copy hysteresis in seconds (see
    /// `EerConfig::forward_hysteresis`).
    pub forward_hysteresis: f64,
    /// Inter-community single-copy hysteresis in probability units: forward
    /// only when `P_jc` exceeds `P_ic` by this margin.
    pub probability_hysteresis: f64,
    /// Estimator refresh window in seconds (see `EerConfig::refresh`).
    pub refresh: f64,
    /// Eviction policy under buffer pressure (future-work extension).
    pub buffer_policy: BufferPolicy,
}

impl Default for CrConfig {
    fn default() -> Self {
        CrConfig {
            lambda: 10,
            alpha: 0.28,
            window: DEFAULT_WINDOW,
            forward_hysteresis: 180.0,
            probability_hysteresis: 0.1,
            refresh: 60.0,
            buffer_policy: BufferPolicy::default(),
        }
    }
}

/// One node's CR router instance.
#[derive(Debug)]
pub struct Cr {
    me: NodeId,
    cfg: CrConfig,
    communities: Arc<CommunityMap>,
    /// Full history towards all nodes (needed for ENEC and P_ic).
    history: ContactHistory,
    /// Intra-community MI, indexed by *global* node ids but only rows/
    /// columns of the own community are ever populated or exchanged.
    intra_mi: MiMatrix,
    solver: MemdSolver,
    queues: Vec<(NodeId, VecDeque<TransferPlan>)>,
    row_scratch: Vec<f64>,
    /// Cached intra-community MEMD′ vector and its computation time.
    memd_cache: Vec<f64>,
    memd_time: f64,
    /// Cached ENECs: (τ bits, computed-at seconds, value).
    enec_cache: Vec<(u64, f64, f64)>,
}

impl Cr {
    /// Creates a CR router for `me` with quota `lambda`.
    pub fn new(me: NodeId, n: u32, communities: Arc<CommunityMap>, lambda: u32) -> Self {
        Self::with_config(
            me,
            n,
            communities,
            CrConfig {
                lambda,
                ..CrConfig::default()
            },
        )
    }

    /// Creates a CR router with explicit parameters.
    ///
    /// # Panics
    /// Panics on zero quota, α outside `[0, 1]`, or a community map whose
    /// size disagrees with `n`.
    pub fn with_config(me: NodeId, n: u32, communities: Arc<CommunityMap>, cfg: CrConfig) -> Self {
        assert!(cfg.lambda >= 1);
        assert!((0.0..=1.0).contains(&cfg.alpha));
        assert_eq!(communities.n_nodes(), n as usize, "community map size");
        Cr {
            me,
            cfg,
            communities,
            history: ContactHistory::new(me, n, cfg.window),
            intra_mi: MiMatrix::new(n),
            solver: MemdSolver::new(),
            queues: Vec::new(),
            row_scratch: Vec::new(),
            memd_cache: Vec::new(),
            memd_time: f64::NEG_INFINITY,
            enec_cache: Vec::new(),
        }
    }

    /// The community map.
    pub fn communities(&self) -> &CommunityMap {
        &self.communities
    }

    /// Read access to the contact history.
    pub fn history(&self) -> &ContactHistory {
        &self.history
    }

    /// Read access to the intra-community MI matrix.
    pub fn intra_mi(&self) -> &MiMatrix {
        &self.intra_mi
    }

    /// Theorem 4 expectation for this node at `now` over `tau`.
    pub fn enec(&self, now: SimTime, tau: f64) -> f64 {
        self.communities.enec(&self.history, now, tau)
    }

    /// Own community members.
    fn my_members(&self) -> &[NodeId] {
        self.communities.members(self.communities.cid(self.me))
    }

    /// Refreshes the own intra-MI row from history means (community columns
    /// only).
    fn refresh_own_row(&mut self, now: SimTime) {
        let n = self.intra_mi.n();
        self.row_scratch.clear();
        self.row_scratch.resize(n, f64::INFINITY);
        self.row_scratch[self.me.idx()] = 0.0;
        let members = self.communities.members(self.communities.cid(self.me));
        for j in members {
            if *j == self.me {
                continue;
            }
            if let Some(mean) = self.history.pair(*j).mean_interval() {
                self.row_scratch[j.idx()] = mean;
            }
        }
        let row = std::mem::take(&mut self.row_scratch);
        self.intra_mi.set_row(self.me, &row, now.as_secs());
        self.row_scratch = row;
    }

    /// Intra-community MEMD′ vector, recomputed at most every `cfg.refresh`
    /// seconds.
    fn intra_memd_cached(&mut self, now: SimTime) -> &[f64] {
        if now.as_secs() - self.memd_time > self.cfg.refresh {
            let members: Vec<NodeId> = self.my_members().to_vec();
            let d = self
                .solver
                .memd_all(&self.history, &self.intra_mi, now, Some(&members))
                .to_vec();
            self.memd_cache = d;
            self.memd_time = now.as_secs();
        }
        &self.memd_cache
    }

    /// Theorem-4 ENEC with a (τ, time)-bucketed cache.
    fn enec_cached(&mut self, now: SimTime, tau: f64) -> f64 {
        let bits = tau.to_bits();
        let t = now.as_secs();
        if let Some(&(_, _, v)) = self
            .enec_cache
            .iter()
            .find(|(b, at, _)| *b == bits && t - at <= self.cfg.refresh)
        {
            return v;
        }
        let v = self.communities.enec(&self.history, now, tau);
        self.enec_cache
            .retain(|(_, at, _)| t - at <= self.cfg.refresh);
        self.enec_cache.push((bits, t, v));
        v
    }

    fn queue_mut(&mut self, peer: NodeId) -> &mut VecDeque<TransferPlan> {
        if let Some(pos) = self.queues.iter().position(|(p, _)| *p == peer) {
            return &mut self.queues[pos].1;
        }
        self.queues.push((peer, VecDeque::new()));
        &mut self.queues.last_mut().unwrap().1
    }

    /// Builds the decision batch for the current contact.
    #[allow(clippy::too_many_lines)]
    fn build_queue(
        &mut self,
        ctx: &mut ContactCtx<'_>,
        peer_router: &mut Cr,
    ) -> VecDeque<TransferPlan> {
        let now = ctx.now;
        let my_cid = self.communities.cid(self.me);
        let peer_cid = self.communities.cid(ctx.peer);
        let same_community = my_cid == peer_cid;

        let mut queue = VecDeque::new();
        // Intra-community MEMD′ vectors only when single intra replicas are
        // in play between same-community peers.
        let need_memd = same_community
            && ctx.buf.iter().any(|e| {
                e.copies == 1
                    && e.msg.dst != ctx.peer
                    && self.communities.cid(e.msg.dst) == my_cid
                    && !ctx.peer_buf.contains(e.msg.id)
            });
        let (my_memd, peer_memd) = if need_memd {
            ctx.control_bytes(16);
            (
                self.intra_memd_cached(now).to_vec(),
                peer_router_memd(peer_router, now),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let mut intra_ev_cache: Vec<(u64, f64, f64)> = Vec::new();

        for entry in ctx.buf.iter() {
            let msg = &entry.msg;
            if msg.dst == ctx.peer {
                queue.push_back(TransferPlan::forward(msg.id));
                continue;
            }
            if ctx.peer_buf.contains(msg.id) {
                continue;
            }
            let dst_cid = self.communities.cid(msg.dst);
            let tau = quantise_tau(self.cfg.alpha * msg.residual_ttl(now));

            if my_cid != dst_cid {
                // ---- Inter-community routing (Algorithm 3) ----
                if peer_cid == dst_cid {
                    queue.push_back(TransferPlan::forward(msg.id));
                    continue;
                }
                if entry.copies > 1 {
                    let mine = self.enec_cached(now, tau);
                    let theirs = peer_router.enec_cached(now, tau);
                    ctx.control_bytes(16); // ENEC scalar exchange
                    let give = replica_share(entry.copies, mine, theirs);
                    if give >= 1 {
                        queue.push_back(TransferPlan::split(msg.id, give));
                    }
                } else {
                    let members = self.communities.members(dst_cid);
                    let p_ic = self.history.community_meet_probability(now, tau, members);
                    let p_jc = peer_router
                        .history
                        .community_meet_probability(now, tau, members);
                    ctx.control_bytes(16);
                    if p_ic + self.cfg.probability_hysteresis < p_jc {
                        queue.push_back(TransferPlan::forward(msg.id));
                    }
                }
            } else {
                // ---- Intra-community routing (Algorithm 4) ----
                if !same_community {
                    continue; // peer outside the destination community
                }
                if entry.copies > 1 {
                    let bits = tau.to_bits();
                    let (ev_me, ev_peer) = match intra_ev_cache.iter().find(|(b, _, _)| *b == bits)
                    {
                        Some(&(_, a, b)) => (a, b),
                        None => {
                            let members = self.my_members();
                            let a = self.history.eev_over(now, tau, members);
                            let b = peer_router.history.eev_over(now, tau, members);
                            intra_ev_cache.push((bits, a, b));
                            ctx.control_bytes(16);
                            (a, b)
                        }
                    };
                    let give = replica_share(entry.copies, ev_me, ev_peer);
                    if give >= 1 {
                        queue.push_back(TransferPlan::split(msg.id, give));
                    }
                } else {
                    let mine = my_memd[msg.dst.idx()];
                    let theirs = peer_memd[msg.dst.idx()];
                    if mine > theirs + self.cfg.forward_hysteresis {
                        queue.push_back(TransferPlan::forward(msg.id));
                    }
                }
            }
        }
        queue
    }
}

impl Router for Cr {
    fn label(&self) -> &'static str {
        "CR"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn initial_copies(&self, _msg: &Message) -> u32 {
        self.cfg.lambda
    }

    fn on_contact_up(&mut self, ctx: &mut ContactCtx<'_>, peer: &mut dyn Router) {
        let peer_router = peer
            .as_any_mut()
            .downcast_mut::<Cr>()
            .expect("all nodes run CR");
        let now = ctx.now;
        self.history.record_meeting(ctx.peer, now);

        // Intra-community MI gossip only between same-community nodes —
        // this is the state-size reduction CR buys over EER.
        if self.communities.same_community(self.me, ctx.peer) {
            self.refresh_own_row(now);
            let copied = self.intra_mi.merge_from(&peer_router.intra_mi);
            let community_size = self.my_members().len();
            ctx.control_bytes(8 * (copied * community_size + community_size) as u64);
        }

        let queue = self.build_queue(ctx, peer_router);
        *self.queue_mut(ctx.peer) = queue;
    }

    fn on_contact_down(&mut self, _ctx: &mut NodeCtx<'_>, peer: NodeId) {
        self.queues.retain(|(p, _)| *p != peer);
    }

    fn select_drops(
        &mut self,
        buf: &dtn_sim::Buffer,
        incoming: &Message,
        now: SimTime,
    ) -> Vec<dtn_sim::MessageId> {
        self.cfg.buffer_policy.victims(buf, incoming, now)
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        let pos = self.queues.iter().position(|(p, _)| *p == ctx.peer)?;
        let queue = &mut self.queues[pos].1;
        while let Some(plan) = queue.pop_front() {
            let Some(entry) = ctx.buf.get(plan.msg) else {
                continue;
            };
            if ctx.sent.contains(&plan.msg) {
                continue;
            }
            if entry.msg.dst != ctx.peer && ctx.peer_buf.contains(plan.msg) {
                continue;
            }
            let plan = match plan.action {
                TransferAction::Split { give } => {
                    let give = give.min(entry.copies);
                    if give == 0 {
                        continue;
                    }
                    if give == entry.copies {
                        TransferPlan::forward(plan.msg)
                    } else {
                        TransferPlan::split(plan.msg, give)
                    }
                }
                _ => plan,
            };
            return Some(plan);
        }
        None
    }
}

/// Fetches the peer's cached intra-community MEMD′ vector.
fn peer_router_memd(peer: &mut Cr, now: SimTime) -> Vec<f64> {
    peer.intra_memd_cached(now).to_vec()
}

/// Convenience: a router factory closure for CR over a shared community map.
pub fn cr_factory(
    communities: Arc<CommunityMap>,
    lambda: u32,
) -> impl FnMut(NodeId, u32) -> Box<dyn Router> {
    move |id, n| Box::new(Cr::new(id, n, Arc::clone(&communities), lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    fn map(cids: Vec<u32>) -> Arc<CommunityMap> {
        Arc::new(CommunityMap::new(cids))
    }

    #[test]
    fn peer_in_destination_community_gets_all_replicas() {
        // Communities: {0}, {1, 2}. Message 0→2. Node 1 is in dst community.
        let communities = map(vec![0, 1, 1]);
        let trace = ContactTrace::new(
            3,
            200.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(1, 2, 50.0, 55.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 190.0,
        }];
        let stats =
            Simulation::new(&trace, wl, SimConfig::paper(0), cr_factory(communities, 10)).run();
        // 0 hands everything to 1 (dst community), 1 delivers to 2.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 2);
    }

    #[test]
    fn direct_delivery_works_across_communities() {
        let communities = map(vec![0, 1]);
        let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1000,
            ttl: 90.0,
        }];
        let stats =
            Simulation::new(&trace, wl, SimConfig::paper(0), cr_factory(communities, 10)).run();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 1);
    }

    /// Outside the destination community, single copies follow P_ic < P_jc.
    #[test]
    fn inter_community_single_copy_follows_community_probability() {
        // Communities: {0, 1}, {2, 3}. Node 1 meets community-2 member 3
        // periodically; node 0 never leaves home. Message 0→2 with λ=1.
        let communities = map(vec![0, 0, 1, 1]);
        let mut contacts = vec![];
        for rep in 0..6 {
            let t = 50.0 * f64::from(rep) + 5.0;
            contacts.push(Contact::new(1, 3, t, t + 2.0));
        }
        // 0 meets 1 while 1's window to community 1 is still "admissible"
        // (within 50 s of its last 1–3 contact, so Eq. 4 gives p > 0).
        contacts.push(Contact::new(0, 1, 280.0, 285.0));
        let trace = ContactTrace::new(4, 1000.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(270.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 600.0,
        }];
        let stats =
            Simulation::new(&trace, wl, SimConfig::paper(0), cr_factory(communities, 1)).run();
        assert_eq!(
            stats.relayed, 1,
            "0 must hand the copy to 1, who actually meets community 1"
        );
    }

    /// Intra-community: messages never leak to outside peers.
    #[test]
    fn intra_community_message_stays_inside() {
        // Communities: {0, 2}, {1}. Message 0→2 (intra). Node 0 only ever
        // meets outsider 1: no transfer may happen.
        let communities = map(vec![0, 1, 0]);
        let trace = ContactTrace::new(
            3,
            300.0,
            vec![
                Contact::new(0, 1, 10.0, 15.0),
                Contact::new(0, 1, 100.0, 105.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 290.0,
        }];
        let stats =
            Simulation::new(&trace, wl, SimConfig::paper(0), cr_factory(communities, 1)).run();
        assert_eq!(stats.relayed, 0, "outsiders must not carry intra traffic");
    }

    /// Intra-community single-copy forwarding uses MEMD′ and delivers.
    #[test]
    fn intra_community_memd_forwarding() {
        // Community {0, 1, 2} (all one community). Node 1 meets destination
        // 2 periodically; 0 does not. 0 should hand its single copy to 1.
        let communities = map(vec![0, 0, 0]);
        let mut contacts = vec![];
        for rep in 0..12 {
            let t = 100.0 * f64::from(rep) + 10.0;
            contacts.push(Contact::new(1, 2, t, t + 2.0));
        }
        contacts.push(Contact::new(0, 1, 450.0, 452.0));
        contacts.push(Contact::new(0, 1, 850.0, 855.0));
        let trace = ContactTrace::new(3, 2000.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(800.0),
            src: NodeId(0),
            dst: NodeId(2),
            size: 1000,
            ttl: 1200.0,
        }];
        let stats =
            Simulation::new(&trace, wl, SimConfig::paper(0), cr_factory(communities, 1)).run();
        assert_eq!(stats.delivered, 1, "1 delivers at the next 1–2 contact");
        assert_eq!(stats.relayed, 2, "handover 0→1 plus delivery hop 1→2");
    }

    /// CR's gossip is community-local: contacts between different
    /// communities exchange no MI rows.
    #[test]
    fn no_mi_gossip_across_communities() {
        let communities = map(vec![0, 1]);
        let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
        let mut sim = Simulation::new(
            &trace,
            vec![],
            SimConfig::paper(0),
            cr_factory(communities, 10),
        );
        let stats = sim.run_to_end();
        assert_eq!(
            stats.control_bytes, 0,
            "inter-community contact with no messages exchanges nothing"
        );
    }
}
