//! # ce-core — contact-expectation routing (EER and CR)
//!
//! The primary contribution of *"On Using Contact Expectation for Routing in
//! Delay Tolerant Networks"* (Chen & Lou, ICPP 2011), implemented on the
//! [`dtn_sim`] substrate:
//!
//! * [`history`] — sliding-window contact histories and the Theorem 1/2
//!   estimators (expected encounter value, expected meeting delay);
//! * [`mi`] — the meeting-interval matrix with freshness-row gossip;
//! * [`memd`] — minimum expected meeting delay via dense Dijkstra
//!   (Theorem 3);
//! * [`community`] — community structure and the Theorem 4 ENEC estimator;
//! * [`eer`] — the Expected-Encounter-based Routing protocol (Algorithm 1);
//! * [`cr`] — the Community-based Routing protocol (Algorithms 2–4).
//!
//! ```
//! use ce_core::Eer;
//! use dtn_sim::prelude::*;
//!
//! let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
//! let wl = vec![MessageSpec {
//!     create_at: SimTime::secs(1.0),
//!     src: NodeId(0), dst: NodeId(1), size: 1000, ttl: 90.0,
//! }];
//! let stats = Simulation::new(&trace, wl, SimConfig::paper(0), |id, n| {
//!     Box::new(Eer::new(id, n, 10))
//! }).run();
//! assert_eq!(stats.delivered, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod community;
pub mod cr;
pub mod detect;
pub mod eer;
pub mod history;
pub mod memd;
pub mod mi;
pub mod policy;

pub use community::{CommunityId, CommunityMap};
pub use cr::{cr_factory, Cr, CrConfig};
pub use detect::{
    detect_over_trace, detected_map, pairwise_agreement, CommunityDetector, DetectorConfig,
};
pub use eer::{Eer, EerConfig, EmdMode};
pub use history::{ContactHistory, PairHistory, DEFAULT_WINDOW};
pub use memd::MemdSolver;
pub use mi::MiMatrix;
pub use policy::BufferPolicy;
