//! Community structure (§IV-A) and the ENEC estimator (Theorem 4).
//!
//! The paper predefines communities ("in the implementation of the CR, the
//! communities in the network are predefined for simplicity"); we take the
//! same approach — [`CommunityMap`] is built from a per-node community-id
//! assignment provided by the scenario (ground-truth districts).

use crate::history::ContactHistory;
use dtn_sim::{NodeId, SimTime};

/// Identifier of a community.
pub type CommunityId = u32;

/// A static partition of the nodes into communities.
#[derive(Clone, Debug)]
pub struct CommunityMap {
    cid_of: Vec<CommunityId>,
    members: Vec<Vec<NodeId>>,
}

impl CommunityMap {
    /// Builds the map from a per-node community assignment.
    ///
    /// # Panics
    /// Panics if `cid_of` is empty.
    pub fn new(cid_of: Vec<CommunityId>) -> Self {
        assert!(!cid_of.is_empty());
        let n_comm = cid_of.iter().copied().max().unwrap() as usize + 1;
        let mut members = vec![Vec::new(); n_comm];
        for (i, &c) in cid_of.iter().enumerate() {
            members[c as usize].push(NodeId(i as u32));
        }
        CommunityMap { cid_of, members }
    }

    /// Community id of `node`.
    #[inline]
    pub fn cid(&self, node: NodeId) -> CommunityId {
        self.cid_of[node.idx()]
    }

    /// Nodes belonging to community `c`.
    #[inline]
    pub fn members(&self, c: CommunityId) -> &[NodeId] {
        &self.members[c as usize]
    }

    /// Number of communities `l`.
    #[inline]
    pub fn n_communities(&self) -> usize {
        self.members.len()
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.cid_of.len()
    }

    /// Whether two nodes share a community.
    #[inline]
    pub fn same_community(&self, a: NodeId, b: NodeId) -> bool {
        self.cid(a) == self.cid(b)
    }

    /// Theorem 4: expected number of encountering communities for
    /// `history.me()` within `(now, now+τ]`:
    /// `ENEC(t, τ) = Σ_{k ≠ CID(me)} (1 − Π_{j ∈ C_k} (1 − mτ_ij/m_ij))`.
    pub fn enec(&self, history: &ContactHistory, now: SimTime, tau: f64) -> f64 {
        let my_cid = self.cid(history.me());
        let mut sum = 0.0;
        for (k, members) in self.members.iter().enumerate() {
            if k as CommunityId == my_cid {
                continue;
            }
            sum += history.community_meet_probability(now, tau, members);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexes_members() {
        let m = CommunityMap::new(vec![0, 1, 0, 2, 1]);
        assert_eq!(m.n_communities(), 3);
        assert_eq!(m.n_nodes(), 5);
        assert_eq!(m.cid(NodeId(3)), 2);
        assert_eq!(m.members(0), &[NodeId(0), NodeId(2)]);
        assert_eq!(m.members(1), &[NodeId(1), NodeId(4)]);
        assert!(m.same_community(NodeId(0), NodeId(2)));
        assert!(!m.same_community(NodeId(0), NodeId(1)));
    }

    #[test]
    fn enec_excludes_own_community_and_sums_probabilities() {
        // Communities: {0,1} (home of node 0), {2}, {3}.
        let map = CommunityMap::new(vec![0, 0, 1, 2]);
        let mut h = ContactHistory::new(NodeId(0), 4, 8);
        // Meet node 2 (community 1) periodically: p≈1 over a long horizon.
        for t in [0.0, 50.0, 100.0] {
            h.record_meeting(NodeId(2), SimTime::secs(t));
        }
        // Meet node 1 (own community): must not count.
        for t in [0.0, 10.0, 20.0] {
            h.record_meeting(NodeId(1), SimTime::secs(t));
        }
        let now = SimTime::secs(110.0);
        let enec = map.enec(&h, now, 100.0);
        let p2 = h.pair(NodeId(2)).meet_probability(now, 100.0);
        assert!((enec - p2).abs() < 1e-12, "only community 1 contributes");
        assert!(enec > 0.0);
        // Never-met community 2 contributes zero.
    }

    #[test]
    fn enec_bounded_by_foreign_community_count() {
        let map = CommunityMap::new(vec![0, 1, 1, 2, 2]);
        let mut h = ContactHistory::new(NodeId(0), 5, 8);
        for peer in 1..5u32 {
            for t in [0.0, 10.0, 20.0] {
                h.record_meeting(NodeId(peer), SimTime::secs(t + f64::from(peer)));
            }
        }
        let enec = map.enec(&h, SimTime::secs(25.0), 1000.0);
        assert!(enec <= 2.0 + 1e-12, "at most l−1 = 2, got {enec}");
        assert!(enec > 1.5, "long horizon: both foreign communities likely");
    }
}
