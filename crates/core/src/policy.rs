//! Buffer-management policies — the paper's first future-work item
//! ("extending the proposed routing protocols to be applicable to
//! resource-constrained wireless networks by employing the buffer
//! management").
//!
//! When a buffer must evict, the policy ranks victims. Beyond the ONE
//! simulator's stock drop-oldest, we provide a contact-expectation-aware
//! policy: evict the message least likely to still contribute a delivery —
//! the one with the least residual lifetime, breaking ties towards messages
//! whose replicas are widely spread already (high copy counts can afford
//! the loss).

use dtn_sim::{Buffer, Message, MessageId, SimTime};

/// Victim-selection policy for buffer evictions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BufferPolicy {
    /// Evict the oldest-received message first (ONE's default).
    #[default]
    OldestReceived,
    /// Evict ascending by residual TTL, breaking ties towards higher copy
    /// counts — keep the messages that still have time and need carriers.
    LeastRemainingValue,
}

impl BufferPolicy {
    /// Ranks eviction victims (first = evicted first), excluding `incoming`.
    pub fn victims(self, buf: &Buffer, incoming: &Message, now: SimTime) -> Vec<MessageId> {
        match self {
            BufferPolicy::OldestReceived => {
                let mut entries: Vec<(SimTime, MessageId)> = buf
                    .iter()
                    .filter(|e| e.msg.id != incoming.id)
                    .map(|e| (e.received_at, e.msg.id))
                    .collect();
                entries.sort();
                entries.into_iter().map(|(_, id)| id).collect()
            }
            BufferPolicy::LeastRemainingValue => {
                let mut entries: Vec<(f64, std::cmp::Reverse<u32>, MessageId)> = buf
                    .iter()
                    .filter(|e| e.msg.id != incoming.id)
                    .map(|e| {
                        (
                            e.msg.residual_ttl(now),
                            std::cmp::Reverse(e.copies),
                            e.msg.id,
                        )
                    })
                    .collect();
                entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
                entries.into_iter().map(|(_, _, id)| id).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::{BufferEntry, NodeId};

    fn entry(id: u32, created: f64, ttl: f64, copies: u32, received: f64) -> BufferEntry {
        BufferEntry {
            msg: Message {
                id: MessageId(id),
                src: NodeId(0),
                dst: NodeId(1),
                size: 10,
                created: SimTime::secs(created),
                ttl,
            },
            copies,
            received_at: SimTime::secs(received),
            hops: 0,
        }
    }

    #[test]
    fn oldest_received_orders_by_arrival() {
        let mut buf = Buffer::new(1000);
        buf.insert(entry(0, 0.0, 100.0, 1, 30.0)).unwrap();
        buf.insert(entry(1, 0.0, 100.0, 1, 10.0)).unwrap();
        buf.insert(entry(2, 0.0, 100.0, 1, 20.0)).unwrap();
        let incoming = entry(9, 0.0, 100.0, 1, 0.0).msg;
        let order = BufferPolicy::OldestReceived.victims(&buf, &incoming, SimTime::secs(40.0));
        assert_eq!(order, vec![MessageId(1), MessageId(2), MessageId(0)]);
    }

    #[test]
    fn least_remaining_value_prefers_expiring_and_spread() {
        let mut buf = Buffer::new(1000);
        buf.insert(entry(0, 0.0, 500.0, 1, 0.0)).unwrap(); // long life, 1 copy
        buf.insert(entry(1, 0.0, 60.0, 1, 0.0)).unwrap(); // nearly dead
        buf.insert(entry(2, 0.0, 500.0, 8, 0.0)).unwrap(); // long life, spread
        let incoming = entry(9, 0.0, 100.0, 1, 0.0).msg;
        let order = BufferPolicy::LeastRemainingValue.victims(&buf, &incoming, SimTime::secs(50.0));
        assert_eq!(
            order,
            vec![MessageId(1), MessageId(2), MessageId(0)],
            "expiring first, then the widely-replicated one"
        );
    }

    #[test]
    fn incoming_message_never_selected() {
        let mut buf = Buffer::new(1000);
        buf.insert(entry(0, 0.0, 100.0, 1, 0.0)).unwrap();
        let incoming = entry(0, 0.0, 100.0, 1, 0.0).msg; // same id
        for p in [
            BufferPolicy::OldestReceived,
            BufferPolicy::LeastRemainingValue,
        ] {
            assert!(p.victims(&buf, &incoming, SimTime::ZERO).is_empty());
        }
    }
}
