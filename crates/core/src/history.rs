//! Sliding-window contact histories and the paper's estimators
//! (Theorems 1 and 2, and the pair-probability of Eq. 4).
//!
//! Each node records, for every other node, the last meeting time and a
//! sliding window of past meeting intervals `R_ij = {Δt_1, ..., Δt_r}`.
//! All of the paper's quantities are empirical conditional statistics over
//! that multiset, conditioned on the elapsed time `e = t − t0` since the
//! last contact:
//!
//! * `M_ij  = {Δt ∈ R_ij : Δt > e}` — intervals still admissible;
//! * `Mτ_ij = {Δt ∈ M_ij : Δt ≤ e + τ}` — admissible and within the window;
//! * meeting probability within `(t, t+τ]` = `mτ/m` (Eq. 4);
//! * `EMD(t) = mean(M_ij) − e` (Theorem 2);
//! * `EEV(t, τ) = Σ_j mτ_ij / m_ij` (Theorem 1).
//!
//! The interval window is kept sorted with a parallel prefix-sum array, so
//! each query is two binary searches — O(log W) — which matters because EER
//! evaluates EEVs per message per contact.

use dtn_sim::{NodeId, SimTime};

/// Default sliding-window length (recorded intervals per pair).
pub const DEFAULT_WINDOW: usize = 32;

/// Contact history between this node and one particular peer.
#[derive(Clone, Debug)]
pub struct PairHistory {
    /// Time of the last recorded meeting, if any.
    last_meet: Option<SimTime>,
    /// Recorded intervals in arrival order (for window eviction).
    recent: Vec<f64>,
    /// The same intervals, sorted ascending.
    sorted: Vec<f64>,
    /// `prefix[k]` = sum of `sorted[..k]`.
    prefix: Vec<f64>,
    window: usize,
}

impl PairHistory {
    /// Creates an empty history with the given window size.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        PairHistory {
            last_meet: None,
            recent: Vec::new(),
            sorted: Vec::new(),
            prefix: vec![0.0],
            window,
        }
    }

    /// Records a meeting at `now`. The first meeting only sets the anchor;
    /// subsequent meetings append the interval since the previous one.
    pub fn record_meeting(&mut self, now: SimTime) {
        if let Some(prev) = self.last_meet {
            let dt = now.since(prev);
            if dt > 0.0 {
                if self.recent.len() == self.window {
                    let evicted = self.recent.remove(0);
                    let pos = self
                        .sorted
                        .binary_search_by(|x| x.total_cmp(&evicted))
                        .expect("evicted value present");
                    self.sorted.remove(pos);
                }
                self.recent.push(dt);
                let pos = self.sorted.partition_point(|&x| x < dt);
                self.sorted.insert(pos, dt);
                self.rebuild_prefix();
            }
        }
        self.last_meet = Some(now);
    }

    fn rebuild_prefix(&mut self) {
        self.prefix.clear();
        self.prefix.push(0.0);
        let mut acc = 0.0;
        for &x in &self.sorted {
            acc += x;
            self.prefix.push(acc);
        }
    }

    /// Number of recorded intervals `r_ij`.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether no interval has been recorded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Last meeting time `t0`, if the pair ever met.
    #[inline]
    pub fn last_meet(&self) -> Option<SimTime> {
        self.last_meet
    }

    /// Elapsed time since the last meeting, `t − t0` (`None` if never met).
    #[inline]
    pub fn elapsed(&self, now: SimTime) -> Option<f64> {
        self.last_meet.map(|t0| now.since(t0))
    }

    /// Unconditional mean interval `I_ij = (1/r) Σ Δt_k`, the MI entry.
    pub fn mean_interval(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.prefix[self.sorted.len()] / self.sorted.len() as f64)
        }
    }

    /// `(m, mτ)` of Theorem 1 at time `now` for horizon `τ`.
    pub fn admissible_counts(&self, now: SimTime, tau: f64) -> (usize, usize) {
        let Some(e) = self.elapsed(now) else {
            return (0, 0);
        };
        let lo = self.sorted.partition_point(|&x| x <= e);
        let hi = self.sorted.partition_point(|&x| x <= e + tau);
        (self.sorted.len() - lo, hi - lo)
    }

    /// Eq. 4: probability of meeting this peer within `(now, now+τ]`,
    /// `mτ/m`; 0 when no admissible interval remains (or never met).
    pub fn meet_probability(&self, now: SimTime, tau: f64) -> f64 {
        let (m, mt) = self.admissible_counts(now, tau);
        if m == 0 {
            0.0
        } else {
            mt as f64 / m as f64
        }
    }

    /// Theorem 2: expected meeting delay
    /// `EMD(t) = mean{Δt ∈ R : Δt > e} − e`.
    ///
    /// Returns `None` when the conditional set is empty (never met, or the
    /// pair is "overdue": elapsed exceeds every recorded interval).
    pub fn expected_meeting_delay(&self, now: SimTime) -> Option<f64> {
        let e = self.elapsed(now)?;
        let lo = self.sorted.partition_point(|&x| x <= e);
        let m = self.sorted.len() - lo;
        if m == 0 {
            return None;
        }
        let sum = self.prefix[self.sorted.len()] - self.prefix[lo];
        Some(sum / m as f64 - e)
    }

    /// The recorded intervals, ascending.
    pub fn intervals(&self) -> &[f64] {
        &self.sorted
    }
}

/// The full contact history of one node towards all `n` peers.
#[derive(Clone, Debug)]
pub struct ContactHistory {
    me: NodeId,
    pairs: Vec<PairHistory>,
}

impl ContactHistory {
    /// Creates an empty history for node `me` in a network of `n` nodes.
    pub fn new(me: NodeId, n: u32, window: usize) -> Self {
        ContactHistory {
            me,
            pairs: (0..n).map(|_| PairHistory::new(window)).collect(),
        }
    }

    /// This node's id.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the network.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.pairs.len()
    }

    /// Records a meeting with `peer` at `now`.
    pub fn record_meeting(&mut self, peer: NodeId, now: SimTime) {
        debug_assert!(peer != self.me);
        self.pairs[peer.idx()].record_meeting(now);
    }

    /// The pair history towards `peer`.
    #[inline]
    pub fn pair(&self, peer: NodeId) -> &PairHistory {
        &self.pairs[peer.idx()]
    }

    /// Theorem 1: expected encounter value
    /// `EEV(t, τ) = Σ_{j ≠ me} mτ_ij / m_ij`.
    pub fn eev(&self, now: SimTime, tau: f64) -> f64 {
        let mut sum = 0.0;
        for (j, p) in self.pairs.iter().enumerate() {
            if j == self.me.idx() {
                continue;
            }
            sum += p.meet_probability(now, tau);
        }
        sum
    }

    /// Restricted EEV over the peers in `subset` (the intra-community
    /// `EEV'` of §IV): `Σ_{j ∈ subset, j ≠ me} mτ/m`.
    pub fn eev_over(&self, now: SimTime, tau: f64, subset: &[NodeId]) -> f64 {
        subset
            .iter()
            .filter(|j| **j != self.me)
            .map(|j| self.pairs[j.idx()].meet_probability(now, tau))
            .sum()
    }

    /// Probability of meeting at least one member of `community` within
    /// `(now, now+τ]`: `P_ic = 1 − Π_{j ∈ C} (1 − p_ij)` (Theorem 4's inner
    /// term).
    pub fn community_meet_probability(&self, now: SimTime, tau: f64, community: &[NodeId]) -> f64 {
        let mut miss = 1.0;
        for j in community {
            if *j == self.me {
                continue;
            }
            miss *= 1.0 - self.pairs[j.idx()].meet_probability(now, tau);
        }
        1.0 - miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meet_at(h: &mut PairHistory, times: &[f64]) {
        for &t in times {
            h.record_meeting(SimTime::secs(t));
        }
    }

    #[test]
    fn first_meeting_records_no_interval() {
        let mut h = PairHistory::new(8);
        h.record_meeting(SimTime::secs(10.0));
        assert!(h.is_empty());
        assert_eq!(h.last_meet(), Some(SimTime::secs(10.0)));
    }

    #[test]
    fn intervals_accumulate_sorted() {
        let mut h = PairHistory::new(8);
        meet_at(&mut h, &[0.0, 30.0, 40.0, 100.0]); // intervals 30, 10, 60
        assert_eq!(h.intervals(), &[10.0, 30.0, 60.0]);
        assert_eq!(h.mean_interval(), Some(100.0 / 3.0));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut h = PairHistory::new(2);
        meet_at(&mut h, &[0.0, 30.0, 40.0, 100.0]); // 30 evicted, keep 10, 60
        assert_eq!(h.intervals(), &[10.0, 60.0]);
        assert_eq!(h.mean_interval(), Some(35.0));
    }

    /// The paper's periodic example (§III-B1): nodes meeting every Δt have
    /// EMD = Δt/2 halfway through, not Δt.
    #[test]
    fn emd_accounts_for_elapsed_time() {
        let mut h = PairHistory::new(8);
        meet_at(&mut h, &[0.0, 100.0, 200.0, 300.0]); // periodic, Δt = 100
        let emd = h.expected_meeting_delay(SimTime::secs(350.0)).unwrap();
        assert!((emd - 50.0).abs() < 1e-12, "EMD {emd}, want 50");
        // Right after the meeting the full interval remains.
        let emd0 = h.expected_meeting_delay(SimTime::secs(300.0)).unwrap();
        assert!((emd0 - 100.0).abs() < 1e-12);
    }

    #[test]
    fn emd_conditions_on_admissible_intervals() {
        let mut h = PairHistory::new(8);
        // Intervals 10, 30, 60 (see above), last meeting at 100.
        meet_at(&mut h, &[0.0, 30.0, 40.0, 100.0]);
        // Elapsed 20: admissible {30, 60}, mean 45, EMD 25.
        let emd = h.expected_meeting_delay(SimTime::secs(120.0)).unwrap();
        assert!((emd - 25.0).abs() < 1e-12);
        // Elapsed 70: nothing admissible → None.
        assert!(h.expected_meeting_delay(SimTime::secs(170.0)).is_none());
    }

    #[test]
    fn meet_probability_matches_eq4() {
        let mut h = PairHistory::new(8);
        meet_at(&mut h, &[0.0, 30.0, 40.0, 100.0]); // sorted {10, 30, 60}
        let now = SimTime::secs(120.0); // elapsed 20 → M = {30, 60}, m = 2
        assert_eq!(h.admissible_counts(now, 10.0), (2, 1)); // ≤ 30
        assert_eq!(h.meet_probability(now, 10.0), 0.5);
        assert_eq!(h.meet_probability(now, 40.0), 1.0); // both ≤ 60
        assert_eq!(h.meet_probability(now, 5.0), 0.0); // none ≤ 25
                                                       // Overdue: elapsed 70 → m = 0 → probability 0.
        assert_eq!(h.meet_probability(SimTime::secs(170.0), 50.0), 0.0);
    }

    #[test]
    fn eev_sums_pair_probabilities() {
        let mut ch = ContactHistory::new(NodeId(0), 4, 8);
        // Peer 1: periodic every 50 since t=0, last met 200.
        for t in [0.0, 50.0, 100.0, 150.0, 200.0] {
            ch.record_meeting(NodeId(1), SimTime::secs(t));
        }
        // Peer 2: met once (no intervals).
        ch.record_meeting(NodeId(2), SimTime::secs(10.0));
        // Peer 3: never met.
        let now = SimTime::secs(210.0); // elapsed to 1 = 10
                                        // p1: intervals all 50 > 10; ≤ 10+45=55 → all → 1.0.
        let eev = ch.eev(now, 45.0);
        assert!((eev - 1.0).abs() < 1e-12);
        // Short horizon: 10+20=30 < 50 → 0.
        assert_eq!(ch.eev(now, 20.0), 0.0);
    }

    #[test]
    fn eev_over_subset_restricts() {
        let mut ch = ContactHistory::new(NodeId(0), 4, 8);
        for t in [0.0, 50.0, 100.0] {
            ch.record_meeting(NodeId(1), SimTime::secs(t));
            ch.record_meeting(NodeId(2), SimTime::secs(t + 1.0));
        }
        let now = SimTime::secs(110.0);
        let all = ch.eev(now, 100.0);
        let only1 = ch.eev_over(now, 100.0, &[NodeId(1)]);
        let only2 = ch.eev_over(now, 100.0, &[NodeId(2)]);
        assert!((only1 + only2 - all).abs() < 1e-12);
        // `me` in the subset contributes nothing.
        let with_self = ch.eev_over(now, 100.0, &[NodeId(0), NodeId(1)]);
        assert_eq!(with_self, only1);
    }

    #[test]
    fn community_probability_composes() {
        let mut ch = ContactHistory::new(NodeId(0), 4, 8);
        for t in [0.0, 50.0, 100.0] {
            ch.record_meeting(NodeId(1), SimTime::secs(t));
        }
        let now = SimTime::secs(110.0);
        let p1 = ch.pair(NodeId(1)).meet_probability(now, 100.0);
        assert!(p1 > 0.0);
        // Community {1, 3}: 3 never met → P = p1.
        let p = ch.community_meet_probability(now, 100.0, &[NodeId(1), NodeId(3)]);
        assert!((p - p1).abs() < 1e-12);
        // Empty community → 0.
        assert_eq!(ch.community_meet_probability(now, 100.0, &[]), 0.0);
    }

    #[test]
    fn simultaneous_remeeting_keeps_window_consistent() {
        // Zero-length intervals (same-time re-meeting) are ignored.
        let mut h = PairHistory::new(4);
        h.record_meeting(SimTime::secs(5.0));
        h.record_meeting(SimTime::secs(5.0));
        assert!(h.is_empty());
        h.record_meeting(SimTime::secs(10.0));
        assert_eq!(h.intervals(), &[5.0]);
    }
}
