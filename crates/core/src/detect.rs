//! Distributed community detection — the paper's second future-work item
//! ("we will design the distributed community construction method in the CR,
//! which is more suitable for the online routing procedure").
//!
//! This module implements the SIMPLE distributed detection scheme of Hui,
//! Yoneki, Chan & Crowcroft (the algorithm family the paper cites via
//! BUBBLE): each node accumulates per-peer contact duration; peers whose
//! cumulative contact time exceeds a threshold join the node's **familiar
//! set**; the node's **local community** grows by admitting encountered
//! nodes whose familiar set overlaps the community enough, and by merging
//! with communities that overlap heavily.
//!
//! [`CommunityDetector`] is the per-node online state. After a warm-up
//! period, [`detected_map`] aggregates the per-node views into a global
//! [`CommunityMap`] usable by CR — letting the `detected-communities`
//! ablation quantify how much CR loses when communities are learned instead
//! of given.

use crate::community::CommunityMap;
use dtn_sim::{NodeId, SimTime};
use std::collections::HashSet;

/// Parameters of the SIMPLE detector.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Cumulative contact seconds before a peer becomes *familiar*.
    pub familiar_threshold: f64,
    /// Admission rule: admit peer `j` when
    /// `|F_j ∩ C_i| > admit_fraction · |F_j|`.
    pub admit_fraction: f64,
    /// Merge rule: adopt the peer's community members when
    /// `|C_j ∩ C_i| > merge_fraction · |C_j|`.
    pub merge_fraction: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            familiar_threshold: 60.0,
            admit_fraction: 0.5,
            merge_fraction: 0.6,
        }
    }
}

/// Per-node online community-detection state.
#[derive(Clone, Debug)]
pub struct CommunityDetector {
    me: NodeId,
    cfg: DetectorConfig,
    /// Cumulative contact seconds per peer.
    contact_time: Vec<f64>,
    /// Contact start time per peer, while a contact is open.
    open_since: Vec<Option<SimTime>>,
    /// The familiar set `F_i`.
    familiar: HashSet<NodeId>,
    /// The local community `C_i` (always contains `me`).
    community: HashSet<NodeId>,
}

impl CommunityDetector {
    /// Creates a detector for node `me` in a network of `n` nodes.
    pub fn new(me: NodeId, n: u32, cfg: DetectorConfig) -> Self {
        let mut community = HashSet::new();
        community.insert(me);
        CommunityDetector {
            me,
            cfg,
            contact_time: vec![0.0; n as usize],
            open_since: vec![None; n as usize],
            familiar: HashSet::new(),
            community,
        }
    }

    /// The node this detector belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The familiar set `F_i`.
    pub fn familiar(&self) -> &HashSet<NodeId> {
        &self.familiar
    }

    /// The local community `C_i` (includes `me`).
    pub fn community(&self) -> &HashSet<NodeId> {
        &self.community
    }

    /// Records the start of a contact with `peer` and applies the
    /// admission/merge rules against the peer's current state.
    pub fn on_contact_start(&mut self, peer: &CommunityDetector, now: SimTime) {
        self.open_since[peer.me.idx()] = Some(now);
        // Admission: does the peer's familiar set overlap our community?
        if !self.community.contains(&peer.me) && !peer.familiar.is_empty() {
            let overlap = peer
                .familiar
                .iter()
                .filter(|x| self.community.contains(x))
                .count();
            if overlap as f64 > self.cfg.admit_fraction * peer.familiar.len() as f64 {
                self.community.insert(peer.me);
            }
        }
        // Merge: adopt the peer's community wholesale on heavy overlap.
        if self.community.contains(&peer.me) && !peer.community.is_empty() {
            let overlap = peer
                .community
                .iter()
                .filter(|x| self.community.contains(x))
                .count();
            if overlap as f64 > self.cfg.merge_fraction * peer.community.len() as f64 {
                self.community.extend(peer.community.iter().copied());
            }
        }
    }

    /// Records the end of a contact with `peer`, accumulating its duration
    /// and updating the familiar set.
    pub fn on_contact_end(&mut self, peer: NodeId, now: SimTime) {
        if let Some(start) = self.open_since[peer.idx()].take() {
            self.contact_time[peer.idx()] += now.since(start);
            if self.contact_time[peer.idx()] >= self.cfg.familiar_threshold
                && self.familiar.insert(peer)
            {
                // Familiar peers belong to the local community.
                self.community.insert(peer);
            }
        }
    }

    /// Cumulative contact seconds with `peer`.
    pub fn contact_seconds(&self, peer: NodeId) -> f64 {
        self.contact_time[peer.idx()]
    }
}

/// Aggregates per-node detector views into a global [`CommunityMap`] by
/// greedy agreement: nodes are processed in id order; each unassigned node
/// founds a community from its local view, claiming every unassigned member.
///
/// Ties and asymmetric views are resolved in favour of the earlier founder,
/// which keeps the procedure deterministic.
pub fn detected_map(detectors: &[CommunityDetector]) -> CommunityMap {
    let n = detectors.len();
    let mut cid = vec![u32::MAX; n];
    let mut next = 0u32;
    for i in 0..n {
        if cid[i] != u32::MAX {
            continue;
        }
        let c = next;
        next += 1;
        cid[i] = c;
        for member in detectors[i].community() {
            if cid[member.idx()] == u32::MAX {
                cid[member.idx()] = c;
            }
        }
    }
    CommunityMap::new(cid)
}

/// Fraction of node pairs on whose community relation (same / different)
/// two maps agree — the Rand index restricted to pairs.
pub fn pairwise_agreement(a: &CommunityMap, b: &CommunityMap) -> f64 {
    assert_eq!(a.n_nodes(), b.n_nodes());
    let n = a.n_nodes();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            let x = NodeId(i as u32);
            let y = NodeId(j as u32);
            total += 1;
            if a.same_community(x, y) == b.same_community(x, y) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

/// Runs the detectors over a contact trace (offline convenience used by the
/// ablation harness and tests).
pub fn detect_over_trace(
    trace: &dtn_sim::ContactTrace,
    cfg: DetectorConfig,
) -> Vec<CommunityDetector> {
    let n = trace.n_nodes;
    let mut dets: Vec<CommunityDetector> = (0..n)
        .map(|i| CommunityDetector::new(NodeId(i), n, cfg))
        .collect();
    // Replay contacts as (time, up/down, pair) events in time order.
    #[derive(Clone, Copy)]
    enum Ev {
        Up,
        Down,
    }
    let mut events: Vec<(SimTime, Ev, dtn_sim::NodePair)> = Vec::new();
    for c in &trace.contacts {
        events.push((c.start, Ev::Up, c.pair));
        events.push((c.end, Ev::Down, c.pair));
    }
    events.sort_by_key(|x| x.0);
    for (t, ev, pair) in events {
        let (a, b) = (pair.a.idx(), pair.b.idx());
        match ev {
            Ev::Up => {
                let (da, db) = split_two(&mut dets, a, b);
                da.on_contact_start(db, t);
                db.on_contact_start(da, t);
            }
            Ev::Down => {
                dets[a].on_contact_end(NodeId(b as u32), t);
                dets[b].on_contact_end(NodeId(a as u32), t);
            }
        }
    }
    dets
}

fn split_two<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert!(i != j);
    if i < j {
        let (lo, hi) = v.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::{Contact, ContactTrace};

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            familiar_threshold: 10.0,
            admit_fraction: 0.5,
            merge_fraction: 0.6,
        }
    }

    #[test]
    fn familiar_set_needs_cumulative_time() {
        let mut a = CommunityDetector::new(NodeId(0), 3, cfg());
        let b = CommunityDetector::new(NodeId(1), 3, cfg());
        // Two short contacts (6 s each) cross the 10 s threshold together.
        a.on_contact_start(&b, SimTime::secs(0.0));
        a.on_contact_end(NodeId(1), SimTime::secs(6.0));
        assert!(!a.familiar().contains(&NodeId(1)));
        a.on_contact_start(&b, SimTime::secs(20.0));
        a.on_contact_end(NodeId(1), SimTime::secs(26.0));
        assert!(a.familiar().contains(&NodeId(1)));
        assert!(a.community().contains(&NodeId(1)));
        assert!((a.contact_seconds(NodeId(1)) - 12.0).abs() < 1e-9);
    }

    /// Two cliques that meet internally for long stretches and externally
    /// only briefly should be detected as two communities.
    fn two_clique_trace() -> ContactTrace {
        let mut contacts = Vec::new();
        // Clique {0,1,2} and clique {3,4,5}: long recurring internal
        // contacts.
        for rep in 0..10 {
            let t = f64::from(rep) * 100.0;
            for (x, y) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
                contacts.push(Contact::new(
                    x,
                    y,
                    t + f64::from(x + y),
                    t + f64::from(x + y) + 8.0,
                ));
            }
        }
        // One brief cross contact.
        contacts.push(Contact::new(2, 3, 995.0, 996.0));
        ContactTrace::new(6, 1100.0, contacts)
    }

    #[test]
    fn detects_two_cliques() {
        let dets = detect_over_trace(&two_clique_trace(), cfg());
        let map = detected_map(&dets);
        let truth = CommunityMap::new(vec![0, 0, 0, 1, 1, 1]);
        let agreement = pairwise_agreement(&map, &truth);
        assert!(
            agreement > 0.9,
            "detected communities disagree with ground truth: {agreement}"
        );
        // Node 0 and 1 together, node 0 and 4 apart.
        assert!(map.same_community(NodeId(0), NodeId(1)));
        assert!(!map.same_community(NodeId(0), NodeId(4)));
    }

    #[test]
    fn agreement_metric_bounds() {
        let a = CommunityMap::new(vec![0, 0, 1, 1]);
        let b = CommunityMap::new(vec![0, 0, 1, 1]);
        assert_eq!(pairwise_agreement(&a, &b), 1.0);
        let c = CommunityMap::new(vec![0, 1, 0, 1]);
        let x = pairwise_agreement(&a, &c);
        assert!((0.0..=1.0).contains(&x));
        assert!(x < 1.0);
        // Relabelling is free: same partition, different ids.
        let d = CommunityMap::new(vec![1, 1, 0, 0]);
        assert_eq!(pairwise_agreement(&a, &d), 1.0);
    }

    #[test]
    fn detected_map_covers_every_node() {
        let dets = detect_over_trace(&two_clique_trace(), cfg());
        let map = detected_map(&dets);
        assert_eq!(map.n_nodes(), 6);
        let covered: usize = (0..map.n_communities())
            .map(|c| map.members(c as u32).len())
            .sum();
        assert_eq!(covered, 6, "every node assigned exactly once");
    }

    /// On the real bus scenario, detection should recover most of the
    /// district structure.
    #[test]
    fn recovers_district_structure_on_bus_scenario() {
        use dtn_mobility::scenario::ScenarioConfig;
        let scenario = ScenarioConfig::paper(32).sized(4000.0).build(3);
        let dets = detect_over_trace(&scenario.trace, DetectorConfig::default());
        let detected = detected_map(&dets);
        let truth = CommunityMap::new(scenario.communities.clone());
        let agreement = pairwise_agreement(&detected, &truth);
        assert!(
            agreement > 0.6,
            "bus-district detection too weak: {agreement}"
        );
    }
}
