//! EER — the Expected-Encounter-based Routing protocol (§III, Algorithm 1).
//!
//! Per contact between `ui` and `uj` at time `t`:
//!
//! 1. both update their contact histories and average meeting intervals;
//! 2. they exchange `MI` matrices (freshness-gossip of rows) to form an
//!    identical `MI`;
//! 3. for every message `mk` held by `ui` and not `uj`:
//!    * `Mk > 1` replicas → send `⌊Mk · EEVj / (EEVi + EEVj)⌋` replicas,
//!      where the EEVs are Theorem 1 expectations over the horizon
//!      `α · TTLk` (the *residual* TTL — the paper's whole point versus
//!      EBR's rate-based EV);
//!    * `Mk = 1` → forward iff `MEMD(ui, dst) > MEMD(uj, dst)` (Theorem 3
//!      over the shared `MI` with each node's own Theorem-2 EMD row).
//!
//! Implementation notes (documented deviations are engineering, not
//! semantics):
//!
//! * The per-message decision batch is computed once at contact-up — exactly
//!   the structure of Algorithm 1 — and drained transfer-by-transfer as the
//!   link frees up; messages arriving mid-contact wait for the next contact.
//! * A peer that *is* the destination receives custody of all replicas
//!   immediately (delivery short-circuit).
//! * EEVs for equal residual-TTL horizons are cached per contact (the
//!   workload gives every message the same TTL, so this collapses many
//!   evaluations).

use crate::history::{ContactHistory, DEFAULT_WINDOW};
use crate::memd::MemdSolver;
use crate::mi::MiMatrix;
use crate::policy::BufferPolicy;
use dtn_sim::{
    ContactCtx, Message, MessageId, NodeCtx, NodeId, Router, SimTime, TransferAction, TransferPlan,
};
use std::any::Any;
use std::collections::VecDeque;

/// Which estimator feeds the source's own MD row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EmdMode {
    /// Theorem 2: conditional mean of admissible intervals minus elapsed
    /// time (the paper's estimator).
    #[default]
    Theorem2,
    /// Plain mean interval (Jones et al.'s MEED); the `ablation_emd`
    /// baseline.
    MeanInterval,
}

/// EER tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EerConfig {
    /// Quota λ: initial replicas per message (paper's figures use 6–12).
    pub lambda: u32,
    /// The TTL-fraction horizon parameter α (paper: 0.28).
    pub alpha: f64,
    /// Sliding-window length per pair history.
    pub window: usize,
    /// Single-copy forwarding hysteresis in seconds: forward only when the
    /// peer's MEMD is better than ours by more than this margin. The paper's
    /// Algorithm 1 uses a strict `>` (hysteresis 0); a small margin damps
    /// carrier thrashing caused by the elapsed-time term of Theorem 2
    /// oscillating between co-located nodes (quantified by `ablation_emd`).
    pub forward_hysteresis: f64,
    /// Estimator refresh window in seconds: cached MEMD vectors and EEVs are
    /// reused for this long before recomputation. A pure performance knob —
    /// the underlying meeting statistics move on the scale of whole meeting
    /// intervals (hundreds of seconds).
    pub refresh: f64,
    /// Own-row estimator for the MD matrix (Theorem 2 vs. plain means).
    pub emd_mode: EmdMode,
    /// Eviction policy under buffer pressure (future-work extension).
    pub buffer_policy: BufferPolicy,
    /// Adaptive quota (the paper's third future-work item: "network
    /// parameters such as α and λ can be tuned automatically"). When set to
    /// `Some((min, max))`, a freshly created message's quota is the source's
    /// own expected encounter value over the message horizon, clamped to
    /// `[min, max]` — well-connected sources spray wider, isolated sources
    /// conserve copies. `None` uses the fixed λ.
    pub adaptive_lambda: Option<(u32, u32)>,
}

impl Default for EerConfig {
    fn default() -> Self {
        EerConfig {
            lambda: 10,
            alpha: 0.28,
            window: DEFAULT_WINDOW,
            forward_hysteresis: 180.0,
            refresh: 45.0,
            emd_mode: EmdMode::Theorem2,
            buffer_policy: BufferPolicy::default(),
            adaptive_lambda: None,
        }
    }
}

/// One node's EER router instance.
#[derive(Debug)]
pub struct Eer {
    me: NodeId,
    cfg: EerConfig,
    history: ContactHistory,
    mi: MiMatrix,
    solver: MemdSolver,
    /// Pending transfer decisions per active contact.
    queues: Vec<(NodeId, VecDeque<TransferPlan>)>,
    /// Scratch for the own-MI row.
    row_scratch: Vec<f64>,
    /// Cached MEMD vector and the time it was computed (`-∞` = never).
    memd_cache: Vec<f64>,
    memd_time: f64,
    /// Cached EEVs: (τ bits, computed-at seconds, value).
    eev_cache: Vec<(u64, f64, f64)>,
}

impl Eer {
    /// Creates an EER router for `me` in a network of `n` nodes, with the
    /// paper's default parameters and quota `lambda`.
    pub fn new(me: NodeId, n: u32, lambda: u32) -> Self {
        Self::with_config(
            me,
            n,
            EerConfig {
                lambda,
                ..EerConfig::default()
            },
        )
    }

    /// Creates an EER router with explicit parameters.
    ///
    /// # Panics
    /// Panics on zero quota, α outside `[0, 1]`, or an empty window.
    pub fn with_config(me: NodeId, n: u32, cfg: EerConfig) -> Self {
        assert!(cfg.lambda >= 1);
        assert!((0.0..=1.0).contains(&cfg.alpha));
        Eer {
            me,
            cfg,
            history: ContactHistory::new(me, n, cfg.window),
            mi: MiMatrix::new(n),
            solver: MemdSolver::new(),
            queues: Vec::new(),
            row_scratch: Vec::new(),
            memd_cache: Vec::new(),
            memd_time: f64::NEG_INFINITY,
            eev_cache: Vec::new(),
        }
    }

    /// Read access to the contact history (tests/inspection).
    pub fn history(&self) -> &ContactHistory {
        &self.history
    }

    /// Read access to the MI matrix (tests/inspection).
    pub fn mi(&self) -> &MiMatrix {
        &self.mi
    }

    /// This node's Theorem-1 EEV at `now` over horizon `tau`.
    pub fn eev(&self, now: SimTime, tau: f64) -> f64 {
        self.history.eev(now, tau)
    }

    /// Refreshes this node's own MI row from its history means.
    fn refresh_own_row(&mut self, now: SimTime) {
        let n = self.mi.n();
        self.row_scratch.clear();
        self.row_scratch.resize(n, f64::INFINITY);
        for j in 0..n {
            if j == self.me.idx() {
                self.row_scratch[j] = 0.0;
                continue;
            }
            if let Some(mean) = self.history.pair(NodeId(j as u32)).mean_interval() {
                self.row_scratch[j] = mean;
            }
        }
        let row = std::mem::take(&mut self.row_scratch);
        self.mi.set_row(self.me, &row, now.as_secs());
        self.row_scratch = row;
    }

    /// MEMD vector for this node, recomputed at most every `cfg.refresh`
    /// seconds.
    fn memd_cached(&mut self, now: SimTime) -> &[f64] {
        if now.as_secs() - self.memd_time > self.cfg.refresh {
            let d = match self.cfg.emd_mode {
                EmdMode::Theorem2 => self
                    .solver
                    .memd_all(&self.history, &self.mi, now, None)
                    .to_vec(),
                EmdMode::MeanInterval => self
                    .solver
                    .memd_all_mean(&self.history, &self.mi, None)
                    .to_vec(),
            };
            self.memd_cache = d;
            self.memd_time = now.as_secs();
        }
        &self.memd_cache
    }

    /// Theorem-1 EEV with a (τ, time)-bucketed cache (see `cfg.refresh`).
    fn eev_cached(&mut self, now: SimTime, tau: f64) -> f64 {
        let bits = tau.to_bits();
        let t = now.as_secs();
        if let Some(&(_, at, v)) = self
            .eev_cache
            .iter()
            .find(|(b, at, _)| *b == bits && t - at <= self.cfg.refresh)
        {
            let _ = at;
            return v;
        }
        let v = self.history.eev(now, tau);
        self.eev_cache
            .retain(|(_, at, _)| t - at <= self.cfg.refresh);
        self.eev_cache.push((bits, t, v));
        v
    }

    fn queue_mut(&mut self, peer: NodeId) -> &mut VecDeque<TransferPlan> {
        if let Some(pos) = self.queues.iter().position(|(p, _)| *p == peer) {
            return &mut self.queues[pos].1;
        }
        self.queues.push((peer, VecDeque::new()));
        &mut self.queues.last_mut().unwrap().1
    }
}

/// EEV horizons are rounded up to multiples of this many seconds so that
/// per-contact EEV evaluations collapse into a handful of cache buckets.
/// 5 s against the paper's 336 s horizon (α · TTL) is far below the
/// estimator's own resolution (meeting intervals are tens of seconds).
pub const EEV_TAU_QUANTUM: f64 = 5.0;

/// Rounds a horizon up to the quantisation grid.
#[inline]
pub(crate) fn quantise_tau(tau: f64) -> f64 {
    (tau / EEV_TAU_QUANTUM).ceil() * EEV_TAU_QUANTUM
}

/// Computes the replica share for the peer:
/// `⌊copies · ev_peer / (ev_me + ev_peer)⌋`, split evenly when both
/// expectations are zero (cold start).
pub(crate) fn replica_share(copies: u32, ev_me: f64, ev_peer: f64) -> u32 {
    let total = ev_me + ev_peer;
    if total > 0.0 {
        (f64::from(copies) * ev_peer / total).floor() as u32
    } else {
        copies / 2
    }
}

impl Router for Eer {
    fn label(&self) -> &'static str {
        "EER"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn initial_copies(&self, msg: &Message) -> u32 {
        match self.cfg.adaptive_lambda {
            None => self.cfg.lambda,
            Some((min, max)) => {
                let tau = self.cfg.alpha * msg.ttl;
                let eev = self.history.eev(msg.created, tau);
                (eev.round() as u32).clamp(min, max)
            }
        }
    }

    fn on_contact_up(&mut self, ctx: &mut ContactCtx<'_>, peer: &mut dyn Router) {
        let peer_router = peer
            .as_any_mut()
            .downcast_mut::<Eer>()
            .expect("all nodes run EER");
        let now = ctx.now;

        // (1) History + own-row update, (2) MI exchange.
        self.history.record_meeting(ctx.peer, now);
        self.refresh_own_row(now);
        let copied = self.mi.merge_from(&peer_router.mi);
        // Control accounting: each adopted row is n entries + a stamp; the
        // freshness comparison itself costs one stamp per row.
        ctx.control_bytes(8 * (copied * self.mi.n() + self.mi.n()) as u64);

        // (3) Per-message decision batch (Algorithm 1, lines 6–18).
        // MEMD vectors are needed only when single replicas are in play.
        let need_memd = ctx
            .buf
            .iter()
            .any(|e| e.copies == 1 && e.msg.dst != ctx.peer && !ctx.peer_buf.contains(e.msg.id));
        let (my_memd, peer_memd) = if need_memd {
            ctx.control_bytes(16); // MEMD scalar exchange
            (
                self.memd_cached(now).to_vec(),
                peer_router.memd_cached(now).to_vec(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let mut queue: VecDeque<TransferPlan> = VecDeque::new();

        for entry in ctx.buf.iter() {
            let msg = &entry.msg;
            if ctx.peer_buf.contains(msg.id) {
                continue; // both hold replicas: no redistribution (§III-C)
            }
            if msg.dst == ctx.peer {
                queue.push_back(TransferPlan::forward(msg.id));
                continue;
            }
            let tau = quantise_tau(self.cfg.alpha * msg.residual_ttl(now));
            if entry.copies > 1 {
                let ev_me = self.eev_cached(now, tau);
                let ev_peer = peer_router.eev_cached(now, tau);
                ctx.control_bytes(16); // EEV scalar exchange
                let give = replica_share(entry.copies, ev_me, ev_peer);
                if give >= 1 {
                    queue.push_back(TransferPlan::split(msg.id, give));
                }
            } else {
                let mine = my_memd[msg.dst.idx()];
                let theirs = peer_memd[msg.dst.idx()];
                if mine > theirs + self.cfg.forward_hysteresis {
                    queue.push_back(TransferPlan::forward(msg.id));
                }
            }
        }
        *self.queue_mut(ctx.peer) = queue;
    }

    fn on_contact_down(&mut self, _ctx: &mut NodeCtx<'_>, peer: NodeId) {
        self.queues.retain(|(p, _)| *p != peer);
    }

    fn select_drops(
        &mut self,
        buf: &dtn_sim::Buffer,
        incoming: &Message,
        now: SimTime,
    ) -> Vec<MessageId> {
        self.cfg.buffer_policy.victims(buf, incoming, now)
    }

    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        let pos = self.queues.iter().position(|(p, _)| *p == ctx.peer)?;
        let queue = &mut self.queues[pos].1;
        while let Some(plan) = queue.pop_front() {
            let Some(entry) = ctx.buf.get(plan.msg) else {
                continue; // dropped (TTL/eviction) since the decision
            };
            if ctx.sent.contains(&plan.msg) {
                continue;
            }
            if entry.msg.dst != ctx.peer && ctx.peer_buf.contains(plan.msg) {
                continue; // peer acquired it from a third party meanwhile
            }
            let plan = match plan.action {
                TransferAction::Split { give } => {
                    // Copies may have shrunk due to a concurrent contact.
                    let give = give.min(entry.copies);
                    if give == 0 {
                        continue;
                    }
                    if give == entry.copies {
                        TransferPlan::forward(plan.msg)
                    } else {
                        TransferPlan::split(plan.msg, give)
                    }
                }
                _ => plan,
            };
            return Some(plan);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::prelude::*;

    fn eer_factory(lambda: u32) -> impl FnMut(NodeId, u32) -> Box<dyn Router> {
        move |id, n| Box::new(Eer::new(id, n, lambda))
    }

    #[test]
    fn replica_share_math() {
        assert_eq!(replica_share(10, 1.0, 1.0), 5);
        assert_eq!(replica_share(10, 3.0, 1.0), 2);
        assert_eq!(replica_share(10, 0.0, 1.0), 10, "all copies to active peer");
        assert_eq!(replica_share(10, 1.0, 0.0), 0);
        assert_eq!(replica_share(10, 0.0, 0.0), 5, "cold start splits evenly");
        assert_eq!(replica_share(1, 0.0, 0.0), 0, "single copy never splits");
    }

    #[test]
    fn adaptive_lambda_scales_with_connectivity() {
        let cfg = EerConfig {
            adaptive_lambda: Some((2, 12)),
            ..EerConfig::default()
        };
        let mut r = Eer::with_config(NodeId(0), 8, cfg);
        let msg = Message {
            id: dtn_sim::MessageId(0),
            src: NodeId(0),
            dst: NodeId(7),
            size: 100,
            created: SimTime::secs(990.0),
            ttl: 1200.0,
        };
        // No history: EEV 0 → clamped to the minimum.
        assert_eq!(r.initial_copies(&msg), 2);
        // Node 0 meets peers 1..6 every 50 s (last at 950; the message is
        // created 40 s later, within the admissible window): EEV ≈ 6.
        for peer in 1..7u32 {
            for k in 0..20 {
                r.history
                    .record_meeting(NodeId(peer), SimTime::secs(f64::from(k) * 50.0));
            }
        }
        let copies = r.initial_copies(&msg);
        assert!((5..=7).contains(&copies), "EEV-driven quota, got {copies}");
    }

    #[test]
    fn delivers_directly_to_destination() {
        let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(1.0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1000,
            ttl: 90.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), eer_factory(10)).run();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.relayed, 1);
    }

    /// Replicas flow towards the node with the larger expected EV.
    #[test]
    fn splits_towards_higher_eev() {
        // Warm-up: node 1 meets nodes 2..5 periodically → large EEV.
        // Node 0 meets only node 1 rarely → small EEV.
        let mut contacts = vec![];
        for rep in 0..6 {
            for peer in 2..6u32 {
                let t = 20.0 * f64::from(rep) + 2.0 * f64::from(peer);
                contacts.push(Contact::new(1, peer, t, t + 1.0));
            }
        }
        contacts.push(Contact::new(0, 1, 200.0, 210.0));
        let trace = ContactTrace::new(6, 2000.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(150.0),
            src: NodeId(0),
            dst: NodeId(5),
            size: 1000,
            ttl: 1200.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), eer_factory(10)).run();
        // Node 1 should have received most of the 10 replicas in one split.
        assert_eq!(stats.relayed, 1, "a single split transfer 0→1");
    }

    /// Single-copy forwarding follows the MEMD comparison.
    #[test]
    fn single_copy_follows_memd() {
        // Node 1 meets destination 3 periodically; node 0 never does.
        // After history builds up, 0 (λ=1) hands its message to 1.
        let mut contacts = vec![];
        for rep in 0..12 {
            let t = 100.0 * f64::from(rep) + 10.0;
            contacts.push(Contact::new(1, 3, t, t + 2.0));
        }
        // 0 and 1 meet a few times so MI rows propagate.
        contacts.push(Contact::new(0, 1, 450.0, 452.0));
        contacts.push(Contact::new(0, 1, 850.0, 855.0));
        let trace = ContactTrace::new(4, 2000.0, contacts);
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(800.0),
            src: NodeId(0),
            dst: NodeId(3),
            size: 1000,
            ttl: 1200.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), eer_factory(1)).run();
        // Node 1 meets 3 again at 910 → delivery.
        assert_eq!(stats.delivered, 1);
        assert_eq!(
            stats.relayed, 2,
            "handover 0→1 plus the delivery hop 1→3, nothing else"
        );
    }

    /// Symmetric histories ⇒ no single-copy forwarding (strict inequality).
    #[test]
    fn equal_memd_does_not_forward() {
        let trace = ContactTrace::new(
            3,
            500.0,
            vec![
                Contact::new(0, 1, 10.0, 12.0),
                Contact::new(0, 1, 100.0, 102.0),
                Contact::new(0, 1, 200.0, 202.0),
            ],
        );
        let wl = vec![MessageSpec {
            create_at: SimTime::secs(150.0),
            src: NodeId(0),
            dst: NodeId(2), // neither node ever met 2
            size: 1000,
            ttl: 300.0,
        }];
        let stats = Simulation::new(&trace, wl, SimConfig::paper(0), eer_factory(1)).run();
        assert_eq!(stats.relayed, 0, "both MEMDs are ∞ → no forward");
    }

    /// MI rows propagate through gossip: after 0↔1 syncs twice and 1↔2
    /// syncs once, node 2 must know node 0's row (carrying the 0–1 mean
    /// interval) without ever having met node 0.
    #[test]
    fn mi_gossip_propagates() {
        let trace = ContactTrace::new(
            3,
            500.0,
            vec![
                Contact::new(0, 1, 10.0, 12.0),
                Contact::new(0, 1, 50.0, 52.0),
                Contact::new(1, 2, 100.0, 102.0),
            ],
        );
        let mut sim = Simulation::new(&trace, vec![], SimConfig::paper(0), eer_factory(10));
        let stats = sim.run_to_end();
        assert!(stats.control_bytes > 0, "gossip accounted as control bytes");
        let r2 = (sim.router(NodeId(2)) as &dyn std::any::Any)
            .downcast_ref::<Eer>()
            .expect("node 2 runs EER");
        let i01 = r2.mi().get(NodeId(0), NodeId(1));
        assert!(
            (i01 - 40.0).abs() < 1e-9,
            "node 2 should have learned I(0,1) = 40 via node 1, got {i01}"
        );
    }
}
