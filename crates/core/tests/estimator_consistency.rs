//! Cross-checks between the cached/fast paths used inside the routers and
//! the plain estimator definitions — the approximations documented in
//! DESIGN.md must degrade gracefully, not change semantics.

use ce_core::{Eer, EerConfig, MemdSolver, MiMatrix};
use dtn_mobility::scenario::ScenarioConfig;
use dtn_sim::{NodeId, SimConfig, SimTime, Simulation, TrafficConfig};
use std::any::Any;

/// With `refresh = 0`, the EEV/MEMD caches are disabled; the protocol's
/// outcome must match a small-refresh run closely and an aggressive-refresh
/// run approximately (staleness only shifts marginal decisions).
#[test]
fn refresh_caching_degrades_gracefully() {
    let n = 24;
    let duration = 3000.0;
    let scenario = ScenarioConfig::paper(n).sized(duration).build(5);
    let workload = TrafficConfig::paper(duration).generate(n, 5);

    let run = |refresh: f64| {
        let cfg = EerConfig {
            refresh,
            ..EerConfig::default()
        };
        Simulation::new(
            &scenario.trace,
            workload.clone(),
            SimConfig::paper(5),
            move |id, nn| Box::new(Eer::with_config(id, nn, cfg)),
        )
        .run()
    };
    let exact = run(0.0);
    let cached = run(45.0);
    let stale = run(300.0);

    let dr = |s: &dtn_sim::SimStats| s.delivery_ratio();
    assert!(
        (dr(&exact) - dr(&cached)).abs() < 0.12,
        "default caching changed delivery too much: {} vs {}",
        dr(&exact),
        dr(&cached)
    );
    assert!(
        (dr(&exact) - dr(&stale)).abs() < 0.2,
        "even aggressive staleness must stay in the same band: {} vs {}",
        dr(&exact),
        dr(&stale)
    );
}

/// The quantised-τ EEV used by the router equals the exact estimator
/// evaluated at the quantised horizon (quantisation is the *only*
/// difference).
#[test]
fn router_eev_matches_estimator() {
    let mut contacts = vec![];
    for k in 0..10 {
        let t = 40.0 * f64::from(k) + 5.0;
        contacts.push(dtn_sim::Contact::new(0, 1, t, t + 2.0));
        contacts.push(dtn_sim::Contact::new(0, 2, t + 11.0, t + 13.0));
    }
    let trace = dtn_sim::ContactTrace::new(4, 1000.0, contacts);
    let mut sim = Simulation::new(&trace, vec![], SimConfig::paper(0), |id, n| {
        Box::new(Eer::new(id, n, 10))
    });
    sim.run_to_end();
    let r0 = (sim.router(NodeId(0)) as &dyn Any)
        .downcast_ref::<Eer>()
        .unwrap();
    let now = SimTime::secs(400.0);
    for tau in [30.0, 60.0, 120.0, 336.0] {
        let public = r0.eev(now, tau);
        let direct = r0.history().eev(now, tau);
        assert_eq!(public, direct);
        assert!((0.0..=3.0).contains(&public));
    }
}

/// MEMD through the MI is consistent with hand-computed two-hop paths after
/// a simulated gossip chain.
#[test]
fn memd_consistent_after_gossip_chain() {
    // 0 meets 1 every 100 s; 1 meets 2 every 60 s; 0 never meets 2.
    let mut contacts = vec![];
    for k in 0..8 {
        let t = 100.0 * f64::from(k) + 10.0;
        contacts.push(dtn_sim::Contact::new(0, 1, t, t + 2.0));
    }
    for k in 0..12 {
        let t = 60.0 * f64::from(k) + 40.0;
        contacts.push(dtn_sim::Contact::new(1, 2, t, t + 2.0));
    }
    let trace = dtn_sim::ContactTrace::new(3, 1000.0, contacts);
    let mut sim = Simulation::new(&trace, vec![], SimConfig::paper(0), |id, n| {
        Box::new(Eer::new(id, n, 10))
    });
    sim.run_to_end();
    let r0 = (sim.router(NodeId(0)) as &dyn Any)
        .downcast_ref::<Eer>()
        .unwrap();
    // Node 0's MI must know both rows by now.
    let i01 = r0.mi().get(NodeId(0), NodeId(1));
    let i12 = r0.mi().get(NodeId(1), NodeId(2));
    assert!((i01 - 100.0).abs() < 5.0, "I(0,1) ≈ 100, got {i01}");
    assert!((i12 - 60.0).abs() < 5.0, "I(1,2) ≈ 60, got {i12}");
    // MEMD(0→2) computed now must be ≤ EMD(0→1) + I(1,2) and > 0.
    let mut solver = MemdSolver::new();
    let now = SimTime::secs(750.0);
    let d = solver.memd_all(r0.history(), r0.mi(), now, None).to_vec();
    let emd01 = r0
        .history()
        .pair(NodeId(1))
        .expected_meeting_delay(now)
        .expect("0 and 1 have admissible history at 750");
    assert!(d[2] > 0.0 && d[2].is_finite());
    assert!(
        (d[2] - (emd01 + i12)).abs() < 1e-9,
        "two-hop path composition"
    );
}

/// A fresh MiMatrix has no influence on MEMD: everything unreachable.
#[test]
fn memd_on_empty_matrix_is_unreachable() {
    let mi = MiMatrix::new(5);
    let mut solver = MemdSolver::new();
    let row = mi.row(NodeId(0)).to_vec();
    let d = solver.memd_from(NodeId(0), &mi, &row, None);
    assert_eq!(d[0], 0.0);
    for dv in &d[1..5] {
        assert!(dv.is_infinite());
    }
}
