//! Property-based tests of the paper's estimators (Theorems 1, 2 and 4) and
//! the MI gossip.

use ce_core::{CommunityMap, ContactHistory, MemdSolver, MiMatrix, PairHistory};
use dtn_sim::{NodeId, SimTime};
use proptest::prelude::*;

/// Builds a pair history from positive inter-meeting gaps.
fn history_from_gaps(gaps: &[f64], window: usize) -> (PairHistory, f64) {
    let mut h = PairHistory::new(window);
    let mut t = 0.0;
    h.record_meeting(SimTime::secs(t));
    for g in gaps {
        t += g;
        h.record_meeting(SimTime::secs(t));
    }
    (h, t)
}

proptest! {
    /// Eq. 4 probabilities are valid probabilities, monotone in the horizon
    /// τ, and consistent with the admissible counts.
    #[test]
    fn meet_probability_is_monotone_probability(
        gaps in proptest::collection::vec(0.5f64..500.0, 1..40),
        elapsed in 0.0f64..600.0,
        tau_a in 0.0f64..700.0,
        extra in 0.0f64..700.0,
    ) {
        let (h, last) = history_from_gaps(&gaps, 16);
        let now = SimTime::secs(last + elapsed);
        let p_a = h.meet_probability(now, tau_a);
        let p_b = h.meet_probability(now, tau_a + extra);
        prop_assert!((0.0..=1.0).contains(&p_a));
        prop_assert!((0.0..=1.0).contains(&p_b));
        prop_assert!(p_b >= p_a - 1e-12, "probability must grow with τ");
        let (m, mt) = h.admissible_counts(now, tau_a);
        prop_assert!(mt <= m);
        if m > 0 {
            prop_assert!((p_a - mt as f64 / m as f64).abs() < 1e-12);
        } else {
            prop_assert_eq!(p_a, 0.0);
        }
    }

    /// Theorem 2: the EMD is non-negative... more precisely, EMD + elapsed
    /// equals the conditional mean of admissible intervals, which exceeds
    /// the elapsed time by construction.
    #[test]
    fn emd_is_conditional_mean_minus_elapsed(
        gaps in proptest::collection::vec(0.5f64..500.0, 1..40),
        elapsed in 0.0f64..600.0,
    ) {
        let (h, last) = history_from_gaps(&gaps, 16);
        let now = SimTime::secs(last + elapsed);
        match h.expected_meeting_delay(now) {
            Some(emd) => {
                prop_assert!(emd >= -1e-9, "EMD must be non-negative, got {emd}");
                // Conditional mean computed directly from the window.
                let adm: Vec<f64> = h.intervals().iter().copied().filter(|&x| x > elapsed).collect();
                prop_assert!(!adm.is_empty());
                let mean = adm.iter().sum::<f64>() / adm.len() as f64;
                prop_assert!((emd - (mean - elapsed)).abs() < 1e-9);
            }
            None => {
                // Only when nothing is admissible.
                prop_assert!(h.intervals().iter().all(|&x| x <= elapsed));
            }
        }
    }

    /// The sliding window never exceeds its size and keeps the most recent
    /// intervals.
    #[test]
    fn window_bounds_history(
        gaps in proptest::collection::vec(0.5f64..500.0, 1..60),
        window in 1usize..12,
    ) {
        let (h, _) = history_from_gaps(&gaps, window);
        prop_assert!(h.len() <= window);
        prop_assert_eq!(h.len(), gaps.len().min(window));
        // Sorted invariant.
        let iv = h.intervals();
        prop_assert!(iv.windows(2).all(|w| w[0] <= w[1]));
        // The retained multiset is exactly the most recent `window` gaps.
        let mut expect: Vec<f64> = gaps[gaps.len().saturating_sub(window)..].to_vec();
        expect.sort_by(f64::total_cmp);
        for (a, b) in iv.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Theorem 1: EEV is the sum of the per-pair probabilities, so it is
    /// bounded by the number of peers and additive over community subsets.
    #[test]
    fn eev_is_additive_and_bounded(
        schedule in proptest::collection::vec(
            (1u32..8, proptest::collection::vec(0.5f64..300.0, 1..12)),
            1..8
        ),
        tau in 1.0f64..500.0,
    ) {
        let n = 8;
        let mut h = ContactHistory::new(NodeId(0), n, 16);
        for (peer, gaps) in &schedule {
            let mut t = f64::from(*peer); // desynchronise
            h.record_meeting(NodeId(*peer), SimTime::secs(t));
            for g in gaps {
                t += g;
                h.record_meeting(NodeId(*peer), SimTime::secs(t));
            }
        }
        let now = SimTime::secs(2_000.0);
        let eev = h.eev(now, tau);
        prop_assert!(eev >= 0.0 && eev <= f64::from(n - 1) + 1e-9);
        // Partition {1..3} / {4..7} must sum to the total.
        let left: Vec<NodeId> = (1..4).map(NodeId).collect();
        let right: Vec<NodeId> = (4..8).map(NodeId).collect();
        let sum = h.eev_over(now, tau, &left) + h.eev_over(now, tau, &right);
        prop_assert!((sum - eev).abs() < 1e-9);

        // Theorem 4: ENEC of singleton foreign communities equals EEV of
        // those nodes (product collapses), and is bounded by l - 1.
        let map = CommunityMap::new(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let enec = map.enec(&h, now, tau);
        prop_assert!((enec - eev).abs() < 1e-9, "singleton communities: ENEC == EEV");
        let map2 = CommunityMap::new(vec![0, 1, 1, 1, 2, 2, 2, 2]);
        let enec2 = map2.enec(&h, now, tau);
        prop_assert!(enec2 <= 2.0 + 1e-9);
        prop_assert!(enec2 <= eev + 1e-9, "union bound");
    }

    /// MI gossip: merging is idempotent and commutative in its fixed point —
    /// after both sides sync twice, the matrices agree.
    #[test]
    fn mi_merge_converges(rows in proptest::collection::vec((0u32..6, 0.0f64..100.0, 1.0f64..1e4), 0..24)) {
        let n = 6;
        let mut a = MiMatrix::new(n);
        let mut b = MiMatrix::new(n);
        for (chunk, (row, time, val)) in rows.iter().enumerate() {
            let target = if chunk % 2 == 0 { &mut a } else { &mut b };
            let mut values = vec![f64::INFINITY; n as usize];
            for (j, v) in values.iter_mut().enumerate() {
                if j as u32 != *row {
                    *v = val + j as f64;
                }
            }
            // Strictly increasing stamps so no two writes tie (ties with
            // different data are unresolvable for any gossip and cannot
            // occur in the protocol, where each row has one writer).
            target.set_row(NodeId(*row), &values, *time + chunk as f64 * 2000.0);
        }
        a.merge_from(&b);
        b.merge_from(&a);
        let copied_second_round = a.merge_from(&b);
        prop_assert_eq!(copied_second_round, 0, "a must already be a fixed point");
        prop_assert!(a.same_data(&b));
    }

    /// MEMD never increases when an extra finite edge is added to the MI
    /// (shortest paths are monotone under edge addition).
    #[test]
    fn memd_monotone_under_edge_addition(
        base in proptest::collection::vec((0u32..6, 1u32..6, 1.0f64..1000.0), 1..12),
        extra in (0u32..6, 1u32..6, 1.0f64..1000.0),
    ) {
        let n = 6;
        let build = |edges: &[(u32, u32, f64)]| {
            let mut mi = MiMatrix::new(n);
            for &(i, j, w) in edges {
                if i == j { continue; }
                // Keep the cheaper weight when an edge repeats, so appending
                // an entry can only *add* capability (the property needs a
                // genuine edge addition, not an overwrite).
                if w < mi.get(NodeId(i), NodeId(j)) {
                    mi.set_entry(NodeId(i), NodeId(j), w, 1.0);
                    mi.set_entry(NodeId(j), NodeId(i), w, 1.0);
                }
            }
            mi
        };
        let mi1 = build(&base);
        let mut with_extra = base.clone();
        with_extra.push(extra);
        let mi2 = build(&with_extra);
        let mut solver = MemdSolver::new();
        let row1 = mi1.row(NodeId(0)).to_vec();
        let d1 = solver.memd_from(NodeId(0), &mi1, &row1, None).to_vec();
        let row2 = mi2.row(NodeId(0)).to_vec();
        let d2 = solver.memd_from(NodeId(0), &mi2, &row2, None).to_vec();
        for v in 0..n as usize {
            prop_assert!(d2[v] <= d1[v] + 1e-9, "adding an edge increased MEMD to {v}");
        }
    }
}
