//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships the
//! subset of the rand 0.8 API its crates actually use: [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen`], [`Rng::gen_bool`], and
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same family
//! rand 0.8 uses for `SmallRng` on 64-bit targets. Streams are deterministic
//! per seed (which is all the simulator requires) but are not guaranteed to be
//! bit-identical to upstream rand.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered on [`RngCore`], mirroring rand 0.8's `Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A sample of the "standard" distribution of `T` (`f64`/`f32`: uniform
    /// in `[0, 1)`; integers: uniform over all values; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::standard(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Distribution of "natural" uniform samples for a type (rand's `Standard`).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable over an interval.
///
/// The single blanket [`SampleRange`] impl over this trait ties the range's
/// element type to `gen_range`'s return type during inference, exactly like
/// rand 0.8's `SampleUniform`/`SampleRange` pairing.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the multiply-shift unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::standard(rng);
                let v = lo + u * (hi - lo);
                if inclusive {
                    v.clamp(lo, hi)
                } else if v >= hi {
                    // Floating rounding may land exactly on `hi`; fold back.
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the small-state generator family rand 0.8 uses for its
    /// `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&y));
            let z: usize = rng.gen_range(0..=4);
            assert!(z <= 4);
            let w: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
