//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements the
//! subset of proptest's API the workspace's property tests use: the
//! [`Strategy`] trait with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//! range and tuple strategies, [`collection::vec`], [`Just`], [`any`], the
//! [`proptest!`] test macro and the `prop_assert*` macros.
//!
//! Differences from real proptest: inputs are sampled from a fixed-seed
//! deterministic RNG (runs are reproducible), and failing cases are reported
//! without shrinking.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};
use std::ops::Range;

/// The RNG handed to strategies while generating a case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-test RNG; `salt` separates the streams of different
    /// tests so they do not explore identical tuples.
    pub fn deterministic(salt: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(0xC0FF_EE00 ^ salt))
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f`, which returns a follow-up strategy;
    /// the final value is drawn from that follow-up strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies compose by reference too (proptest parity).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// A strategy over the full value space of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over every value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy over the full value space of a primitive.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a proptest case, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported forms match the subset of real proptest used in this workspace:
/// an optional `#![proptest_config(...)]` header followed by test functions
/// with `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) ) => {};
    (
        @cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Salt the stream with the test name so sibling tests diverge.
            let salt = stringify!($name)
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
            let mut rng = $crate::TestRng::deterministic(salt);
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(e) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic seed; no shrinking)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::TestRng::deterministic(1);
        let s = (1u32..5, 0.0f64..1.0);
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::deterministic(2);
        let s = crate::collection::vec(0u8..10, 3..6);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((3..6).contains(&v.len()));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = crate::TestRng::deterministic(3);
        let s = (2u32..10).prop_flat_map(|n| (Just(n), 0u32..n));
        for _ in 0..200 {
            let (n, x) = s.sample(&mut rng);
            assert!(x < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_each_argument(a in 0u32..10, mut v in crate::collection::vec(0u32..4, 1..5)) {
            v.push(a);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert_eq!(*v.last().unwrap(), a);
        }
    }
}
