//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! benchmarking surface the workspace's `[[bench]]` targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — measuring wall-clock
//! time with `std::time::Instant` and printing mean/min per-iteration times.
//!
//! Statistical analysis, plots and HTML reports of real criterion are out of
//! scope; numbers printed here are honest but unsophisticated means.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (accepted for API parity; the
/// stand-in times the routine per invocation either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations.
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::with_capacity(samples),
        }
    }

    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = routine();
            self.times.push(t0.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.times.push(t0.elapsed());
            drop(out);
        }
    }

    fn report(&self, name: &str) {
        if self.times.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let total: Duration = self.times.iter().sum();
        let mean = total / self.times.len() as u32;
        let min = self.times.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<44} mean {mean:>12.2?}  min {min:>12.2?}  ({} samples)",
            self.times.len()
        );
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` (and criterion's own convention) passes
        // `--test`: run each benchmark once, unmeasured, as a smoke check.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group; member benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.parent.effective_samples());
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group (formatting no-op; consumes the group like criterion).
    pub fn finish(self) {}
}

/// Declares a benchmark group: a function running each target against a
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 64],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        quick(&mut c);
    }

    criterion_group! {
        name = demo;
        config = Criterion { sample_size: 1, test_mode: true };
        targets = quick
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo();
    }
}
