//! First-class scenario and workload specifications.
//!
//! A [`ScenarioSpec`] is a *value* describing how to obtain a contact
//! process — the paper's bus-city, random waypoint, or a replayed trace —
//! and a [`WorkloadSpec`] is a value describing the message workload laid on
//! top of it. The two compose freely: any workload runs on any mobility
//! model. Both are deterministic functions of `(spec, seed, duration)` and
//! expose a canonical [`cache_key`](ScenarioSpec::cache_key) string so
//! downstream caches can memoise builds without a lossy `(n, seed)` tuple.
//!
//! ```
//! use dtn_mobility::{ScenarioSpec, WorkloadSpec};
//!
//! // Parse → build: an 8-node random-waypoint scenario on a 300 s horizon
//! // with a hotspot workload laid over it.
//! let spec = ScenarioSpec::parse("rwp", 8).unwrap();
//! let scenario = spec.build(1, Some(300.0)).unwrap();
//! assert_eq!(scenario.trace.n_nodes, 8);
//! let workload = WorkloadSpec::parse("hotspot").unwrap()
//!     .generate(8, scenario.trace.duration, 1);
//! assert!(!workload.is_empty());
//!
//! // Builds are deterministic functions of (spec, seed, duration) ...
//! let again = spec.build(1, Some(300.0)).unwrap();
//! assert_eq!(scenario.trace.contacts.len(), again.trace.contacts.len());
//! // ... and distinct specs can never share a cache key.
//! assert_ne!(spec.cache_key(), ScenarioSpec::paper(8).cache_key());
//! ```

use crate::contacts::{generate_trace, ContactGenConfig};
use crate::geometry::{Point, Rect};
use crate::rwp::RwpConfig;
use crate::scenario::{Scenario, ScenarioConfig};
use crate::shard::ShardedContactSource;
use crate::stream::MobilityContactSource;
use crate::trajectory::Trajectory;
use crate::RoadGraphBuilder;
use dtn_sim::{
    ContactSource, ContactTrace, MessageSpec, NodeId, SimTime, TraceReplaySource, TrafficConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// Where a replayed contact trace comes from.
#[derive(Clone, Debug)]
pub enum TraceSource {
    /// A plain-text trace file (the `dtn_sim::trace` format).
    Path(String),
    /// A pre-parsed trace, e.g. built programmatically or already loaded.
    Inline {
        /// The trace itself.
        trace: Arc<ContactTrace>,
        /// FNV-1a content fingerprint, computed once at construction so
        /// cache-key derivation never rehashes the contact list.
        fingerprint: u64,
    },
}

/// A first-class, buildable description of a contact scenario.
///
/// Every variant builds deterministically from `(self, seed, duration)`;
/// [`ScenarioSpec::cache_key`] is injective over the variant's parameters
/// (floats are keyed by their bit patterns) so distinct specs never collide
/// in a cache.
#[derive(Clone, Debug)]
pub enum ScenarioSpec {
    /// The ICPP'11 §V-A setting: buses on a synthetic downtown map with
    /// district communities.
    PaperBusCity {
        /// Number of buses (network nodes).
        n_nodes: u32,
    },
    /// The city-scale family: districts on a wide map with day/night
    /// schedule halves ([`ScenarioConfig::city`]). Designed for large `n`
    /// through the streaming contact path.
    City {
        /// Number of buses (network nodes).
        n_nodes: u32,
        /// Number of districts (= communities and map bands).
        districts: u32,
        /// Buses-per-route cap: the route count is raised until no route
        /// carries more than `bpr` buses, so per-route density — and with it
        /// contact volume — stops growing with `n`.
        bpr: u32,
    },
    /// Random waypoint in a square area — a memoryless, community-free
    /// baseline.
    RandomWaypoint {
        /// Number of nodes.
        n_nodes: u32,
        /// Side of the square movement area in metres.
        area_side: f64,
        /// Minimum speed (m/s).
        speed_min: f64,
        /// Maximum speed (m/s).
        speed_max: f64,
        /// Radio range in metres.
        range: f64,
        /// Maximum pause at each waypoint (uniform in `[0, max]`).
        pause_max: f64,
    },
    /// Replay of a recorded contact trace; runs at the trace's native
    /// horizon.
    TraceReplay {
        /// Where the trace comes from.
        source: TraceSource,
    },
}

impl ScenarioSpec {
    /// The default horizon used by every generated scenario (the paper's
    /// 10 000 s).
    pub const DEFAULT_DURATION: f64 = 10_000.0;

    /// The paper's bus-city for `n_nodes` nodes.
    pub fn paper(n_nodes: u32) -> Self {
        ScenarioSpec::PaperBusCity { n_nodes }
    }

    /// The city-scale family with an explicit district count and the
    /// default buses-per-route cap ([`ScenarioSpec::bpr_for`]).
    pub fn city(n_nodes: u32, districts: u32) -> Self {
        Self::city_with_bpr(n_nodes, districts, Self::bpr_for(n_nodes))
    }

    /// The city-scale family with explicit district count and buses-per-route
    /// cap.
    pub fn city_with_bpr(n_nodes: u32, districts: u32, bpr: u32) -> Self {
        ScenarioSpec::City {
            n_nodes,
            districts: districts.max(1),
            bpr: bpr.max(1),
        }
    }

    /// The default district count for a city of `n` nodes: grows like √n so
    /// per-district fleet density stays roughly constant (n = 10³ → 4,
    /// 10⁴ → 13, 10⁵ → 40).
    pub fn districts_for(n_nodes: u32) -> u32 {
        (((f64::from(n_nodes)).sqrt() / 8.0).round() as u32).max(4)
    }

    /// The default buses-per-route cap for a city of `n` nodes: grows like
    /// √n but clamps at 64, so contact volume grows ~n·64 at scale instead
    /// of ~n^1.5 (n ≤ 10³ → 4, 10⁴ → 13, 10⁵ → 40, 10⁶ → 64). Below
    /// n ≈ 1000 the cap never binds — the district-driven route count
    /// already spreads buses thinner.
    pub fn bpr_for(n_nodes: u32) -> u32 {
        (((f64::from(n_nodes)).sqrt() / 8.0).round() as u32).clamp(4, 64)
    }

    /// Random waypoint with the paper's speed range and radio range in a
    /// 1 km × 1 km area.
    pub fn rwp(n_nodes: u32) -> Self {
        ScenarioSpec::RandomWaypoint {
            n_nodes,
            area_side: 1_000.0,
            speed_min: 2.7,
            speed_max: 13.9,
            range: 10.0,
            pause_max: 10.0,
        }
    }

    /// Replay of the trace file at `path`.
    pub fn trace_path(path: impl Into<String>) -> Self {
        ScenarioSpec::TraceReplay {
            source: TraceSource::Path(path.into()),
        }
    }

    /// Replay of an already-parsed trace.
    pub fn trace(trace: Arc<ContactTrace>) -> Self {
        let fingerprint = trace_fingerprint(&trace);
        ScenarioSpec::TraceReplay {
            source: TraceSource::Inline { trace, fingerprint },
        }
    }

    /// Parses a CLI scenario argument: `paper`, `paper:n=<n>` (the city
    /// family at paper-like defaults), `city[:n=<n>][:d=<d>]`, `rwp` (alias
    /// `random-waypoint`), or `trace:<path>`.
    pub fn parse(s: &str, n_nodes: u32) -> Result<Self, String> {
        fn kv(part: &str, key: &str) -> Option<Result<u32, String>> {
            let v = part.strip_prefix(key)?.strip_prefix('=')?;
            Some(v.parse::<u32>().map_err(|e| format!("{key}: {e}")))
        }
        let bad = || {
            format!(
                "unknown scenario `{s}` (expected paper[:n=<n>], city[:n=<n>][:d=<d>], \
                 rwp, or trace:<path>)"
            )
        };
        match s {
            "paper" => return Ok(ScenarioSpec::paper(n_nodes)),
            "rwp" | "random-waypoint" => return Ok(ScenarioSpec::rwp(n_nodes)),
            "city" => return Ok(ScenarioSpec::city(n_nodes, Self::districts_for(n_nodes))),
            _ => {}
        }
        match s.split_once(':') {
            Some(("trace", path)) if !path.is_empty() => Ok(ScenarioSpec::trace_path(path)),
            Some(("paper", rest)) => {
                let n = kv(rest, "n").ok_or_else(bad)??;
                if n < 2 {
                    return Err("city scenario needs n >= 2".into());
                }
                Ok(ScenarioSpec::city(n, Self::districts_for(n)))
            }
            Some(("city", rest)) => {
                let mut n = n_nodes;
                let mut d = None;
                let mut bpr = None;
                for part in rest.split(':') {
                    if let Some(v) = kv(part, "n") {
                        n = v?;
                    } else if let Some(v) = kv(part, "d") {
                        d = Some(v?);
                    } else if let Some(v) = kv(part, "bpr") {
                        bpr = Some(v?);
                    } else {
                        return Err(bad());
                    }
                }
                if n < 2 {
                    return Err("city scenario needs n >= 2".into());
                }
                let d = d.unwrap_or_else(|| Self::districts_for(n));
                if d == 0 {
                    return Err("city scenario needs d >= 1".into());
                }
                let bpr = bpr.unwrap_or_else(|| Self::bpr_for(n));
                if bpr == 0 {
                    return Err("city scenario needs bpr >= 1".into());
                }
                Ok(ScenarioSpec::city_with_bpr(n, d, bpr))
            }
            _ => Err(bad()),
        }
    }

    /// The node count declared by the spec, or `None` for trace replay
    /// (known only after loading).
    pub fn declared_nodes(&self) -> Option<u32> {
        match *self {
            ScenarioSpec::PaperBusCity { n_nodes }
            | ScenarioSpec::City { n_nodes, .. }
            | ScenarioSpec::RandomWaypoint { n_nodes, .. } => Some(n_nodes),
            ScenarioSpec::TraceReplay { .. } => None,
        }
    }

    /// The horizon the spec runs at when no override is given: the paper's
    /// duration for generated scenarios, `None` (= the recording's native
    /// horizon) for trace replay.
    pub fn default_duration(&self) -> Option<f64> {
        match self {
            ScenarioSpec::TraceReplay { .. } => None,
            _ => Some(Self::DEFAULT_DURATION),
        }
    }

    /// Canonical, injective encoding of the spec for cache keys. Floats are
    /// encoded by bit pattern; inline traces by a content fingerprint, so
    /// equal trace contents share a cache entry.
    pub fn cache_key(&self) -> String {
        match self {
            ScenarioSpec::PaperBusCity { n_nodes } => format!("paper:n={n_nodes}"),
            ScenarioSpec::City {
                n_nodes,
                districts,
                bpr,
            } => {
                format!("city:n={n_nodes}:d={districts}:bpr={bpr}")
            }
            ScenarioSpec::RandomWaypoint {
                n_nodes,
                area_side,
                speed_min,
                speed_max,
                range,
                pause_max,
            } => format!(
                "rwp:n={n_nodes}:a={:016x}:v={:016x}-{:016x}:r={:016x}:p={:016x}",
                area_side.to_bits(),
                speed_min.to_bits(),
                speed_max.to_bits(),
                range.to_bits(),
                pause_max.to_bits()
            ),
            ScenarioSpec::TraceReplay { source } => match source {
                TraceSource::Path(p) => format!("trace:path={p}"),
                TraceSource::Inline { fingerprint, .. } => {
                    format!("trace:inline={fingerprint:016x}")
                }
            },
        }
    }

    /// Builds the scenario deterministically.
    ///
    /// `duration` of `None` means the spec's default horizon. Trace replay
    /// always runs at the recording's native horizon and rejects a
    /// conflicting override. Replayed traces carry no community ground
    /// truth; their `communities` come back all-zero — callers that need
    /// real structure run online detection on the trace.
    pub fn build(&self, seed: u64, duration: Option<f64>) -> Result<Scenario, String> {
        match self {
            ScenarioSpec::PaperBusCity { .. } | ScenarioSpec::City { .. } => {
                Ok(self.bus_config(duration).build(seed))
            }
            ScenarioSpec::RandomWaypoint { n_nodes, range, .. } => {
                let dur = duration.unwrap_or(Self::DEFAULT_DURATION);
                let trajectories = self.rwp_trajectories(dur, seed);
                let trace = generate_trace(
                    &trajectories,
                    dur,
                    ContactGenConfig {
                        range: *range,
                        ..ContactGenConfig::default()
                    },
                );
                Ok(Scenario {
                    trace,
                    communities: vec![0; *n_nodes as usize],
                    n_communities: 1,
                    graph: RoadGraphBuilder::new().build(),
                    trajectories,
                })
            }
            ScenarioSpec::TraceReplay { source } => {
                let trace = load_trace(source, duration)?;
                let n = trace.n_nodes;
                Ok(Scenario {
                    trace,
                    communities: vec![0; n as usize],
                    n_communities: 1,
                    graph: RoadGraphBuilder::new().build(),
                    trajectories: Vec::new(),
                })
            }
        }
    }

    /// Builds the streaming form of the scenario: a demand-driven
    /// [`ContactSource`] plus community ground truth, without ever
    /// materializing the contact trace. For generated scenarios this drives
    /// bit-identical simulations to [`ScenarioSpec::build`] + trace replay
    /// (see [`crate::stream`]); at city scale it is the only feasible path,
    /// since peak memory stays bounded by the generation window.
    pub fn build_stream(&self, seed: u64, duration: Option<f64>) -> Result<StreamScenario, String> {
        self.build_stream_threads(seed, duration, 1)
    }

    /// Like [`ScenarioSpec::build_stream`], with the contact scan sharded
    /// across `threads` workers ([`ShardedContactSource`]). The simulation
    /// result is bit-identical for every thread count — which is exactly why
    /// a run's thread count is not part of any cache key. `threads <= 1`
    /// selects the plain single-threaded source; trace replay has no scan to
    /// shard and ignores the parameter.
    pub fn build_stream_threads(
        &self,
        seed: u64,
        duration: Option<f64>,
        threads: u32,
    ) -> Result<StreamScenario, String> {
        fn source(
            trajs: Vec<Trajectory>,
            duration: f64,
            cfg: ContactGenConfig,
            threads: u32,
        ) -> Box<dyn ContactSource> {
            if threads > 1 {
                Box::new(ShardedContactSource::new(
                    trajs,
                    duration,
                    cfg,
                    threads as usize,
                ))
            } else {
                Box::new(MobilityContactSource::new(trajs, duration, cfg))
            }
        }
        match self {
            ScenarioSpec::PaperBusCity { .. } | ScenarioSpec::City { .. } => {
                let cfg = self.bus_config(duration);
                let parts = cfg.build_parts(seed);
                Ok(StreamScenario {
                    n_nodes: cfg.n_nodes,
                    duration: cfg.duration,
                    communities: parts.communities,
                    n_communities: parts.n_communities,
                    source: source(parts.trajectories, cfg.duration, cfg.contact, threads),
                })
            }
            ScenarioSpec::RandomWaypoint { n_nodes, range, .. } => {
                let dur = duration.unwrap_or(Self::DEFAULT_DURATION);
                let trajectories = self.rwp_trajectories(dur, seed);
                Ok(StreamScenario {
                    n_nodes: *n_nodes,
                    duration: dur,
                    communities: vec![0; *n_nodes as usize],
                    n_communities: 1,
                    source: source(
                        trajectories,
                        dur,
                        ContactGenConfig {
                            range: *range,
                            ..ContactGenConfig::default()
                        },
                        threads,
                    ),
                })
            }
            ScenarioSpec::TraceReplay { source } => {
                let trace = load_trace(source, duration)?;
                Ok(StreamScenario {
                    n_nodes: trace.n_nodes,
                    duration: trace.duration,
                    communities: vec![0; trace.n_nodes as usize],
                    n_communities: 1,
                    source: Box::new(TraceReplaySource::new(&trace)),
                })
            }
        }
    }

    /// The [`ScenarioConfig`] behind the bus-based variants, with the
    /// duration override applied.
    ///
    /// # Panics
    /// Panics if called on a non-bus variant.
    fn bus_config(&self, duration: Option<f64>) -> ScenarioConfig {
        let base = match *self {
            ScenarioSpec::PaperBusCity { n_nodes } => ScenarioConfig::paper(n_nodes),
            ScenarioSpec::City {
                n_nodes,
                districts,
                bpr,
            } => {
                let mut cfg = ScenarioConfig::city(n_nodes, districts);
                // Enough routes that none carries more than `bpr` buses.
                cfg.n_routes = cfg.n_routes.max(n_nodes.div_ceil(bpr));
                cfg
            }
            _ => unreachable!("bus_config on a non-bus spec"),
        };
        ScenarioConfig {
            duration: duration.unwrap_or(Self::DEFAULT_DURATION),
            ..base
        }
    }

    /// The random-waypoint trajectory set (shared by the materialized and
    /// streaming builds; per-node seeding keeps it order-independent).
    ///
    /// # Panics
    /// Panics if called on a non-RWP variant.
    fn rwp_trajectories(&self, dur: f64, seed: u64) -> Vec<Trajectory> {
        let ScenarioSpec::RandomWaypoint {
            n_nodes,
            area_side,
            speed_min,
            speed_max,
            pause_max,
            ..
        } = *self
        else {
            unreachable!("rwp_trajectories on a non-RWP spec");
        };
        let cfg = RwpConfig {
            area: Rect::new(Point::new(0.0, 0.0), Point::new(area_side, area_side)),
            speed_min,
            speed_max,
            pause_max,
        };
        (0..n_nodes)
            .map(|k| {
                let mut rng = SmallRng::seed_from_u64(
                    (seed ^ 0x7277_705f_u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(u64::from(k)),
                );
                cfg.trajectory(dur, &mut rng)
            })
            .collect()
    }
}

/// Loads and validates the trace behind a [`TraceSource`], rejecting a
/// conflicting duration override.
fn load_trace(source: &TraceSource, duration: Option<f64>) -> Result<ContactTrace, String> {
    let trace = match source {
        TraceSource::Path(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            ContactTrace::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        TraceSource::Inline { trace, .. } => trace.as_ref().clone(),
    };
    if let Some(d) = duration {
        if (d - trace.duration).abs() > 1e-9 {
            return Err(format!(
                "duration override {d} conflicts with the trace's recorded \
                 horizon {}; trace replay runs at its native duration",
                trace.duration
            ));
        }
    }
    Ok(trace)
}

/// The streaming counterpart of [`Scenario`]: the contact process as a
/// demand-driven [`ContactSource`] instead of a materialized trace.
pub struct StreamScenario {
    /// The contact supply, ready for `dtn_sim::Simulation::from_source`.
    pub source: Box<dyn ContactSource>,
    /// Number of nodes.
    pub n_nodes: u32,
    /// Horizon in seconds.
    pub duration: f64,
    /// Community id per node (all-zero when the model carries none).
    pub communities: Vec<u32>,
    /// Number of communities.
    pub n_communities: u32,
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioSpec::PaperBusCity { n_nodes } => write!(f, "paper(n={n_nodes})"),
            ScenarioSpec::City {
                n_nodes,
                districts,
                bpr,
            } => {
                write!(f, "city(n={n_nodes}, d={districts}, bpr={bpr})")
            }
            ScenarioSpec::RandomWaypoint { n_nodes, .. } => write!(f, "rwp(n={n_nodes})"),
            ScenarioSpec::TraceReplay { source } => match source {
                TraceSource::Path(p) => write!(f, "trace({p})"),
                TraceSource::Inline { trace, .. } => {
                    write!(f, "trace(inline, n={})", trace.n_nodes)
                }
            },
        }
    }
}

/// A message workload laid over a scenario, decoupled from mobility: any
/// workload composes with any [`ScenarioSpec`].
#[derive(Clone, Debug, Default)]
pub enum WorkloadSpec {
    /// The paper's uniform traffic: one message per uniform 25–35 s
    /// interval, uniformly random distinct endpoints.
    #[default]
    PaperUniform,
    /// Skewed endpoints: with probability `bias` the source is one of the
    /// first `hot_nodes` nodes and, independently, the destination one of
    /// the last `hot_nodes` nodes; otherwise uniform. Creation timing
    /// follows the paper's intervals.
    Hotspot {
        /// Size of the hot source set (and of the sink set).
        hot_nodes: u32,
        /// Probability a message uses the hot set on each side.
        bias: f64,
    },
    /// On/off traffic: bursts of `on_secs` with one message per ~`interval`
    /// seconds, separated by silent gaps of `off_secs`.
    Bursty {
        /// Length of each active burst in seconds.
        on_secs: f64,
        /// Length of each silent gap in seconds.
        off_secs: f64,
        /// Mean message spacing inside a burst (uniform 0.5–1.5×).
        interval: f64,
    },
}

impl WorkloadSpec {
    /// The default hotspot skew: 4 hot nodes, 80 % bias.
    pub fn hotspot() -> Self {
        WorkloadSpec::Hotspot {
            hot_nodes: 4,
            bias: 0.8,
        }
    }

    /// The default bursty pattern: 300 s bursts every 1 000 s, one message
    /// per ~10 s inside a burst.
    pub fn bursty() -> Self {
        WorkloadSpec::Bursty {
            on_secs: 300.0,
            off_secs: 700.0,
            interval: 10.0,
        }
    }

    /// Parses a CLI workload argument: `paper` (alias `uniform`),
    /// `hotspot[:<hot_nodes>]`, or `bursty[:<on_secs>:<off_secs>]`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let bad = || {
            format!(
                "unknown workload `{s}` (expected paper, hotspot[:<k>], or bursty[:<on>:<off>])"
            )
        };
        match (head, rest.as_slice()) {
            ("paper" | "uniform", []) => Ok(WorkloadSpec::PaperUniform),
            ("hotspot", []) => Ok(WorkloadSpec::hotspot()),
            ("hotspot", [k]) => {
                let hot_nodes: u32 = k.parse().map_err(|e| format!("hotspot size: {e}"))?;
                if hot_nodes == 0 {
                    return Err("hotspot size must be at least 1".into());
                }
                Ok(WorkloadSpec::Hotspot {
                    hot_nodes,
                    bias: 0.8,
                })
            }
            ("bursty", []) => Ok(WorkloadSpec::bursty()),
            ("bursty", [on, off]) => {
                let on_secs: f64 = on.parse().map_err(|e| format!("bursty on: {e}"))?;
                let off_secs: f64 = off.parse().map_err(|e| format!("bursty off: {e}"))?;
                if !on_secs.is_finite() || on_secs <= 0.0 || !off_secs.is_finite() || off_secs < 0.0
                {
                    return Err(format!(
                        "bursty needs on > 0 and off >= 0, got on={on_secs} off={off_secs}"
                    ));
                }
                Ok(WorkloadSpec::Bursty {
                    on_secs,
                    off_secs,
                    interval: 10.0,
                })
            }
            _ => Err(bad()),
        }
    }

    /// Canonical, injective encoding for cache keys.
    pub fn cache_key(&self) -> String {
        match self {
            WorkloadSpec::PaperUniform => "paper".into(),
            WorkloadSpec::Hotspot { hot_nodes, bias } => {
                format!("hotspot:k={hot_nodes}:b={:016x}", bias.to_bits())
            }
            WorkloadSpec::Bursty {
                on_secs,
                off_secs,
                interval,
            } => format!(
                "bursty:on={:016x}:off={:016x}:iv={:016x}",
                on_secs.to_bits(),
                off_secs.to_bits(),
                interval.to_bits()
            ),
        }
    }

    /// Generates the deterministic workload for `n_nodes` nodes over
    /// `duration` seconds from `seed`.
    ///
    /// # Panics
    /// Panics if `n_nodes < 2` or the variant's parameters are not sane.
    pub fn generate(&self, n_nodes: u32, duration: f64, seed: u64) -> Vec<MessageSpec> {
        assert!(n_nodes >= 2, "a workload needs at least two nodes");
        match self {
            WorkloadSpec::PaperUniform => TrafficConfig::paper(duration).generate(n_nodes, seed),
            WorkloadSpec::Hotspot { hot_nodes, bias } => {
                assert!((0.0..=1.0).contains(bias), "hotspot bias must be in [0, 1]");
                let hot = (*hot_nodes).clamp(1, n_nodes);
                let base = TrafficConfig::paper(duration);
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x0068_6f74_7370_6f74_u64);
                let mut out = Vec::new();
                let mut t = rng.gen_range(base.interval_min..=base.interval_max);
                while t < duration {
                    let src = if rng.gen::<f64>() < *bias {
                        NodeId(rng.gen_range(0..hot))
                    } else {
                        NodeId(rng.gen_range(0..n_nodes))
                    };
                    let mut dst = src;
                    while dst == src {
                        dst = if rng.gen::<f64>() < *bias {
                            NodeId(n_nodes - 1 - rng.gen_range(0..hot))
                        } else {
                            NodeId(rng.gen_range(0..n_nodes))
                        };
                    }
                    out.push(MessageSpec {
                        create_at: SimTime::secs(t),
                        src,
                        dst,
                        size: base.msg_size,
                        ttl: base.ttl,
                    });
                    t += rng.gen_range(base.interval_min..=base.interval_max);
                }
                out
            }
            WorkloadSpec::Bursty {
                on_secs,
                off_secs,
                interval,
            } => {
                assert!(
                    *on_secs > 0.0 && *off_secs >= 0.0 && *interval > 0.0,
                    "bursty workload needs positive on length and interval"
                );
                let base = TrafficConfig::paper(duration);
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x6275_7273_7479_u64);
                let mut out = Vec::new();
                let cycle = on_secs + off_secs;
                let mut t = rng.gen_range(0.5 * interval..=1.5 * interval);
                while t < duration {
                    // Skip ahead if `t` landed in the silent part of a cycle.
                    let phase = t % cycle;
                    if phase >= *on_secs {
                        t += cycle - phase + rng.gen_range(0.5 * interval..=1.5 * interval);
                        continue;
                    }
                    let src = NodeId(rng.gen_range(0..n_nodes));
                    let mut dst = NodeId(rng.gen_range(0..n_nodes));
                    while dst == src {
                        dst = NodeId(rng.gen_range(0..n_nodes));
                    }
                    out.push(MessageSpec {
                        create_at: SimTime::secs(t),
                        src,
                        dst,
                        size: base.msg_size,
                        ttl: base.ttl,
                    });
                    t += rng.gen_range(0.5 * interval..=1.5 * interval);
                }
                out
            }
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::PaperUniform => write!(f, "paper"),
            WorkloadSpec::Hotspot { hot_nodes, bias } => {
                write!(f, "hotspot(k={hot_nodes}, bias={bias})")
            }
            WorkloadSpec::Bursty {
                on_secs, off_secs, ..
            } => write!(f, "bursty({on_secs}s on / {off_secs}s off)"),
        }
    }
}

/// FNV-1a content fingerprint of a trace, so equal inline traces share one
/// cache identity. Stable across processes (unlike `DefaultHasher`).
fn trace_fingerprint(t: &ContactTrace) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(u64::from(t.n_nodes));
    mix(t.duration.to_bits());
    for c in &t.contacts {
        mix(u64::from(c.pair.a.0));
        mix(u64::from(c.pair.b.0));
        mix(c.start.as_secs().to_bits());
        mix(c.end.as_secs().to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::Contact;

    fn tiny_trace() -> ContactTrace {
        ContactTrace::new(
            4,
            200.0,
            vec![
                Contact::new(0, 1, 10.0, 40.0),
                Contact::new(2, 3, 20.0, 60.0),
                Contact::new(1, 2, 80.0, 120.0),
            ],
        )
    }

    #[test]
    fn parse_scenarios() {
        assert!(matches!(
            ScenarioSpec::parse("paper", 40),
            Ok(ScenarioSpec::PaperBusCity { n_nodes: 40 })
        ));
        assert!(matches!(
            ScenarioSpec::parse("rwp", 20),
            Ok(ScenarioSpec::RandomWaypoint { n_nodes: 20, .. })
        ));
        match ScenarioSpec::parse("trace:foo.trace", 0) {
            Ok(ScenarioSpec::TraceReplay {
                source: TraceSource::Path(p),
            }) => assert_eq!(p, "foo.trace"),
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(ScenarioSpec::parse("bogus", 8).is_err());
        assert!(ScenarioSpec::parse("trace:", 8).is_err());
    }

    #[test]
    fn parse_city_family() {
        assert!(matches!(
            ScenarioSpec::parse("city", 100),
            Ok(ScenarioSpec::City {
                n_nodes: 100,
                districts: 4,
                bpr: 4
            })
        ));
        assert!(matches!(
            ScenarioSpec::parse("city:n=1000", 8),
            Ok(ScenarioSpec::City {
                n_nodes: 1000,
                districts: 4,
                bpr: 4
            })
        ));
        assert!(matches!(
            ScenarioSpec::parse("city:n=1000:d=7", 8),
            Ok(ScenarioSpec::City {
                n_nodes: 1000,
                districts: 7,
                bpr: 4
            })
        ));
        assert!(matches!(
            ScenarioSpec::parse("city:d=7", 64),
            Ok(ScenarioSpec::City {
                n_nodes: 64,
                districts: 7,
                bpr: 4
            })
        ));
        assert!(matches!(
            ScenarioSpec::parse("city:n=1000:bpr=9", 8),
            Ok(ScenarioSpec::City {
                n_nodes: 1000,
                districts: 4,
                bpr: 9
            })
        ));
        // `paper:n=N` is the city family at paper-like defaults.
        assert!(matches!(
            ScenarioSpec::parse("paper:n=10000", 8),
            Ok(ScenarioSpec::City {
                n_nodes: 10000,
                districts: 13,
                bpr: 13
            })
        ));
        assert!(ScenarioSpec::parse("city:x=3", 8).is_err());
        assert!(ScenarioSpec::parse("city:n=", 8).is_err());
        assert!(ScenarioSpec::parse("city:n=1", 8).is_err());
        assert!(ScenarioSpec::parse("city:n=10:d=0", 8).is_err());
        assert!(ScenarioSpec::parse("city:n=10:bpr=0", 8).is_err());
        assert!(ScenarioSpec::parse("paper:bogus", 8).is_err());
        assert_eq!(ScenarioSpec::districts_for(100_000), 40);
        assert_eq!(ScenarioSpec::bpr_for(100), 4);
        assert_eq!(ScenarioSpec::bpr_for(10_000), 13);
        assert_eq!(ScenarioSpec::bpr_for(100_000), 40);
        assert_eq!(ScenarioSpec::bpr_for(1_000_000), 64);
    }

    #[test]
    fn city_round_trips_and_builds() {
        let spec = ScenarioSpec::parse("city:n=24:d=4", 8).unwrap();
        assert_eq!(spec.to_string(), "city(n=24, d=4, bpr=4)");
        assert_eq!(spec.cache_key(), "city:n=24:d=4:bpr=4");
        assert_ne!(spec.cache_key(), ScenarioSpec::paper(24).cache_key());
        assert_eq!(spec.declared_nodes(), Some(24));
        let s = spec.build(3, Some(500.0)).unwrap();
        assert_eq!(s.trace.n_nodes, 24);
        assert_eq!(s.n_communities, 4);
        assert!(s.trace.validate().is_ok());
    }

    /// The buses-per-route cap thins routes at scale (so contact volume
    /// grows ~n·bpr, not ~n^1.5) and never binds on small fleets.
    #[test]
    fn bpr_caps_route_density() {
        // Small city: district-driven routes already spread buses thinner
        // than the cap, so the config is unchanged.
        let small = ScenarioSpec::city(60, 5).bus_config(None);
        assert_eq!(small.n_routes, ScenarioConfig::city(60, 5).n_routes);

        // Large city: the cap binds and raises the route count.
        let spec = ScenarioSpec::parse("paper:n=100000", 8).unwrap();
        let cfg = spec.bus_config(None);
        assert_eq!(cfg.n_routes, 2500); // ceil(100000 / 40)
        assert!(cfg.n_routes > ScenarioConfig::city(100_000, 40).n_routes);

        // An explicit bpr overrides the default and changes the cache key.
        let thin = ScenarioSpec::parse("city:n=100000:bpr=10", 8).unwrap();
        assert_eq!(thin.bus_config(None).n_routes, 10_000);
        assert_ne!(thin.cache_key(), spec.cache_key());
        // Round trip through parse preserves the knob.
        let reparsed = ScenarioSpec::parse("city:n=100000:d=40:bpr=10", 8).unwrap();
        assert_eq!(reparsed.cache_key(), thin.cache_key());
    }

    #[test]
    fn build_stream_mirrors_build() {
        use dtn_sim::TraceReplaySource;
        for spec in [
            ScenarioSpec::paper(8),
            ScenarioSpec::city(12, 3),
            ScenarioSpec::rwp(8),
        ] {
            let s = spec.build(5, Some(300.0)).unwrap();
            let mut stream = spec.build_stream(5, Some(300.0)).unwrap();
            assert_eq!(stream.n_nodes, s.trace.n_nodes, "{spec}");
            assert_eq!(stream.duration, 300.0, "{spec}");
            assert_eq!(stream.communities, s.communities, "{spec}");
            assert_eq!(stream.n_communities, s.n_communities, "{spec}");
            // Same events, same engine-pop order, as trace replay.
            let mut expect = Vec::new();
            TraceReplaySource::new(&s.trace).next_window(300.0, &mut expect);
            expect.sort_by_key(|e| e.at());
            let mut got = Vec::new();
            stream.source.next_window(300.0, &mut got);
            got.sort_by_key(|e| e.at());
            assert_eq!(got, expect, "{spec}");
        }
    }

    #[test]
    fn parse_workloads() {
        assert!(matches!(
            WorkloadSpec::parse("paper"),
            Ok(WorkloadSpec::PaperUniform)
        ));
        assert!(matches!(
            WorkloadSpec::parse("hotspot:6"),
            Ok(WorkloadSpec::Hotspot { hot_nodes: 6, .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("bursty:100:400"),
            Ok(WorkloadSpec::Bursty { .. })
        ));
        assert!(WorkloadSpec::parse("nope").is_err());
        assert!(WorkloadSpec::parse("hotspot:x").is_err());
        // Parameter ranges are enforced at parse time, not deep inside a
        // sweep worker via generate()'s asserts.
        assert!(WorkloadSpec::parse("hotspot:0").is_err());
        assert!(WorkloadSpec::parse("bursty:0:500").is_err());
        assert!(WorkloadSpec::parse("bursty:-100:200").is_err());
        assert!(WorkloadSpec::parse("bursty:100:-1").is_err());
    }

    #[test]
    fn cache_keys_are_distinct_across_specs() {
        let keys = [
            ScenarioSpec::paper(8).cache_key(),
            ScenarioSpec::rwp(8).cache_key(),
            ScenarioSpec::trace(Arc::new(tiny_trace())).cache_key(),
            ScenarioSpec::trace_path("a.trace").cache_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Equal inline contents share an identity; different contents don't.
        let same = ScenarioSpec::trace(Arc::new(tiny_trace())).cache_key();
        assert_eq!(keys[2], same);
        let other = ContactTrace::new(4, 200.0, vec![Contact::new(0, 1, 10.0, 40.0)]);
        assert_ne!(keys[2], ScenarioSpec::trace(Arc::new(other)).cache_key());
    }

    #[test]
    fn rwp_builds_deterministically() {
        let spec = ScenarioSpec::rwp(10);
        let a = spec.build(3, Some(600.0)).unwrap();
        let b = spec.build(3, Some(600.0)).unwrap();
        assert_eq!(a.trace.n_nodes, 10);
        assert_eq!(a.trace.contacts, b.trace.contacts);
        assert!(a.trace.validate().is_ok());
        assert_eq!(a.n_communities, 1);
        let c = spec.build(4, Some(600.0)).unwrap();
        assert_ne!(a.trace.contacts, c.trace.contacts);
        assert!(
            !a.trace.contacts.is_empty(),
            "10 RWP nodes in 1 km² must meet within 600 s"
        );
    }

    #[test]
    fn trace_replay_keeps_native_horizon() {
        let spec = ScenarioSpec::trace(Arc::new(tiny_trace()));
        let s = spec.build(1, None).unwrap();
        assert_eq!(s.trace.duration, 200.0);
        assert_eq!(s.communities.len(), 4);
        assert!(spec.build(1, Some(500.0)).is_err());
        assert!(spec.build(1, Some(200.0)).is_ok());
    }

    #[test]
    fn trace_replay_missing_file_is_an_error() {
        let spec = ScenarioSpec::trace_path("/nonexistent/never.trace");
        assert!(spec.build(1, None).is_err());
    }

    #[test]
    fn hotspot_workload_skews_endpoints() {
        let w = WorkloadSpec::Hotspot {
            hot_nodes: 2,
            bias: 0.9,
        };
        let msgs = w.generate(20, 10_000.0, 5);
        assert!(!msgs.is_empty());
        let hot_src = msgs.iter().filter(|m| m.src.0 < 2).count();
        let hot_dst = msgs.iter().filter(|m| m.dst.0 >= 18).count();
        // 90 % bias on each side; uniform would give 10 %.
        assert!(
            hot_src * 2 > msgs.len(),
            "src skew too weak: {hot_src}/{}",
            msgs.len()
        );
        assert!(
            hot_dst * 2 > msgs.len(),
            "dst skew too weak: {hot_dst}/{}",
            msgs.len()
        );
        assert!(msgs.iter().all(|m| m.src != m.dst));
        assert_eq!(msgs, w.generate(20, 10_000.0, 5));
    }

    #[test]
    fn bursty_workload_has_silent_gaps() {
        let w = WorkloadSpec::Bursty {
            on_secs: 100.0,
            off_secs: 400.0,
            interval: 5.0,
        };
        let msgs = w.generate(10, 5_000.0, 2);
        assert!(!msgs.is_empty());
        for m in &msgs {
            let phase = m.create_at.as_secs() % 500.0;
            assert!(
                phase < 100.0 + 1e-9,
                "message in silent window at phase {phase}"
            );
        }
        assert_eq!(msgs, w.generate(10, 5_000.0, 2));
    }

    #[test]
    fn workloads_stay_in_bounds() {
        for w in [
            WorkloadSpec::PaperUniform,
            WorkloadSpec::hotspot(),
            WorkloadSpec::bursty(),
        ] {
            let msgs = w.generate(8, 2_000.0, 1);
            assert!(!msgs.is_empty(), "{w} generated nothing");
            for m in &msgs {
                assert!(m.create_at.as_secs() < 2_000.0);
                assert!(m.src.0 < 8 && m.dst.0 < 8);
                assert_ne!(m.src, m.dst);
            }
        }
    }
}
