//! Shortest paths on road graphs.

use crate::geometry::Point;
use crate::graph::{RoadGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-ordered f64 key for the Dijkstra heap.
#[derive(PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Reusable Dijkstra state, so repeated route computations don't reallocate.
#[derive(Debug, Default)]
pub struct PathFinder {
    dist: Vec<f64>,
    prev: Vec<u32>,
    visited: Vec<bool>,
}

impl PathFinder {
    /// Creates a path finder (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Shortest path from `from` to `to` as a vertex sequence (inclusive of
    /// both endpoints), or `None` if unreachable. `from == to` yields a
    /// single-vertex path.
    pub fn shortest_path(
        &mut self,
        g: &RoadGraph,
        from: VertexId,
        to: VertexId,
    ) -> Option<Vec<VertexId>> {
        let n = g.n_vertices();
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.prev.clear();
        self.prev.resize(n, u32::MAX);
        self.visited.clear();
        self.visited.resize(n, false);

        let mut heap: BinaryHeap<Reverse<(Key, u32)>> = BinaryHeap::new();
        self.dist[from as usize] = 0.0;
        heap.push(Reverse((Key(0.0), from)));
        while let Some(Reverse((Key(d), v))) = heap.pop() {
            if self.visited[v as usize] {
                continue;
            }
            self.visited[v as usize] = true;
            if v == to {
                break;
            }
            for &(w, len) in g.neighbors(v) {
                let nd = d + len;
                if nd < self.dist[w as usize] {
                    self.dist[w as usize] = nd;
                    self.prev[w as usize] = v;
                    heap.push(Reverse((Key(nd), w)));
                }
            }
        }
        if !self.visited[to as usize] {
            return None;
        }
        let mut path = vec![to];
        let mut v = to;
        while v != from {
            v = self.prev[v as usize];
            path.push(v);
        }
        path.reverse();
        Some(path)
    }

    /// Length (metres) of the last computed path's destination, useful after
    /// [`PathFinder::shortest_path`].
    pub fn distance_to(&self, v: VertexId) -> f64 {
        self.dist.get(v as usize).copied().unwrap_or(f64::INFINITY)
    }
}

/// Converts a vertex path to a polyline of points.
pub fn path_polyline(g: &RoadGraph, path: &[VertexId]) -> Vec<Point> {
    path.iter().map(|&v| g.position(v)).collect()
}

/// Total length of a polyline in metres.
pub fn polyline_length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].dist(w[1])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;

    /// Line graph 0 - 1 - 2 - 3 with unit spacing plus shortcut 0 - 3 of
    /// length 10 (detour), so the line is shortest.
    fn line() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        let far = b.add_vertex(Point::new(1.5, 10.0));
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(0, far);
        b.add_edge(far, 3);
        b.build()
    }

    #[test]
    fn shortest_path_prefers_line() {
        let g = line();
        let mut pf = PathFinder::new();
        let p = pf.shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert!((pf.distance_to(3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_to_self() {
        let g = line();
        let mut pf = PathFinder::new();
        assert_eq!(pf.shortest_path(&g, 2, 2).unwrap(), vec![2]);
        assert_eq!(pf.distance_to(2), 0.0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadGraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        let g = b.build();
        let mut pf = PathFinder::new();
        assert!(pf.shortest_path(&g, 0, 1).is_none());
    }

    #[test]
    fn polyline_helpers() {
        let g = line();
        let mut pf = PathFinder::new();
        let p = pf.shortest_path(&g, 0, 3).unwrap();
        let poly = path_polyline(&g, &p);
        assert_eq!(poly.len(), 4);
        assert!((polyline_length(&poly) - 3.0).abs() < 1e-12);
    }

    /// The finder is reusable without state leaking between queries.
    #[test]
    fn finder_reuse() {
        let g = line();
        let mut pf = PathFinder::new();
        let p1 = pf.shortest_path(&g, 0, 3).unwrap();
        let p2 = pf.shortest_path(&g, 3, 0).unwrap();
        assert_eq!(p1, vec![0, 1, 2, 3]);
        assert_eq!(p2, vec![3, 2, 1, 0]);
    }
}
