//! Piecewise-linear trajectories.
//!
//! Every mobility model reduces a node's movement to a [`Trajectory`]: a
//! sequence of `(time, point)` breakpoints with linear motion in between
//! (a pause is two breakpoints at the same position). Contact generation
//! samples trajectories monotonically through a [`TrajectoryCursor`], which
//! is O(1) amortised per sample.

use crate::geometry::Point;

/// A node's movement as time-stamped breakpoints, strictly increasing in
/// time, linearly interpolated.
#[derive(Clone, Debug)]
pub struct Trajectory {
    points: Vec<(f64, Point)>,
}

impl Trajectory {
    /// Builds a trajectory from breakpoints.
    ///
    /// # Panics
    /// Panics if empty or timestamps are not non-decreasing.
    pub fn new(points: Vec<(f64, Point)>) -> Self {
        assert!(!points.is_empty(), "trajectory needs at least one point");
        for w in points.windows(2) {
            assert!(w[1].0 >= w[0].0, "timestamps must be non-decreasing");
        }
        Trajectory { points }
    }

    /// A node that never moves.
    pub fn stationary(p: Point) -> Self {
        Trajectory {
            points: vec![(0.0, p)],
        }
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, Point)] {
        &self.points
    }

    /// Position at time `t` (clamped to the first/last breakpoint).
    pub fn position_at(&self, t: f64) -> Point {
        match self.points.binary_search_by(|(pt, _)| pt.total_cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) if i == self.points.len() => self.points[i - 1].1,
            Err(i) => segment_pos(self.points[i - 1], self.points[i], t),
        }
    }

    /// Last breakpoint time.
    pub fn end_time(&self) -> f64 {
        self.points.last().unwrap().0
    }

    /// Maximum speed over all segments, m/s.
    pub fn max_speed(&self) -> f64 {
        self.points
            .windows(2)
            .filter(|w| w[1].0 > w[0].0)
            .map(|w| w[0].1.dist(w[1].1) / (w[1].0 - w[0].0))
            .fold(0.0, f64::max)
    }
}

#[inline]
fn segment_pos(a: (f64, Point), b: (f64, Point), t: f64) -> Point {
    if b.0 <= a.0 {
        return b.1;
    }
    let frac = (t - a.0) / (b.0 - a.0);
    a.1.lerp(b.1, frac)
}

/// Monotone-time sampler over a [`Trajectory`].
#[derive(Clone, Debug)]
pub struct TrajectoryCursor<'a> {
    traj: &'a Trajectory,
    seg: usize,
}

impl<'a> TrajectoryCursor<'a> {
    /// Creates a cursor positioned at the start.
    pub fn new(traj: &'a Trajectory) -> Self {
        TrajectoryCursor { traj, seg: 0 }
    }

    /// Creates a cursor resuming from a segment index previously obtained
    /// via [`TrajectoryCursor::seg`]. Sampling continues bitwise-identically
    /// to the cursor the index was taken from, which lets callers store the
    /// per-trajectory scan state as a plain `usize` instead of holding a
    /// borrowing cursor across calls.
    pub fn with_seg(traj: &'a Trajectory, seg: usize) -> Self {
        TrajectoryCursor { traj, seg }
    }

    /// The current segment index (monotone scan state), for
    /// [`TrajectoryCursor::with_seg`].
    pub fn seg(&self) -> usize {
        self.seg
    }

    /// Position at `t`; successive calls must use non-decreasing `t`.
    pub fn position_at(&mut self, t: f64) -> Point {
        let pts = &self.traj.points;
        while self.seg + 1 < pts.len() && pts[self.seg + 1].0 <= t {
            self.seg += 1;
        }
        if self.seg + 1 >= pts.len() {
            return pts[pts.len() - 1].1;
        }
        if t <= pts[self.seg].0 {
            return pts[self.seg].1;
        }
        segment_pos(pts[self.seg], pts[self.seg + 1], t)
    }
}

/// Builds a trajectory by walking `polyline` at per-segment `speed`,
/// starting at `start_time`, optionally pausing `pause` seconds at each
/// interior polyline vertex flagged as a stop.
///
/// `speeds` yields the speed for each segment; `stops` yields the pause for
/// each vertex after the first (0.0 = no stop).
pub fn walk_polyline(
    polyline: &[Point],
    start_time: f64,
    mut speeds: impl FnMut(usize) -> f64,
    mut stops: impl FnMut(usize) -> f64,
) -> Trajectory {
    assert!(!polyline.is_empty());
    let mut pts = Vec::with_capacity(polyline.len() * 2);
    let mut t = start_time;
    pts.push((t, polyline[0]));
    for i in 1..polyline.len() {
        let a = polyline[i - 1];
        let b = polyline[i];
        let len = a.dist(b);
        if len > 0.0 {
            let v = speeds(i - 1);
            assert!(v > 0.0, "segment speed must be positive");
            t += len / v;
            pts.push((t, b));
        }
        let pause = stops(i);
        if pause > 0.0 {
            t += pause;
            pts.push((t, b));
        }
    }
    Trajectory::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::new(vec![
            (0.0, Point::new(0.0, 0.0)),
            (10.0, Point::new(10.0, 0.0)),
            (15.0, Point::new(10.0, 0.0)), // pause
            (20.0, Point::new(10.0, 5.0)),
        ])
    }

    #[test]
    fn position_interpolates() {
        let t = traj();
        assert_eq!(t.position_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(t.position_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(t.position_at(12.0), Point::new(10.0, 0.0), "paused");
        assert_eq!(t.position_at(17.5), Point::new(10.0, 2.5));
        assert_eq!(t.position_at(99.0), Point::new(10.0, 5.0), "clamped");
        assert_eq!(t.position_at(-1.0), Point::new(0.0, 0.0), "clamped");
    }

    #[test]
    fn cursor_matches_binary_search() {
        let t = traj();
        let mut c = TrajectoryCursor::new(&t);
        for i in 0..200 {
            let tt = i as f64 * 0.25;
            let a = c.position_at(tt);
            let b = t.position_at(tt);
            assert!(a.dist(b) < 1e-9, "mismatch at {tt}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn max_speed_ignores_pauses() {
        let t = traj();
        assert!((t.max_speed() - 1.0).abs() < 1e-12);
        assert_eq!(t.end_time(), 20.0);
    }

    #[test]
    fn walk_polyline_with_stops() {
        let poly = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ];
        let t = walk_polyline(&poly, 5.0, |_| 2.0, |i| if i == 1 { 3.0 } else { 0.0 });
        // start 5, reach (10,0) at 10, pause until 13, reach (10,10) at 18.
        assert_eq!(t.position_at(5.0), Point::new(0.0, 0.0));
        assert_eq!(t.position_at(10.0), Point::new(10.0, 0.0));
        assert_eq!(t.position_at(12.0), Point::new(10.0, 0.0));
        assert_eq!(t.position_at(18.0), Point::new(10.0, 10.0));
        assert_eq!(t.end_time(), 18.0);
    }

    #[test]
    fn stationary_never_moves() {
        let t = Trajectory::stationary(Point::new(3.0, 4.0));
        assert_eq!(t.position_at(0.0), Point::new(3.0, 4.0));
        assert_eq!(t.position_at(1e6), Point::new(3.0, 4.0));
        assert_eq!(t.max_speed(), 0.0);
    }

    #[test]
    #[should_panic]
    fn decreasing_times_rejected() {
        let _ = Trajectory::new(vec![
            (1.0, Point::new(0.0, 0.0)),
            (0.5, Point::new(1.0, 0.0)),
        ]);
    }
}
