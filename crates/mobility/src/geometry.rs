//! Planar geometry primitives.

/// A point (or vector) in the plane, in metres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// X coordinate (metres).
    pub x: f64,
    /// Y coordinate (metres).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper for range tests).
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// An axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from corners.
    ///
    /// # Panics
    /// Panics if `max` is not ≥ `min` on both axes.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(max.x >= min.x && max.y >= min.y, "degenerate rect");
        Rect { min, max }
    }

    /// Width in metres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in metres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 5.0));
    }

    #[test]
    fn rect_contains_and_dims() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 5.0);
        assert!(r.contains(Point::new(5.0, 2.5)));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(10.1, 2.0)));
        assert_eq!(r.center(), Point::new(5.0, 2.5));
    }

    #[test]
    #[should_panic]
    fn rect_rejects_inverted() {
        let _ = Rect::new(Point::new(1.0, 1.0), Point::new(0.0, 2.0));
    }
}
