//! Bus-line (map-route) mobility.
//!
//! A [`BusRoute`] is a closed loop over the road graph built by joining a few
//! anchor intersections ("stops") with shortest paths. Buses walk the loop
//! forever: per-leg speeds are drawn uniformly from the configured range and
//! buses pause briefly at stops — the vehicular map-route model of the ONE
//! simulator that the paper's evaluation uses.

use crate::geometry::Point;
use crate::graph::{RoadGraph, VertexId};
use crate::path::{path_polyline, PathFinder};
use crate::trajectory::Trajectory;
use rand::rngs::SmallRng;
use rand::Rng;

/// Speed/pause parameters of the bus movement.
#[derive(Clone, Copy, Debug)]
pub struct BusConfig {
    /// Minimum speed in m/s (paper: 2.7).
    pub speed_min: f64,
    /// Maximum speed in m/s (paper: 13.9).
    pub speed_max: f64,
    /// Maximum pause at a stop in seconds (uniform in `[0, max]`).
    pub stop_pause_max: f64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            speed_min: 2.7,
            speed_max: 13.9,
            stop_pause_max: 10.0,
        }
    }
}

/// A closed bus line over the road graph.
#[derive(Clone, Debug)]
pub struct BusRoute {
    /// The stop vertices the loop visits.
    pub anchors: Vec<VertexId>,
    /// Closed polyline (`poly[0] == poly[last]`).
    poly: Vec<Point>,
    /// `stop[i]` is true when `poly[i]` is an anchor (bus stop).
    stop: Vec<bool>,
    /// Cumulative arc length: `cum[i]` = distance from `poly[0]` to `poly[i]`.
    cum: Vec<f64>,
}

impl BusRoute {
    /// Builds a route visiting `anchors` in order (then back to the first),
    /// following shortest paths on `g`.
    ///
    /// Returns `None` if any consecutive pair is unreachable or the loop has
    /// zero length.
    pub fn new(g: &RoadGraph, anchors: Vec<VertexId>, pf: &mut PathFinder) -> Option<Self> {
        assert!(anchors.len() >= 2, "a route needs at least two stops");
        let mut poly: Vec<Point> = Vec::new();
        let mut stop: Vec<bool> = Vec::new();
        let n = anchors.len();
        for i in 0..n {
            let from = anchors[i];
            let to = anchors[(i + 1) % n];
            let path = pf.shortest_path(g, from, to)?;
            let pts = path_polyline(g, &path);
            // Skip the first point of each leg except the very first: it
            // duplicates the previous leg's endpoint.
            let skip = usize::from(i > 0);
            for (j, p) in pts.iter().enumerate().skip(skip) {
                poly.push(*p);
                stop.push(j == 0 || (j == pts.len() - 1 && i == n - 1));
            }
        }
        // First point is an anchor too.
        if let Some(s) = stop.first_mut() {
            *s = true;
        }
        let mut cum = Vec::with_capacity(poly.len());
        let mut acc = 0.0;
        cum.push(0.0);
        for w in poly.windows(2) {
            acc += w[0].dist(w[1]);
            cum.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(BusRoute {
            anchors,
            poly,
            stop,
            cum,
        })
    }

    /// Loop length in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cum.last().unwrap()
    }

    /// The closed polyline.
    pub fn polyline(&self) -> &[Point] {
        &self.poly
    }

    /// The point at arc distance `d` (mod loop length) from the start, and
    /// the index of the segment containing it.
    fn at_distance(&self, d: f64) -> (usize, Point) {
        let len = self.length();
        let d = d.rem_euclid(len);
        // Find segment i with cum[i] <= d < cum[i+1].
        let i = match self.cum.binary_search_by(|c| c.total_cmp(&d)) {
            Ok(i) => i.min(self.poly.len() - 2),
            Err(i) => i - 1,
        };
        let seg_len = self.cum[i + 1] - self.cum[i];
        let frac = if seg_len > 0.0 {
            (d - self.cum[i]) / seg_len
        } else {
            0.0
        };
        (i, self.poly[i].lerp(self.poly[i + 1], frac))
    }

    /// Generates the trajectory of one bus on this route.
    ///
    /// The bus starts at arc offset `offset_frac` (in `[0,1)`) along the
    /// loop and drives until at least `duration` seconds of movement are
    /// covered. Per-leg speeds and stop pauses are drawn from `cfg` using
    /// `rng`.
    pub fn bus_trajectory(
        &self,
        offset_frac: f64,
        duration: f64,
        cfg: &BusConfig,
        rng: &mut SmallRng,
    ) -> Trajectory {
        assert!((0.0..1.0).contains(&offset_frac));
        assert!(cfg.speed_min > 0.0 && cfg.speed_max >= cfg.speed_min);
        let (mut seg, start_pt) = self.at_distance(offset_frac * self.length());
        let mut pts: Vec<(f64, Point)> = Vec::new();
        let mut t = 0.0;
        let mut cur = start_pt;
        pts.push((t, cur));
        // `seg` is the segment we are currently on; we first finish it, then
        // walk whole segments cyclically.
        let last_seg = self.poly.len() - 1; // number of segments
        let mut speed = rng.gen_range(cfg.speed_min..=cfg.speed_max);
        while t < duration {
            let next_vertex = (seg + 1) % last_seg.max(1);
            let target = self.poly[seg + 1];
            let dist = cur.dist(target);
            if dist > 0.0 {
                t += dist / speed;
                pts.push((t, target));
            }
            cur = target;
            // Stop pause and fresh leg speed at bus stops.
            let vertex_idx = seg + 1;
            if self.stop[vertex_idx] && cfg.stop_pause_max > 0.0 {
                let pause = rng.gen_range(0.0..=cfg.stop_pause_max);
                if pause > 0.0 {
                    t += pause;
                    pts.push((t, cur));
                }
                speed = rng.gen_range(cfg.speed_min..=cfg.speed_max);
            }
            // Advance; wrap from the duplicate closing vertex back to 0.
            seg = if vertex_idx >= last_seg {
                0
            } else {
                next_vertex
            };
            if seg == 0 {
                cur = self.poly[0];
            }
        }
        Trajectory::new(pts)
    }
}

/// Picks `k` distinct random elements of `pool` (order randomised).
pub(crate) fn sample_distinct(pool: &[VertexId], k: usize, rng: &mut SmallRng) -> Vec<VertexId> {
    assert!(k <= pool.len(), "not enough vertices to sample from");
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..k].iter().map(|&i| pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapgen::MapConfig;
    use rand::SeedableRng;

    fn setup() -> (RoadGraph, BusRoute) {
        let g = MapConfig::tiny().generate(3);
        let mut pf = PathFinder::new();
        let route = BusRoute::new(&g, vec![0, 5, 10, 3], &mut pf).expect("route");
        (g, route)
    }

    #[test]
    fn route_is_closed_loop() {
        let (_, r) = setup();
        let poly = r.polyline();
        assert!(poly.len() >= 4);
        assert_eq!(poly[0], poly[poly.len() - 1], "loop must close");
        assert!(r.length() > 0.0);
    }

    #[test]
    fn at_distance_wraps() {
        let (_, r) = setup();
        let (_, p0) = r.at_distance(0.0);
        let (_, p_wrap) = r.at_distance(r.length());
        assert!(p0.dist(p_wrap) < 1e-9);
        let (_, p_mod) = r.at_distance(r.length() * 2.5);
        let (_, p_half) = r.at_distance(r.length() * 0.5);
        assert!(p_mod.dist(p_half) < 1e-9);
    }

    #[test]
    fn trajectory_covers_duration_and_respects_speed() {
        let (_, r) = setup();
        let cfg = BusConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let traj = r.bus_trajectory(0.25, 500.0, &cfg, &mut rng);
        assert!(traj.end_time() >= 500.0);
        let vmax = traj.max_speed();
        assert!(vmax <= cfg.speed_max + 1e-9, "max speed {vmax}");
        assert!(vmax >= cfg.speed_min - 1e-9);
    }

    #[test]
    fn trajectory_points_stay_on_map_bounds() {
        let (g, r) = setup();
        let bounds = g.bounds();
        let mut rng = SmallRng::seed_from_u64(2);
        let traj = r.bus_trajectory(0.0, 300.0, &BusConfig::default(), &mut rng);
        for &(_, p) in traj.points() {
            assert!(
                bounds.contains(p),
                "trajectory left the map at {p:?} (bounds {bounds:?})"
            );
        }
    }

    #[test]
    fn different_offsets_start_apart() {
        let (_, r) = setup();
        let mut rng1 = SmallRng::seed_from_u64(3);
        let mut rng2 = SmallRng::seed_from_u64(3);
        let t1 = r.bus_trajectory(0.0, 100.0, &BusConfig::default(), &mut rng1);
        let t2 = r.bus_trajectory(0.5, 100.0, &BusConfig::default(), &mut rng2);
        assert!(t1.position_at(0.0).dist(t2.position_at(0.0)) > 1.0);
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let pool: Vec<u32> = (0..20).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        let s = sample_distinct(&pool, 8, &mut rng);
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn unreachable_route_returns_none() {
        use crate::graph::RoadGraphBuilder;
        let mut b = RoadGraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        let g = b.build();
        let mut pf = PathFinder::new();
        assert!(BusRoute::new(&g, vec![0, 1], &mut pf).is_none());
    }
}
