//! Sharded contact detection: one simulation step, many scanning threads.
//!
//! [`ShardedContactSource`] is a drop-in replacement for
//! [`MobilityContactSource`](crate::stream::MobilityContactSource) that
//! splits each sampling step's pair scan across a worker pool. A step runs
//! in three phases on one shared [`ContactStepper`]:
//!
//! 1. **prepare** (coordinator, write lock): advance every trajectory cursor
//!    and rebuild the spatial grid;
//! 2. **scan** (workers, read lock): each worker scans a horizontal band of
//!    grid rows, pushing candidate pairs whose smaller node lives in the
//!    band into a per-shard buffer;
//! 3. **commit** (coordinator, write lock): merge the shard buffers
//!    (sort + dedup) and run the sequential open-map bookkeeping over the
//!    merged set.
//!
//! Every node's cell belongs to exactly one band, so the union of the shard
//! buffers is exactly the candidate set the sequential scan produces; the
//! sort + dedup in commit canonicalizes away both the workers' completion
//! order and the duplicate candidates a wrapped grid table can produce.
//! The committed `downs`/`ups` are therefore bit-identical to the
//! sequential path for every band count — which is why a run's thread count
//! is *not* part of its cache key.

use std::sync::{mpsc, Mutex, RwLock};
use std::thread;

use crate::contacts::{ContactGenConfig, ContactStepper};
use crate::trajectory::Trajectory;
use dtn_sim::{Contact, ContactEvent, ContactSource, NodePair, SimTime};

/// A [`ContactSource`] that detects contacts with a pool of scanning
/// threads, bit-identical to the single-threaded
/// [`MobilityContactSource`](crate::stream::MobilityContactSource).
#[derive(Debug)]
pub struct ShardedContactSource {
    trajs: Vec<Trajectory>,
    state: RwLock<ContactStepper>,
    threads: usize,
    duration: f64,
    /// Scratch reused across steps.
    downs: Vec<Contact>,
    ups: Vec<NodePair>,
    merged: Vec<NodePair>,
    shard_bufs: Vec<Vec<NodePair>>,
}

impl ShardedContactSource {
    /// Builds a source that samples `trajs` over `[0, duration)` with `cfg`,
    /// scanning each step with `threads` workers (clamped to at least 1;
    /// with 1 the sequential fast path runs with no pool at all).
    ///
    /// # Panics
    /// Panics if `range` or `dt` is not positive.
    pub fn new(
        trajs: Vec<Trajectory>,
        duration: f64,
        cfg: ContactGenConfig,
        threads: usize,
    ) -> Self {
        let stepper = ContactStepper::new(trajs.len(), duration, cfg);
        let threads = threads.max(1);
        ShardedContactSource {
            trajs,
            state: RwLock::new(stepper),
            threads,
            duration,
            downs: Vec::new(),
            ups: Vec::new(),
            merged: Vec::new(),
            shard_bufs: vec![Vec::new(); threads],
        }
    }

    /// The resolved worker count this source scans with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Single-threaded path: identical loop to `MobilityContactSource`.
    fn next_window_seq(&mut self, until: f64, out: &mut Vec<ContactEvent>) {
        let stepper = self.state.get_mut().expect("stepper lock poisoned");
        while let Some(t) = stepper.next_time() {
            if t >= until && until < self.duration {
                break;
            }
            self.downs.clear();
            self.ups.clear();
            stepper
                .step(&self.trajs, &mut self.downs, &mut self.ups)
                .expect("next_time returned Some, step must advance");
            emit(&self.downs, &self.ups, t, out);
        }
    }

    /// Worker-pool path. A fresh scope per window keeps the source free of
    /// lifetime plumbing; windows are ~60 s of simulated time (hundreds of
    /// steps), so the spawn cost is noise.
    fn next_window_sharded(&mut self, until: f64, out: &mut Vec<ContactEvent>) {
        let n_shards = self.threads;
        let state = &self.state;
        let trajs = &self.trajs;
        let duration = self.duration;
        let downs = &mut self.downs;
        let ups = &mut self.ups;
        let merged = &mut self.merged;
        let shard_bufs = &mut self.shard_bufs;

        // Band jobs travel with their recycled buffer; results carry the
        // filled buffer back so no allocation recurs per step. Created
        // outside the scope so worker borrows outlive it.
        let (job_tx, job_rx) = mpsc::channel::<(usize, Vec<NodePair>)>();
        let job_rx = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, Vec<NodePair>)>();

        thread::scope(|scope| {
            for _ in 0..n_shards {
                let res_tx = res_tx.clone();
                let job_rx = &job_rx;
                scope.spawn(move || loop {
                    let job = job_rx.lock().expect("job lock poisoned").recv();
                    let Ok((band, mut buf)) = job else { break };
                    buf.clear();
                    state
                        .read()
                        .expect("stepper lock poisoned")
                        .scan_band(band, n_shards, &mut buf);
                    if res_tx.send((band, buf)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);

            loop {
                let t = state.read().expect("stepper lock poisoned").next_time();
                let Some(t) = t else { break };
                if t >= until && until < duration {
                    break;
                }
                downs.clear();
                ups.clear();
                merged.clear();
                let scan = state
                    .write()
                    .expect("stepper lock poisoned")
                    .prepare_step(trajs)
                    .expect("next_time returned Some, prepare must advance");
                if scan {
                    for (band, slot) in shard_bufs.iter_mut().enumerate() {
                        let buf = std::mem::take(slot);
                        job_tx.send((band, buf)).expect("worker pool hung up");
                    }
                    for _ in 0..n_shards {
                        let (band, buf) = res_rx.recv().expect("worker pool hung up");
                        merged.extend_from_slice(&buf);
                        shard_bufs[band] = buf;
                    }
                }
                let processed = state
                    .write()
                    .expect("stepper lock poisoned")
                    .commit_step(merged, downs, ups)
                    .expect("prepared step must commit");
                debug_assert_eq!(processed, t);
                emit(downs, ups, t, out);
            }
            // Dropping the job sender ends the workers' recv loops.
            drop(job_tx);
        });
    }
}

/// Emits one committed step in the canonical order: closed contacts (sorted
/// by `(start, pair)`) then opened pairs (sorted by pair) — identical to
/// `MobilityContactSource`.
fn emit(downs: &[Contact], ups: &[NodePair], t: f64, out: &mut Vec<ContactEvent>) {
    for c in downs {
        out.push(ContactEvent::Down {
            pair: c.pair,
            at: c.end,
        });
    }
    for &pair in ups {
        out.push(ContactEvent::Up {
            pair,
            at: SimTime::secs(t),
        });
    }
}

impl ContactSource for ShardedContactSource {
    fn n_nodes(&self) -> u32 {
        self.trajs.len() as u32
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn next_window(&mut self, until: f64, out: &mut Vec<ContactEvent>) {
        if self.threads <= 1 {
            self.next_window_seq(until, out);
        } else {
            self.next_window_sharded(until, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use crate::stream::MobilityContactSource;

    /// Pumps a source dry with the given window length, returning all events.
    fn drain(src: &mut dyn ContactSource, window: f64) -> Vec<ContactEvent> {
        let mut out = Vec::new();
        let mut until = 0.0;
        while until < src.duration() {
            until = (until + window).min(src.duration());
            src.next_window(until, &mut out);
        }
        out
    }

    /// Sharded output equals the single-threaded stream event-for-event —
    /// same events, same order, any thread count, any window size.
    #[test]
    fn sharded_stream_is_bit_identical_to_sequential() {
        for cfg in [
            ScenarioConfig::small(12, 400.0),
            ScenarioConfig::city(24, 4),
        ] {
            let sc = cfg.build(7);
            let mut seq =
                MobilityContactSource::new(sc.trajectories.clone(), cfg.duration, cfg.contact);
            let reference = drain(&mut seq, 60.0);
            assert!(
                reference.len() >= 4,
                "scenario too sparse to be a meaningful test"
            );

            for threads in [1usize, 2, 3, 8] {
                for window in [13.0, 60.0, cfg.duration] {
                    let mut sharded = ShardedContactSource::new(
                        sc.trajectories.clone(),
                        cfg.duration,
                        cfg.contact,
                        threads,
                    );
                    assert_eq!(sharded.threads(), threads);
                    assert_eq!(sharded.n_nodes(), sc.trajectories.len() as u32);
                    let events = drain(&mut sharded, window);
                    assert_eq!(events, reference, "threads {threads}, window {window}");
                }
            }
        }
    }

    /// More bands than grid rows: trailing bands are empty, result unchanged.
    #[test]
    fn more_threads_than_rows_is_harmless() {
        let cfg = ScenarioConfig::small(6, 200.0);
        let sc = cfg.build(3);
        let mut seq =
            MobilityContactSource::new(sc.trajectories.clone(), cfg.duration, cfg.contact);
        let reference = drain(&mut seq, 50.0);
        let mut sharded = ShardedContactSource::new(sc.trajectories, cfg.duration, cfg.contact, 32);
        assert_eq!(drain(&mut sharded, 50.0), reference);
    }
}
