//! Random-waypoint mobility.
//!
//! Not used by the paper's evaluation (which is map-driven) but a standard
//! baseline model, useful for unit tests and for exercising the protocols on
//! a memoryless contact process.

use crate::geometry::{Point, Rect};
use crate::trajectory::Trajectory;
use rand::rngs::SmallRng;
use rand::Rng;

/// Random-waypoint parameters.
#[derive(Clone, Copy, Debug)]
pub struct RwpConfig {
    /// Movement area.
    pub area: Rect,
    /// Minimum speed (m/s).
    pub speed_min: f64,
    /// Maximum speed (m/s).
    pub speed_max: f64,
    /// Maximum pause at each waypoint (uniform in `[0, max]`).
    pub pause_max: f64,
}

impl RwpConfig {
    /// A convenient square area of side `side` metres with the paper's
    /// speed range.
    pub fn square(side: f64) -> Self {
        RwpConfig {
            area: Rect::new(Point::new(0.0, 0.0), Point::new(side, side)),
            speed_min: 2.7,
            speed_max: 13.9,
            pause_max: 10.0,
        }
    }

    /// Generates one node's trajectory covering at least `duration` seconds.
    pub fn trajectory(&self, duration: f64, rng: &mut SmallRng) -> Trajectory {
        assert!(self.speed_min > 0.0 && self.speed_max >= self.speed_min);
        let rand_point = |rng: &mut SmallRng| {
            Point::new(
                rng.gen_range(self.area.min.x..=self.area.max.x),
                rng.gen_range(self.area.min.y..=self.area.max.y),
            )
        };
        let mut pts: Vec<(f64, Point)> = Vec::new();
        let mut t = 0.0;
        let mut cur = rand_point(rng);
        pts.push((t, cur));
        while t < duration {
            let next = rand_point(rng);
            let dist = cur.dist(next);
            if dist > 0.0 {
                let v = rng.gen_range(self.speed_min..=self.speed_max);
                t += dist / v;
                pts.push((t, next));
            }
            cur = next;
            if self.pause_max > 0.0 {
                let pause = rng.gen_range(0.0..=self.pause_max);
                if pause > 0.0 {
                    t += pause;
                    pts.push((t, cur));
                }
            }
        }
        Trajectory::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stays_in_area_and_covers_duration() {
        let cfg = RwpConfig::square(1000.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let t = cfg.trajectory(500.0, &mut rng);
        assert!(t.end_time() >= 500.0);
        for &(_, p) in t.points() {
            assert!(cfg.area.contains(p));
        }
        let v = t.max_speed();
        assert!(v <= cfg.speed_max + 1e-9 && v >= cfg.speed_min - 1e-9);
    }

    #[test]
    fn deterministic_per_rng_seed() {
        let cfg = RwpConfig::square(100.0);
        let t1 = cfg.trajectory(100.0, &mut SmallRng::seed_from_u64(1));
        let t2 = cfg.trajectory(100.0, &mut SmallRng::seed_from_u64(1));
        assert_eq!(t1.points(), t2.points());
    }
}
