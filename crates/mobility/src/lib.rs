//! # dtn-mobility — map-driven mobility and contact-trace generation
//!
//! The mobility substrate for the ICPP'11 contact-expectation reproduction.
//! It stands in for the ONE simulator's movement models and downtown-Helsinki
//! map data:
//!
//! * [`graph`]/[`mapgen`] — road networks and a synthetic downtown generator;
//! * [`path`] — shortest paths on the map;
//! * [`routes`] — closed bus lines and bus trajectories (the paper's
//!   vehicular map-driven model);
//! * [`rwp`] — random waypoint, as a memoryless baseline;
//! * [`trajectory`] — piecewise-linear trajectories shared by all models;
//! * [`contacts`] — flat-grid contact detection, incremental
//!   ([`ContactStepper`]) or producing a whole [`dtn_sim::ContactTrace`];
//! * [`stream`] — [`MobilityContactSource`], the streaming
//!   [`dtn_sim::ContactSource`] that feeds the engine window-by-window;
//! * [`shard`] — [`ShardedContactSource`], the same stream scanned by a
//!   worker pool, bit-identical at every thread count;
//! * [`scenario`] — one-call scenario builders with community ground truth;
//! * [`spec`] — first-class [`ScenarioSpec`]/[`WorkloadSpec`] values that
//!   make scenario families and workloads cacheable and sweepable.
//!
//! ```
//! use dtn_mobility::scenario::ScenarioConfig;
//!
//! let scenario = ScenarioConfig::small(8, 300.0).build(42);
//! assert_eq!(scenario.trace.n_nodes, 8);
//! assert!(scenario.trace.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contacts;
pub mod geometry;
pub mod graph;
pub mod mapgen;
pub mod path;
pub mod routes;
pub mod rwp;
pub mod scenario;
pub mod shard;
pub mod spec;
pub mod spmbm;
pub mod stream;
pub mod svg;
pub mod trajectory;

pub use contacts::{generate_trace, ContactGenConfig, ContactStepper};
pub use geometry::{Point, Rect};
pub use graph::{RoadGraph, RoadGraphBuilder, VertexId};
pub use mapgen::MapConfig;
pub use path::PathFinder;
pub use routes::{BusConfig, BusRoute};
pub use rwp::RwpConfig;
pub use scenario::{Scenario, ScenarioConfig, ScenarioParts};
pub use shard::ShardedContactSource;
pub use spec::{ScenarioSpec, StreamScenario, TraceSource, WorkloadSpec};
pub use spmbm::SpmbmConfig;
pub use stream::MobilityContactSource;
pub use svg::SvgScene;
pub use trajectory::{Trajectory, TrajectoryCursor};
