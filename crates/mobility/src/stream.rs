//! Streaming contact supply from mobility: trajectories → engine, no trace.
//!
//! [`MobilityContactSource`] plugs a [`ContactStepper`] into the engine's
//! [`ContactSource`] interface: each `next_window(until)` call advances the
//! sampling loop only as far as `until`, emitting per step the contacts that
//! closed (sorted by `(start, pair)`) followed by the pairs that opened
//! (sorted by pair). That is exactly the tie order a materialized
//! [`generate_trace`](crate::contacts::generate_trace) +
//! [`dtn_sim::TraceReplaySource`] pair produces, so streaming and
//! materialized runs are bit-identical — while peak memory stays bounded by
//! the generation window (open contacts + one step's events), not the
//! horizon.

use crate::contacts::{ContactGenConfig, ContactStepper};
use crate::trajectory::Trajectory;
use dtn_sim::{Contact, ContactEvent, ContactSource, NodePair, SimTime};

/// A [`ContactSource`] that detects contacts on the fly from trajectories.
#[derive(Debug)]
pub struct MobilityContactSource {
    trajs: Vec<Trajectory>,
    stepper: ContactStepper,
    duration: f64,
    /// Scratch reused across steps.
    downs: Vec<Contact>,
    ups: Vec<NodePair>,
}

impl MobilityContactSource {
    /// Builds a source that samples `trajs` over `[0, duration)` with `cfg`.
    ///
    /// # Panics
    /// Panics if `range` or `dt` is not positive.
    pub fn new(trajs: Vec<Trajectory>, duration: f64, cfg: ContactGenConfig) -> Self {
        let stepper = ContactStepper::new(trajs.len(), duration, cfg);
        MobilityContactSource {
            trajs,
            stepper,
            duration,
            downs: Vec::new(),
            ups: Vec::new(),
        }
    }
}

impl ContactSource for MobilityContactSource {
    fn n_nodes(&self) -> u32 {
        self.trajs.len() as u32
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn next_window(&mut self, until: f64, out: &mut Vec<ContactEvent>) {
        while let Some(t) = self.stepper.next_time() {
            if t >= until && until < self.duration {
                break;
            }
            self.downs.clear();
            self.ups.clear();
            self.stepper
                .step(&self.trajs, &mut self.downs, &mut self.ups)
                .expect("next_time returned Some, step must advance");
            for c in &self.downs {
                out.push(ContactEvent::Down {
                    pair: c.pair,
                    at: c.end,
                });
            }
            for &pair in &self.ups {
                out.push(ContactEvent::Up {
                    pair,
                    at: SimTime::secs(t),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contacts::generate_trace;
    use crate::scenario::ScenarioConfig;
    use dtn_sim::TraceReplaySource;

    /// Pumps a source dry with the given window length, returning all events.
    fn drain(src: &mut dyn ContactSource, window: f64) -> Vec<ContactEvent> {
        let mut out = Vec::new();
        let mut until = 0.0;
        while until < src.duration() {
            until = (until + window).min(src.duration());
            src.next_window(until, &mut out);
        }
        out
    }

    /// Streaming and trace replay deliver the same events in the same
    /// engine-pop order (stable sort by time preserves the per-time
    /// emission order, which is the contact-band sequence order).
    #[test]
    fn stream_matches_trace_replay_order() {
        let cfg = ScenarioConfig::small(10, 400.0);
        let sc = cfg.build(7);
        let trace = generate_trace(&sc.trajectories, cfg.duration, cfg.contact);
        assert!(
            trace.contacts.len() >= 3,
            "scenario too sparse to be a meaningful test"
        );

        let mut replay = TraceReplaySource::new(&trace);
        let mut replayed = drain(&mut replay, 50.0);
        replayed.sort_by_key(|e| e.at());

        for window in [13.0, 60.0, 400.0] {
            let mut stream =
                MobilityContactSource::new(sc.trajectories.clone(), cfg.duration, cfg.contact);
            assert_eq!(stream.n_nodes(), 10);
            let mut streamed = drain(&mut stream, window);
            streamed.sort_by_key(|e| e.at());
            assert_eq!(streamed, replayed, "window {window}");
        }
    }

    /// Contacts still open at the horizon are closed by the final window.
    #[test]
    fn horizon_close_is_emitted() {
        use crate::geometry::Point;
        let trajs = vec![
            Trajectory::stationary(Point::new(0.0, 0.0)),
            Trajectory::stationary(Point::new(5.0, 0.0)),
        ];
        let mut src = MobilityContactSource::new(trajs, 30.0, ContactGenConfig::default());
        let events = drain(&mut src, 10.0);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], ContactEvent::Up { .. }));
        let ContactEvent::Down { at, .. } = events[1] else {
            panic!("expected a horizon close");
        };
        assert_eq!(at, SimTime::secs(30.0));
    }
}
