//! Shortest-path map-based movement (SPMBM) — the ONE simulator's default
//! model for pedestrians and cars: pick a random destination intersection,
//! walk there along the shortest street path at a random speed, optionally
//! pause, repeat.
//!
//! Not used by the paper's bus evaluation (which is route-driven) but part
//! of the substrate so scenarios can mix vehicle classes.

use crate::graph::{RoadGraph, VertexId};
use crate::path::{path_polyline, PathFinder};
use crate::trajectory::Trajectory;
use rand::rngs::SmallRng;
use rand::Rng;

/// SPMBM parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpmbmConfig {
    /// Minimum leg speed (m/s).
    pub speed_min: f64,
    /// Maximum leg speed (m/s).
    pub speed_max: f64,
    /// Maximum pause at each destination (uniform in `[0, max]`).
    pub pause_max: f64,
}

impl Default for SpmbmConfig {
    fn default() -> Self {
        SpmbmConfig {
            speed_min: 0.5,
            speed_max: 1.5, // pedestrian speeds, per the ONE's defaults
            pause_max: 120.0,
        }
    }
}

impl SpmbmConfig {
    /// Generates one node's trajectory on `g`, starting at a random vertex,
    /// covering at least `duration` seconds.
    ///
    /// # Panics
    /// Panics on an empty graph or non-positive speeds.
    pub fn trajectory(&self, g: &RoadGraph, duration: f64, rng: &mut SmallRng) -> Trajectory {
        assert!(g.n_vertices() > 0, "empty map");
        assert!(self.speed_min > 0.0 && self.speed_max >= self.speed_min);
        let mut pf = PathFinder::new();
        let mut at: VertexId = rng.gen_range(0..g.n_vertices() as u32);
        let mut t = 0.0;
        let mut pts = vec![(t, g.position(at))];
        while t < duration {
            let mut dest: VertexId = rng.gen_range(0..g.n_vertices() as u32);
            // Skip unreachable or trivial destinations (maps are connected,
            // so this is just the `dest == at` case in practice).
            let path = loop {
                if dest != at {
                    if let Some(p) = pf.shortest_path(g, at, dest) {
                        break p;
                    }
                }
                dest = rng.gen_range(0..g.n_vertices() as u32);
            };
            let speed = rng.gen_range(self.speed_min..=self.speed_max);
            for w in path_polyline(g, &path).windows(2) {
                let d = w[0].dist(w[1]);
                if d > 0.0 {
                    t += d / speed;
                    pts.push((t, w[1]));
                }
            }
            at = dest;
            if self.pause_max > 0.0 {
                let pause = rng.gen_range(0.0..=self.pause_max);
                if pause > 0.0 {
                    t += pause;
                    pts.push((t, g.position(at)));
                }
            }
        }
        Trajectory::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapgen::MapConfig;
    use rand::SeedableRng;

    #[test]
    fn walks_stay_on_map_and_cover_duration() {
        let g = MapConfig::tiny().generate(2);
        let bounds = g.bounds();
        let cfg = SpmbmConfig::default();
        let mut rng = SmallRng::seed_from_u64(4);
        let traj = cfg.trajectory(&g, 600.0, &mut rng);
        assert!(traj.end_time() >= 600.0);
        for &(_, p) in traj.points() {
            assert!(bounds.contains(p), "left the map at {p:?}");
        }
        let v = traj.max_speed();
        assert!(v <= cfg.speed_max + 1e-9);
        assert!(v >= cfg.speed_min - 1e-9);
    }

    #[test]
    fn breakpoints_are_vertices_or_pauses() {
        // Every breakpoint (after the start) coincides with a map vertex —
        // SPMBM never cuts corners.
        let g = MapConfig::tiny().generate(7);
        let mut rng = SmallRng::seed_from_u64(9);
        let traj = SpmbmConfig::default().trajectory(&g, 300.0, &mut rng);
        for &(_, p) in traj.points() {
            let nearest = g.position(g.nearest_vertex(p));
            assert!(
                nearest.dist(p) < 1e-6,
                "breakpoint {p:?} is not a map vertex"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = MapConfig::tiny().generate(1);
        let a = SpmbmConfig::default().trajectory(&g, 200.0, &mut SmallRng::seed_from_u64(5));
        let b = SpmbmConfig::default().trajectory(&g, 200.0, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a.points(), b.points());
    }
}
