//! Synthetic "downtown" map generation.
//!
//! The paper drives buses over the downtown-Helsinki map shipped with the ONE
//! simulator (≈ 4500 m × 3400 m of streets). We don't have that WKT data, so
//! we generate a road network with the same statistical character: a jittered
//! street grid at the same spatial scale, thinned by randomly removing minor
//! street segments while preserving connectivity. What the routing protocols
//! observe is the *contact process* the buses produce on the map, and a
//! perturbed connected grid reproduces its essential features (shared road
//! segments, recurrent loops, bounded detours).

use crate::geometry::Point;
use crate::graph::{RoadGraph, RoadGraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic downtown generator.
#[derive(Clone, Copy, Debug)]
pub struct MapConfig {
    /// Number of grid columns (intersections along x).
    pub cols: u32,
    /// Number of grid rows (intersections along y).
    pub rows: u32,
    /// Block edge length in metres.
    pub spacing: f64,
    /// Position jitter as a fraction of `spacing` (0 = perfect grid).
    pub jitter: f64,
    /// Fraction of street segments to try to remove (connectivity is always
    /// preserved, so the realised fraction may be lower).
    pub thinning: f64,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig::helsinki_downtown()
    }
}

impl MapConfig {
    /// A compact downtown at the scale of ONE's Helsinki city-centre area
    /// where its stock bus lines concentrate: 10 × 8 intersections at 330 m
    /// blocks ⇒ ≈ 3000 m × 2300 m of streets.
    pub fn helsinki_downtown() -> Self {
        MapConfig {
            cols: 10,
            rows: 8,
            spacing: 330.0,
            jitter: 0.15,
            thinning: 0.18,
        }
    }

    /// A wide multi-district city for large-n scenarios: `districts` bands
    /// of 6 columns each at downtown block scale. Thinning is disabled so
    /// map generation stays O(vertices) — the connectivity-preserving
    /// removal loop is quadratic-ish and would dominate city-scale builds.
    pub fn city(districts: u32) -> Self {
        MapConfig {
            cols: 6 * districts.max(1),
            rows: 8,
            spacing: 330.0,
            jitter: 0.15,
            thinning: 0.0,
        }
    }

    /// A small map for fast tests.
    pub fn tiny() -> Self {
        MapConfig {
            cols: 4,
            rows: 4,
            spacing: 100.0,
            jitter: 0.1,
            thinning: 0.1,
        }
    }

    /// Generates the road graph deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if the grid is degenerate (< 2×2).
    pub fn generate(&self, seed: u64) -> RoadGraph {
        assert!(self.cols >= 2 && self.rows >= 2, "grid too small");
        assert!((0.0..0.5).contains(&self.jitter), "jitter out of range");
        assert!((0.0..1.0).contains(&self.thinning), "thinning out of range");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d61_7067_656e_u64);
        let mut b = RoadGraphBuilder::new();
        let at = |c: u32, r: u32| r * self.cols + c;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let jx = rng.gen_range(-self.jitter..=self.jitter) * self.spacing;
                let jy = rng.gen_range(-self.jitter..=self.jitter) * self.spacing;
                b.add_vertex(Point::new(
                    c as f64 * self.spacing + jx,
                    r as f64 * self.spacing + jy,
                ));
            }
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c + 1 < self.cols {
                    b.add_edge(at(c, r), at(c + 1, r));
                }
                if r + 1 < self.rows {
                    b.add_edge(at(c, r), at(c, r + 1));
                }
            }
        }
        // Thin minor streets, preserving connectivity. Removal candidates are
        // shuffled deterministically.
        let mut candidates: Vec<(u32, u32)> = b.edges().to_vec();
        shuffle(&mut candidates, &mut rng);
        let target = (candidates.len() as f64 * self.thinning) as usize;
        let mut removed = 0;
        for (a, c) in candidates {
            if removed >= target {
                break;
            }
            b.remove_edge(a, c);
            if b.is_connected() {
                removed += 1;
            } else {
                b.add_edge(a, c);
            }
        }
        let g = b.build();
        debug_assert!(g.n_vertices() == (self.cols * self.rows) as usize);
        g
    }
}

/// Fisher–Yates shuffle (avoids depending on `rand`'s `SliceRandom` trait in
/// public signatures).
fn shuffle<T>(v: &mut [T], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_map_is_connected_and_sized() {
        let cfg = MapConfig::helsinki_downtown();
        let g = cfg.generate(1);
        assert_eq!(g.n_vertices(), 10 * 8);
        // Full grid would have 10*7 + 9*8 = 142 edges; thinning removes some.
        assert!(g.n_edges() <= 142);
        assert!(g.n_edges() >= (142.0 * 0.7) as usize);
        let bounds = g.bounds();
        assert!(bounds.width() > 2400.0 && bounds.width() < 3600.0);
        assert!(bounds.height() > 1800.0 && bounds.height() < 2800.0);
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = MapConfig::tiny();
        let g1 = cfg.generate(42);
        let g2 = cfg.generate(42);
        let g3 = cfg.generate(43);
        assert_eq!(g1.positions(), g2.positions());
        assert_eq!(g1.n_edges(), g2.n_edges());
        // Different seeds virtually always differ in jitter.
        assert_ne!(g1.positions(), g3.positions());
    }

    #[test]
    fn connectivity_survives_thinning() {
        for seed in 0..10 {
            let cfg = MapConfig {
                thinning: 0.4,
                ..MapConfig::tiny()
            };
            let g = cfg.generate(seed);
            // Re-check connectivity on the built graph via BFS from 0.
            let n = g.n_vertices();
            let mut seen = vec![false; n];
            let mut stack = vec![0u32];
            seen[0] = true;
            let mut cnt = 1;
            while let Some(v) = stack.pop() {
                for &(w, _) in g.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        cnt += 1;
                        stack.push(w);
                    }
                }
            }
            assert_eq!(cnt, n, "seed {seed} produced a disconnected map");
        }
    }

    #[test]
    #[should_panic]
    fn degenerate_grid_rejected() {
        MapConfig {
            cols: 1,
            rows: 5,
            ..MapConfig::tiny()
        }
        .generate(0);
    }
}
