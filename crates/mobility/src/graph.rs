//! Road graphs: the map that buses drive on.
//!
//! A [`RoadGraph`] is an undirected graph with vertices embedded in the plane.
//! Edge weights are Euclidean lengths. Adjacency is stored in compact CSR-like
//! form after construction for cache-friendly shortest-path queries.

use crate::geometry::{Point, Rect};

/// Index of a vertex in a [`RoadGraph`].
pub type VertexId = u32;

/// An undirected, planar-embedded road network.
#[derive(Clone, Debug)]
pub struct RoadGraph {
    positions: Vec<Point>,
    /// CSR offsets into `neighbors`, length `n_vertices + 1`.
    offsets: Vec<u32>,
    /// Flattened neighbor lists: `(neighbor, edge_length)`.
    neighbors: Vec<(VertexId, f64)>,
}

/// Incremental builder for [`RoadGraph`].
#[derive(Clone, Debug, Default)]
pub struct RoadGraphBuilder {
    positions: Vec<Point>,
    edges: Vec<(VertexId, VertexId)>,
}

impl RoadGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex at `p`, returning its id.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        self.positions.push(p);
        (self.positions.len() - 1) as VertexId
    }

    /// Adds an undirected edge `a — b`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range vertices.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        assert!(a != b, "self-loop");
        assert!((a as usize) < self.positions.len() && (b as usize) < self.positions.len());
        self.edges.push((a.min(b), a.max(b)));
    }

    /// Number of vertices added so far.
    pub fn n_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Current edge list (normalised `a < b`).
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Removes edge `a — b` if present; returns whether it was removed.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        let key = (a.min(b), a.max(b));
        if let Some(pos) = self.edges.iter().position(|&e| e == key) {
            self.edges.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Whether the graph (restricted to vertices that exist) is connected.
    pub fn is_connected(&self) -> bool {
        let n = self.positions.len();
        if n <= 1 {
            return true;
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Finalises into a [`RoadGraph`], deduplicating edges.
    pub fn build(mut self) -> RoadGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.positions.len();
        let mut degree = vec![0u32; n];
        for &(a, b) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut neighbors = vec![(0u32, 0.0); *offsets.last().unwrap() as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(a, b) in &self.edges {
            let len = self.positions[a as usize].dist(self.positions[b as usize]);
            neighbors[cursor[a as usize] as usize] = (b, len);
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = (a, len);
            cursor[b as usize] += 1;
        }
        RoadGraph {
            positions: self.positions,
            offsets,
            neighbors,
        }
    }
}

impl RoadGraph {
    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Position of vertex `v`.
    #[inline]
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v as usize]
    }

    /// All vertex positions.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Neighbors of `v` with edge lengths.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, f64)] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The bounding box of all vertices.
    ///
    /// # Panics
    /// Panics on an empty graph.
    pub fn bounds(&self) -> Rect {
        assert!(!self.positions.is_empty(), "empty graph has no bounds");
        let mut min = self.positions[0];
        let mut max = self.positions[0];
        for p in &self.positions {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Rect::new(min, max)
    }

    /// The vertex nearest to `p`.
    pub fn nearest_vertex(&self, p: Point) -> VertexId {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (i, q) in self.positions.iter().enumerate() {
            let d = p.dist_sq(*q);
            if d < best_d {
                best_d = d;
                best = i as u32;
            }
        }
        best
    }

    /// Sum of all edge lengths (total road length, metres).
    pub fn total_length(&self) -> f64 {
        self.neighbors.iter().map(|(_, l)| l).sum::<f64>() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 square with one diagonal.
    fn square() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(1.0, 1.0));
        let v3 = b.add_vertex(Point::new(0.0, 1.0));
        b.add_edge(v0, v1);
        b.add_edge(v1, v2);
        b.add_edge(v2, v3);
        b.add_edge(v3, v0);
        b.add_edge(v0, v2);
        b.build()
    }

    #[test]
    fn build_counts_and_lengths() {
        let g = square();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 5);
        assert!((g.total_length() - (4.0 + 2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = square();
        for v in 0..4u32 {
            for &(w, len) in g.neighbors(v) {
                assert!(
                    g.neighbors(w).iter().any(|&(x, l)| x == v && l == len),
                    "edge {v}->{w} not mirrored"
                );
            }
        }
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(v0, v1);
        b.add_edge(v1, v0);
        let g = b.build();
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn connectivity_detection() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge(v0, v1);
        assert!(!b.is_connected());
        b.add_edge(v1, v2);
        assert!(b.is_connected());
        assert!(b.remove_edge(v1, v2));
        assert!(!b.is_connected());
        assert!(!b.remove_edge(v1, v2), "already removed");
    }

    #[test]
    fn nearest_vertex_and_bounds() {
        let g = square();
        assert_eq!(g.nearest_vertex(Point::new(0.1, 0.1)), 0);
        assert_eq!(g.nearest_vertex(Point::new(0.9, 0.95)), 2);
        let b = g.bounds();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut b = RoadGraphBuilder::new();
        let v = b.add_vertex(Point::new(0.0, 0.0));
        b.add_edge(v, v);
    }
}
