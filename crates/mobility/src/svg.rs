//! SVG rendering of maps, bus routes and node positions — dependency-free
//! scenario visualisation for debugging and documentation.
//!
//! ```no_run
//! use dtn_mobility::scenario::ScenarioConfig;
//! use dtn_mobility::svg::SvgScene;
//!
//! let s = ScenarioConfig::paper(40).sized(1000.0).build(1);
//! let svg = SvgScene::new(&s.graph)
//!     .with_trajectory_points(&s.trajectories, 500.0, &s.communities)
//!     .render();
//! std::fs::write("city.svg", svg).unwrap();
//! ```

use crate::geometry::Point;
use crate::graph::RoadGraph;
use crate::routes::BusRoute;
use crate::trajectory::Trajectory;
use std::fmt::Write as _;

/// Community colour palette (cycled).
const PALETTE: [&str; 8] = [
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628", "#f781bf", "#17becf",
];

/// A scene under construction: the road graph plus overlays.
pub struct SvgScene<'a> {
    graph: &'a RoadGraph,
    routes: Vec<(&'a BusRoute, usize)>,
    nodes: Vec<(Point, usize)>,
    scale: f64,
    margin: f64,
}

impl<'a> SvgScene<'a> {
    /// Starts a scene from a road graph.
    pub fn new(graph: &'a RoadGraph) -> Self {
        SvgScene {
            graph,
            routes: Vec::new(),
            nodes: Vec::new(),
            scale: 0.25,
            margin: 20.0,
        }
    }

    /// Overlays a bus route in the palette colour `color_idx`.
    pub fn with_route(mut self, route: &'a BusRoute, color_idx: usize) -> Self {
        self.routes.push((route, color_idx));
        self
    }

    /// Overlays node positions sampled from `trajectories` at time `t`,
    /// coloured by `communities` (one id per node).
    pub fn with_trajectory_points(
        mut self,
        trajectories: &[Trajectory],
        t: f64,
        communities: &[u32],
    ) -> Self {
        for (i, traj) in trajectories.iter().enumerate() {
            let cid = communities.get(i).copied().unwrap_or(0) as usize;
            self.nodes.push((traj.position_at(t), cid));
        }
        self
    }

    /// Output scale in pixels per metre (default 0.25).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.scale = scale;
        self
    }

    fn tx(&self, p: Point, min: Point) -> (f64, f64) {
        (
            (p.x - min.x) * self.scale + self.margin,
            (p.y - min.y) * self.scale + self.margin,
        )
    }

    /// Renders the scene to an SVG string.
    pub fn render(&self) -> String {
        let bounds = self.graph.bounds();
        let w = bounds.width() * self.scale + 2.0 * self.margin;
        let h = bounds.height() * self.scale + 2.0 * self.margin;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
        );
        let _ = writeln!(
            out,
            r##"<rect width="100%" height="100%" fill="#fafafa"/>"##
        );

        // Streets.
        for v in 0..self.graph.n_vertices() as u32 {
            let (x1, y1) = self.tx(self.graph.position(v), bounds.min);
            for &(u, _) in self.graph.neighbors(v) {
                if u < v {
                    continue; // draw each edge once
                }
                let (x2, y2) = self.tx(self.graph.position(u), bounds.min);
                let _ = writeln!(
                    out,
                    r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#bbb" stroke-width="2"/>"##
                );
            }
        }
        // Routes.
        for (route, color_idx) in &self.routes {
            let color = PALETTE[color_idx % PALETTE.len()];
            let mut d = String::new();
            for (i, p) in route.polyline().iter().enumerate() {
                let (x, y) = self.tx(*p, bounds.min);
                let _ = write!(d, "{}{x:.1},{y:.1} ", if i == 0 { "M" } else { "L" });
            }
            let _ = writeln!(
                out,
                r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.5" opacity="0.7"/>"#
            );
        }
        // Nodes.
        for (p, cid) in &self.nodes {
            let color = PALETTE[cid % PALETTE.len()];
            let (x, y) = self.tx(*p, bounds.min);
            let _ = writeln!(
                out,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="3.5" fill="{color}" stroke="#333" stroke-width="0.6"/>"##
            );
        }
        let _ = writeln!(out, "</svg>");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapgen::MapConfig;
    use crate::path::PathFinder;

    #[test]
    fn renders_valid_svg_skeleton() {
        let g = MapConfig::tiny().generate(1);
        let svg = SvgScene::new(&g).render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One line per street edge plus the background rect.
        assert_eq!(svg.matches("<line").count(), g.n_edges());
    }

    #[test]
    fn overlays_routes_and_nodes() {
        let g = MapConfig::tiny().generate(2);
        let mut pf = PathFinder::new();
        let route = BusRoute::new(&g, vec![0, 5, 10], &mut pf).unwrap();
        let trajs = vec![Trajectory::stationary(g.position(3))];
        let svg = SvgScene::new(&g)
            .with_route(&route, 1)
            .with_trajectory_points(&trajs, 0.0, &[2])
            .render();
        assert_eq!(svg.matches("<path").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 1);
        assert!(svg.contains(PALETTE[1]), "route colour present");
        assert!(svg.contains(PALETTE[2]), "community colour present");
    }

    #[test]
    fn scale_changes_canvas_size() {
        let g = MapConfig::tiny().generate(1);
        let small = SvgScene::new(&g).with_scale(0.1).render();
        let large = SvgScene::new(&g).with_scale(1.0).render();
        let width = |s: &str| {
            s.split("width=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse::<f64>()
                .unwrap()
        };
        assert!(width(&large) > width(&small));
    }
}
