//! Scenario builders: map + bus lines + buses ⇒ contact trace + communities.
//!
//! [`ScenarioConfig`] reproduces the paper's evaluation setting: buses on a
//! downtown road network. With `districts > 1`, bus lines are clustered into
//! geographic districts — each line's buses form a *community* with high
//! intra-community contact frequency, which is exactly the structure the CR
//! protocol exploits. A configurable fraction of "express" lines crosses
//! districts so inter-community transfer opportunities exist.

use crate::contacts::{generate_trace, ContactGenConfig};
use crate::graph::{RoadGraph, VertexId};
use crate::mapgen::MapConfig;
use crate::path::PathFinder;
use crate::routes::{sample_distinct, BusConfig, BusRoute};
use crate::trajectory::Trajectory;
use dtn_sim::ContactTrace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Full scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Number of buses (network nodes).
    pub n_nodes: u32,
    /// Simulation horizon in seconds (paper: 10 000).
    pub duration: f64,
    /// Map generator parameters.
    pub map: MapConfig,
    /// Bus speed/pause parameters.
    pub bus: BusConfig,
    /// Contact detection parameters (range 10 m in the paper).
    pub contact: ContactGenConfig,
    /// Number of geographic districts (= communities); 1 disables community
    /// structure.
    pub districts: u32,
    /// Fraction of bus lines whose stops span the whole map.
    pub express_fraction: f64,
    /// Number of bus lines. Fixed independently of `n_nodes`, like a real
    /// city: growing the fleet adds buses to existing lines, which *densifies*
    /// contacts (the paper's delivery ratio rises with N for this reason).
    pub n_routes: u32,
    /// Stops per bus line.
    pub stops_per_route: u32,
    /// Split the fleet into day/night schedule halves: even-indexed buses on
    /// each line drive `[0, duration/2)` then park; odd-indexed buses park at
    /// their line's start until `duration/2`, then drive. Models shift
    /// schedules and halves the number of simultaneously moving nodes.
    pub day_night: bool,
}

impl ScenarioConfig {
    /// The paper's §V-A setting for `n` nodes: downtown map, 10 000 s,
    /// 10 m range, speeds 2.7–13.9 m/s, with 4 districts.
    pub fn paper(n_nodes: u32) -> Self {
        ScenarioConfig {
            n_nodes,
            duration: 10_000.0,
            map: MapConfig::helsinki_downtown(),
            bus: BusConfig::default(),
            contact: ContactGenConfig::default(),
            districts: 4,
            express_fraction: 0.25,
            n_routes: 12,
            stops_per_route: 5,
            day_night: false,
        }
    }

    /// A city-scale scenario family: `districts` vertical bands on a wide
    /// map ([`MapConfig::city`]), 3 bus lines per district, and day/night
    /// schedule halves. Designed to stay O(n) on the supply side so runs at
    /// n = 10⁵ are feasible at short horizons through the streaming path.
    pub fn city(n_nodes: u32, districts: u32) -> Self {
        let districts = districts.max(1);
        ScenarioConfig {
            n_nodes,
            duration: 10_000.0,
            map: MapConfig::city(districts),
            bus: BusConfig::default(),
            contact: ContactGenConfig::default(),
            districts,
            express_fraction: 0.15,
            n_routes: 3 * districts,
            stops_per_route: 4,
            day_night: true,
        }
    }

    /// A small/fast variant for tests: fewer nodes, shorter horizon.
    pub fn small(n_nodes: u32, duration: f64) -> Self {
        ScenarioConfig {
            n_nodes,
            duration,
            map: MapConfig::tiny(),
            bus: BusConfig::default(),
            contact: ContactGenConfig::default(),
            districts: 2,
            express_fraction: 0.25,
            n_routes: 2,
            stops_per_route: 3,
            day_night: false,
        }
    }

    /// Returns a copy with a different simulation horizon (seconds).
    pub fn sized(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Builds the scenario deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Scenario {
        let parts = self.build_parts(seed);
        let trace = generate_trace(&parts.trajectories, self.duration, self.contact);
        Scenario {
            trace,
            communities: parts.communities,
            n_communities: parts.n_communities,
            graph: parts.graph,
            trajectories: parts.trajectories,
        }
    }

    /// Builds everything except the contact process: the map, every node's
    /// trajectory, and community ground truth. This is the input to both
    /// [`generate_trace`] (materialized path, via [`ScenarioConfig::build`])
    /// and [`crate::stream::MobilityContactSource`] (streaming path), which
    /// never holds the whole-horizon trace.
    pub fn build_parts(&self, seed: u64) -> ScenarioParts {
        assert!(self.n_nodes >= 2);
        assert!(self.districts >= 1);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7363_656e_u64);
        let graph = self.map.generate(seed);
        let district_of = district_assignment(&graph, self.districts);

        // Vertex pools per district.
        let mut pools: Vec<Vec<VertexId>> = vec![Vec::new(); self.districts as usize];
        for (v, &d) in district_of.iter().enumerate() {
            pools[d as usize].push(v as VertexId);
        }
        let all: Vec<VertexId> = (0..graph.n_vertices() as u32).collect();

        let n_routes = self.n_routes.min(self.n_nodes).max(1);
        let mut pf = PathFinder::new();
        let mut routes: Vec<(BusRoute, u32)> = Vec::with_capacity(n_routes as usize);
        for r in 0..n_routes {
            let home = r % self.districts;
            let express = self.districts > 1 && rng.gen::<f64>() < self.express_fraction;
            let pool: &[VertexId] =
                if express || pools[home as usize].len() < self.stops_per_route as usize {
                    &all
                } else {
                    &pools[home as usize]
                };
            // Retry a few times in the (unlikely) case of a degenerate loop.
            let route = loop {
                let anchors = sample_distinct(pool, self.stops_per_route as usize, &mut rng);
                if let Some(route) = BusRoute::new(&graph, anchors, &mut pf) {
                    break route;
                }
            };
            routes.push((route, home));
        }

        let mut trajectories = Vec::with_capacity(self.n_nodes as usize);
        let mut communities = Vec::with_capacity(self.n_nodes as usize);
        for k in 0..self.n_nodes {
            let ri = (k % n_routes) as usize;
            let (route, home) = &routes[ri];
            let on_route = k / n_routes; // index of this bus on its line
            let buses_on_line = buses_on_route(self.n_nodes, n_routes, ri as u32);
            let offset =
                (f64::from(on_route) + rng.gen_range(0.0..0.5)) / f64::from(buses_on_line.max(1));
            let mut bus_rng = SmallRng::seed_from_u64(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(k)),
            );
            let traj = if self.day_night {
                let half = self.duration / 2.0;
                if on_route.is_multiple_of(2) {
                    // Day shift: drive the first half, then park (the
                    // trajectory clamps to its last breakpoint).
                    route.bus_trajectory(offset.min(0.999), half, &self.bus, &mut bus_rng)
                } else {
                    // Night shift: park at the line start, drive the second
                    // half.
                    let raw = route.bus_trajectory(
                        offset.min(0.999),
                        self.duration - half,
                        &self.bus,
                        &mut bus_rng,
                    );
                    delay_start(&raw, half)
                }
            } else {
                route.bus_trajectory(offset.min(0.999), self.duration, &self.bus, &mut bus_rng)
            };
            trajectories.push(traj);
            communities.push(*home);
        }

        ScenarioParts {
            graph,
            trajectories,
            communities,
            n_communities: self.districts,
        }
    }
}

/// Shifts a trajectory `by` seconds into the future, parking the node at the
/// trajectory's first point until then.
fn delay_start(traj: &Trajectory, by: f64) -> Trajectory {
    let pts = traj.points();
    let mut shifted = Vec::with_capacity(pts.len() + 1);
    shifted.push((0.0, pts[0].1));
    for &(t, p) in pts {
        shifted.push((t + by, p));
    }
    Trajectory::new(shifted)
}

/// Number of buses line `ri` receives under round-robin assignment.
fn buses_on_route(n_nodes: u32, n_routes: u32, ri: u32) -> u32 {
    n_nodes / n_routes + u32::from(ri < n_nodes % n_routes)
}

/// Assigns each map vertex to a vertical-band district.
fn district_assignment(g: &RoadGraph, districts: u32) -> Vec<u32> {
    if districts <= 1 {
        return vec![0; g.n_vertices()];
    }
    let bounds = g.bounds();
    let band = bounds.width() / f64::from(districts);
    g.positions()
        .iter()
        .map(|p| {
            let d = ((p.x - bounds.min.x) / band).floor() as i64;
            d.clamp(0, i64::from(districts) - 1) as u32
        })
        .collect()
}

/// The trace-free output of [`ScenarioConfig::build_parts`].
#[derive(Clone, Debug)]
pub struct ScenarioParts {
    /// The road graph.
    pub graph: RoadGraph,
    /// Node trajectories.
    pub trajectories: Vec<Trajectory>,
    /// Community id of each node (the home district of its bus line).
    pub communities: Vec<u32>,
    /// Number of communities.
    pub n_communities: u32,
}

/// A built scenario: the contact trace plus community ground truth.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The contact trace the engine replays.
    pub trace: ContactTrace,
    /// Community id of each node (the home district of its bus line).
    pub communities: Vec<u32>,
    /// Number of communities.
    pub n_communities: u32,
    /// The road graph (retained for inspection/visualisation).
    pub graph: RoadGraph,
    /// Node trajectories (retained for inspection/visualisation).
    pub trajectories: Vec<Trajectory>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_builds_and_validates() {
        let cfg = ScenarioConfig {
            duration: 1000.0,
            ..ScenarioConfig::paper(40)
        };
        let s = cfg.build(1);
        assert_eq!(s.trace.n_nodes, 40);
        assert_eq!(s.communities.len(), 40);
        assert!(s.trace.validate().is_ok());
        assert!(
            !s.trace.contacts.is_empty(),
            "buses on a downtown map must meet within 1000 s"
        );
        // All four districts populated.
        let mut seen = [false; 4];
        for &c in &s.communities {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "communities {:?}", s.communities);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScenarioConfig::small(8, 300.0);
        let s1 = cfg.build(7);
        let s2 = cfg.build(7);
        assert_eq!(s1.trace.contacts, s2.trace.contacts);
        assert_eq!(s1.communities, s2.communities);
        let s3 = cfg.build(8);
        // Extremely unlikely to match exactly.
        assert_ne!(s1.trace.contacts, s3.trace.contacts);
    }

    #[test]
    fn single_district_means_one_community() {
        let cfg = ScenarioConfig {
            districts: 1,
            ..ScenarioConfig::small(6, 200.0)
        };
        let s = cfg.build(3);
        assert!(s.communities.iter().all(|&c| c == 0));
        assert_eq!(s.n_communities, 1);
    }

    #[test]
    fn city_day_night_halves_alternate() {
        let cfg = ScenarioConfig::city(24, 4).sized(2000.0);
        assert!(cfg.day_night);
        let s = cfg.build(5);
        assert_eq!(s.trace.n_nodes, 24);
        assert!(s.trace.validate().is_ok());
        // All four districts populated.
        let mut seen = [false; 4];
        for &c in &s.communities {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "communities {:?}", s.communities);

        let n_routes = cfg.n_routes.min(cfg.n_nodes);
        let half = cfg.duration / 2.0;
        for (k, traj) in s.trajectories.iter().enumerate() {
            let on_route = k as u32 / n_routes;
            if on_route.is_multiple_of(2) {
                // Day bus: parked well into the second half.
                assert_eq!(
                    traj.position_at(half * 1.4),
                    traj.position_at(cfg.duration),
                    "day bus {k} still moving at night"
                );
            } else {
                // Night bus: parked through most of the first half.
                assert_eq!(
                    traj.position_at(0.0),
                    traj.position_at(half * 0.9),
                    "night bus {k} moving during the day"
                );
            }
        }
    }

    #[test]
    fn build_parts_matches_build() {
        let cfg = ScenarioConfig::small(8, 300.0);
        let s = cfg.build(7);
        let p = cfg.build_parts(7);
        assert_eq!(s.communities, p.communities);
        assert_eq!(s.trajectories.len(), p.trajectories.len());
        for (a, b) in s.trajectories.iter().zip(&p.trajectories) {
            assert_eq!(a.points(), b.points());
        }
    }

    #[test]
    fn intra_community_contacts_dominate() {
        // The community structure must actually show in the contact process:
        // same-community pairs should meet far more often than cross pairs
        // (per-pair normalised).
        let cfg = ScenarioConfig {
            duration: 2000.0,
            ..ScenarioConfig::paper(48)
        };
        let s = cfg.build(11);
        let mut intra = 0u64;
        let mut inter = 0u64;
        for c in &s.trace.contacts {
            if s.communities[c.pair.a.idx()] == s.communities[c.pair.b.idx()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 0);
        // Same-community pairs are ~1/4 of all pairs; if contacts were
        // community-blind, intra ≈ total/4. Require clear skew.
        let total = intra + inter;
        assert!(
            intra * 2 > total,
            "intra {intra} inter {inter}: community structure too weak"
        );
    }
}
