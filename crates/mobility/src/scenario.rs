//! Scenario builders: map + bus lines + buses ⇒ contact trace + communities.
//!
//! [`ScenarioConfig`] reproduces the paper's evaluation setting: buses on a
//! downtown road network. With `districts > 1`, bus lines are clustered into
//! geographic districts — each line's buses form a *community* with high
//! intra-community contact frequency, which is exactly the structure the CR
//! protocol exploits. A configurable fraction of "express" lines crosses
//! districts so inter-community transfer opportunities exist.

use crate::contacts::{generate_trace, ContactGenConfig};
use crate::graph::{RoadGraph, VertexId};
use crate::mapgen::MapConfig;
use crate::path::PathFinder;
use crate::routes::{sample_distinct, BusConfig, BusRoute};
use crate::trajectory::Trajectory;
use dtn_sim::ContactTrace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Full scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Number of buses (network nodes).
    pub n_nodes: u32,
    /// Simulation horizon in seconds (paper: 10 000).
    pub duration: f64,
    /// Map generator parameters.
    pub map: MapConfig,
    /// Bus speed/pause parameters.
    pub bus: BusConfig,
    /// Contact detection parameters (range 10 m in the paper).
    pub contact: ContactGenConfig,
    /// Number of geographic districts (= communities); 1 disables community
    /// structure.
    pub districts: u32,
    /// Fraction of bus lines whose stops span the whole map.
    pub express_fraction: f64,
    /// Number of bus lines. Fixed independently of `n_nodes`, like a real
    /// city: growing the fleet adds buses to existing lines, which *densifies*
    /// contacts (the paper's delivery ratio rises with N for this reason).
    pub n_routes: u32,
    /// Stops per bus line.
    pub stops_per_route: u32,
}

impl ScenarioConfig {
    /// The paper's §V-A setting for `n` nodes: downtown map, 10 000 s,
    /// 10 m range, speeds 2.7–13.9 m/s, with 4 districts.
    pub fn paper(n_nodes: u32) -> Self {
        ScenarioConfig {
            n_nodes,
            duration: 10_000.0,
            map: MapConfig::helsinki_downtown(),
            bus: BusConfig::default(),
            contact: ContactGenConfig::default(),
            districts: 4,
            express_fraction: 0.25,
            n_routes: 12,
            stops_per_route: 5,
        }
    }

    /// A small/fast variant for tests: fewer nodes, shorter horizon.
    pub fn small(n_nodes: u32, duration: f64) -> Self {
        ScenarioConfig {
            n_nodes,
            duration,
            map: MapConfig::tiny(),
            bus: BusConfig::default(),
            contact: ContactGenConfig::default(),
            districts: 2,
            express_fraction: 0.25,
            n_routes: 2,
            stops_per_route: 3,
        }
    }

    /// Returns a copy with a different simulation horizon (seconds).
    pub fn sized(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Builds the scenario deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Scenario {
        assert!(self.n_nodes >= 2);
        assert!(self.districts >= 1);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7363_656e_u64);
        let graph = self.map.generate(seed);
        let district_of = district_assignment(&graph, self.districts);

        // Vertex pools per district.
        let mut pools: Vec<Vec<VertexId>> = vec![Vec::new(); self.districts as usize];
        for (v, &d) in district_of.iter().enumerate() {
            pools[d as usize].push(v as VertexId);
        }
        let all: Vec<VertexId> = (0..graph.n_vertices() as u32).collect();

        let n_routes = self.n_routes.min(self.n_nodes).max(1);
        let mut pf = PathFinder::new();
        let mut routes: Vec<(BusRoute, u32)> = Vec::with_capacity(n_routes as usize);
        for r in 0..n_routes {
            let home = r % self.districts;
            let express = self.districts > 1 && rng.gen::<f64>() < self.express_fraction;
            let pool: &[VertexId] =
                if express || pools[home as usize].len() < self.stops_per_route as usize {
                    &all
                } else {
                    &pools[home as usize]
                };
            // Retry a few times in the (unlikely) case of a degenerate loop.
            let route = loop {
                let anchors = sample_distinct(pool, self.stops_per_route as usize, &mut rng);
                if let Some(route) = BusRoute::new(&graph, anchors, &mut pf) {
                    break route;
                }
            };
            routes.push((route, home));
        }

        let mut trajectories = Vec::with_capacity(self.n_nodes as usize);
        let mut communities = Vec::with_capacity(self.n_nodes as usize);
        for k in 0..self.n_nodes {
            let ri = (k % n_routes) as usize;
            let (route, home) = &routes[ri];
            let on_route = k / n_routes; // index of this bus on its line
            let buses_on_line = buses_on_route(self.n_nodes, n_routes, ri as u32);
            let offset =
                (f64::from(on_route) + rng.gen_range(0.0..0.5)) / f64::from(buses_on_line.max(1));
            let mut bus_rng = SmallRng::seed_from_u64(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(k)),
            );
            trajectories.push(route.bus_trajectory(
                offset.min(0.999),
                self.duration,
                &self.bus,
                &mut bus_rng,
            ));
            communities.push(*home);
        }

        let trace = generate_trace(&trajectories, self.duration, self.contact);
        Scenario {
            trace,
            communities,
            n_communities: self.districts,
            graph,
            trajectories,
        }
    }
}

/// Number of buses line `ri` receives under round-robin assignment.
fn buses_on_route(n_nodes: u32, n_routes: u32, ri: u32) -> u32 {
    n_nodes / n_routes + u32::from(ri < n_nodes % n_routes)
}

/// Assigns each map vertex to a vertical-band district.
fn district_assignment(g: &RoadGraph, districts: u32) -> Vec<u32> {
    if districts <= 1 {
        return vec![0; g.n_vertices()];
    }
    let bounds = g.bounds();
    let band = bounds.width() / f64::from(districts);
    g.positions()
        .iter()
        .map(|p| {
            let d = ((p.x - bounds.min.x) / band).floor() as i64;
            d.clamp(0, i64::from(districts) - 1) as u32
        })
        .collect()
}

/// A built scenario: the contact trace plus community ground truth.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The contact trace the engine replays.
    pub trace: ContactTrace,
    /// Community id of each node (the home district of its bus line).
    pub communities: Vec<u32>,
    /// Number of communities.
    pub n_communities: u32,
    /// The road graph (retained for inspection/visualisation).
    pub graph: RoadGraph,
    /// Node trajectories (retained for inspection/visualisation).
    pub trajectories: Vec<Trajectory>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_builds_and_validates() {
        let cfg = ScenarioConfig {
            duration: 1000.0,
            ..ScenarioConfig::paper(40)
        };
        let s = cfg.build(1);
        assert_eq!(s.trace.n_nodes, 40);
        assert_eq!(s.communities.len(), 40);
        assert!(s.trace.validate().is_ok());
        assert!(
            !s.trace.contacts.is_empty(),
            "buses on a downtown map must meet within 1000 s"
        );
        // All four districts populated.
        let mut seen = [false; 4];
        for &c in &s.communities {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "communities {:?}", s.communities);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScenarioConfig::small(8, 300.0);
        let s1 = cfg.build(7);
        let s2 = cfg.build(7);
        assert_eq!(s1.trace.contacts, s2.trace.contacts);
        assert_eq!(s1.communities, s2.communities);
        let s3 = cfg.build(8);
        // Extremely unlikely to match exactly.
        assert_ne!(s1.trace.contacts, s3.trace.contacts);
    }

    #[test]
    fn single_district_means_one_community() {
        let cfg = ScenarioConfig {
            districts: 1,
            ..ScenarioConfig::small(6, 200.0)
        };
        let s = cfg.build(3);
        assert!(s.communities.iter().all(|&c| c == 0));
        assert_eq!(s.n_communities, 1);
    }

    #[test]
    fn intra_community_contacts_dominate() {
        // The community structure must actually show in the contact process:
        // same-community pairs should meet far more often than cross pairs
        // (per-pair normalised).
        let cfg = ScenarioConfig {
            duration: 2000.0,
            ..ScenarioConfig::paper(48)
        };
        let s = cfg.build(11);
        let mut intra = 0u64;
        let mut inter = 0u64;
        for c in &s.trace.contacts {
            if s.communities[c.pair.a.idx()] == s.communities[c.pair.b.idx()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 0);
        // Same-community pairs are ~1/4 of all pairs; if contacts were
        // community-blind, intra ≈ total/4. Require clear skew.
        let total = intra + inter;
        assert!(
            intra * 2 > total,
            "intra {intra} inter {inter}: community structure too weak"
        );
    }
}
