//! Contact detection from trajectories.
//!
//! Positions are sampled every `dt` seconds; nodes within `range` metres are
//! in contact. A reused flat counting-sort grid with cell size `range`
//! reduces the per-step pair test from O(n²) to O(n) for the sparse
//! densities of vehicular scenarios, with zero heap allocation in steady
//! state. [`ContactStepper`] exposes the detector incrementally — one
//! sampling step at a time, emitting opened and closed contacts — which is
//! what lets contact supply stream into the engine window-by-window
//! (see [`crate::stream`]) instead of materializing a whole-horizon trace.
//! [`generate_trace`] drives the same stepper to completion when a
//! materialized [`ContactTrace`] is wanted.

use crate::geometry::Point;
use crate::trajectory::{Trajectory, TrajectoryCursor};
use dtn_sim::{Contact, ContactTrace, NodeId, NodePair, SimTime};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Contact-detection parameters.
#[derive(Clone, Copy, Debug)]
pub struct ContactGenConfig {
    /// Radio range in metres (paper: 10).
    pub range: f64,
    /// Sampling step in seconds. The ONE simulator uses 0.1 s; with the
    /// paper's max speed (13.9 m/s) a 0.2 s step bounds the worst-case
    /// detection error at ≈ 5.6 m of relative motion.
    pub dt: f64,
}

impl Default for ContactGenConfig {
    fn default() -> Self {
        ContactGenConfig {
            range: 10.0,
            dt: 0.2,
        }
    }
}

/// A flat counting-sort spatial grid, rebuilt each step from reused buffers.
///
/// Layout: `starts[c]..starts[c + 1]` indexes into `items`, the node ids
/// whose position falls in cell `c`. The table is capped at O(n) cells;
/// worlds wider than the cap wrap (alias) onto the table, which only adds
/// false candidates — the caller's exact distance test rejects them.
#[derive(Debug, Default)]
struct FlatGrid {
    cols: usize,
    rows: usize,
    min_x: f64,
    min_y: f64,
    cell: f64,
    /// Per-cell occupancy during the build; zeroed again by the scatter.
    counts: Vec<u32>,
    /// Exclusive prefix sums of `counts`: cell start offsets into `items`.
    starts: Vec<u32>,
    /// Node ids grouped by cell.
    items: Vec<u32>,
    /// Cell index of each node, kept for the scatter pass.
    cell_of: Vec<u32>,
}

impl FlatGrid {
    /// Rebuilds the grid over `positions` with cell size `cell`. O(n) time;
    /// buffers only ever grow, so a steady-state rebuild never allocates.
    fn build(&mut self, positions: &[Point], cell: f64) {
        let n = positions.len();
        self.cell = cell;
        if n == 0 {
            self.cols = 1;
            self.rows = 1;
            if self.starts.len() < 2 {
                self.starts.resize(2, 0);
            }
            self.starts[0] = 0;
            self.starts[1] = 0;
            return;
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        self.min_x = min_x;
        self.min_y = min_y;
        let cap = n.max(64) * 4;
        let need_cols = (((max_x - min_x) / cell) as usize).saturating_add(1);
        let need_rows = (((max_y - min_y) / cell) as usize).saturating_add(1);
        self.cols = need_cols.min(cap);
        self.rows = need_rows.min((cap / self.cols).max(1));
        let cells = self.cols * self.rows;

        if self.counts.len() < cells + 1 {
            self.counts.resize(cells + 1, 0);
        }
        if self.starts.len() < cells + 1 {
            self.starts.resize(cells + 1, 0);
        }
        if self.items.len() < n {
            self.items.resize(n, 0);
        }
        if self.cell_of.len() < n {
            self.cell_of.resize(n, 0);
        }
        self.counts[..cells].fill(0);

        for (i, p) in positions.iter().enumerate() {
            let c = self.cell_index(*p);
            self.cell_of[i] = c as u32;
            self.counts[c] += 1;
        }
        let mut running = 0u32;
        for c in 0..cells {
            self.starts[c] = running;
            running += self.counts[c];
        }
        self.starts[cells] = running;
        // Scatter, reusing `counts` as per-cell countdown cursors (this
        // leaves `counts` all-zero again for the next build).
        for i in 0..n {
            let c = self.cell_of[i] as usize;
            self.counts[c] -= 1;
            self.items[(self.starts[c] + self.counts[c]) as usize] = i as u32;
        }
    }

    #[inline]
    fn cell_index(&self, p: Point) -> usize {
        let cx = ((p.x - self.min_x) / self.cell) as usize;
        let cy = ((p.y - self.min_y) / self.cell) as usize;
        (cy % self.rows) * self.cols + (cx % self.cols)
    }

    /// Calls `f` with every node id stored in the 3×3 cell neighborhood of
    /// `p`. May yield duplicates or far-away nodes when the table wraps;
    /// callers must apply the exact distance test.
    #[inline]
    fn neighbors(&self, p: Point, mut f: impl FnMut(u32)) {
        let cx = ((p.x - self.min_x) / self.cell) as i64;
        let cy = ((p.y - self.min_y) / self.cell) as i64;
        for dy in -1..=1i64 {
            let row = (cy + dy).rem_euclid(self.rows as i64) as usize;
            for dx in -1..=1i64 {
                let col = (cx + dx).rem_euclid(self.cols as i64) as usize;
                let c = row * self.cols + col;
                for s in self.starts[c] as usize..self.starts[c + 1] as usize {
                    f(self.items[s]);
                }
            }
        }
    }
}

/// Incremental, windowed contact detector over a fixed trajectory set.
///
/// Owns all scratch state — per-trajectory cursor positions, the flat
/// spatial grid, the map of currently-open contacts — so that a steady-state
/// [`ContactStepper::step`] performs zero heap allocations once buffers are
/// warm. [`generate_trace`] drives it to completion for the materialized
/// path; [`crate::stream::MobilityContactSource`] drives it window-by-window
/// so a run never holds the whole-horizon contact process in memory.
#[derive(Debug)]
pub struct ContactStepper {
    cfg: ContactGenConfig,
    duration: f64,
    steps: u64,
    step: u64,
    finalized: bool,
    /// Per-trajectory monotone cursor state ([`TrajectoryCursor::seg`]).
    segs: Vec<usize>,
    positions: Vec<Point>,
    grid: FlatGrid,
    /// Open contacts: pair → (start time, last step seen).
    open: HashMap<NodePair, (f64, u64)>,
}

impl ContactStepper {
    /// Creates a stepper for `n` trajectories over `[0, duration)`.
    ///
    /// # Panics
    /// Panics if `range` or `dt` is not positive.
    pub fn new(n: usize, duration: f64, cfg: ContactGenConfig) -> Self {
        assert!(cfg.range > 0.0 && cfg.dt > 0.0);
        ContactStepper {
            cfg,
            duration,
            steps: (duration / cfg.dt).ceil() as u64,
            step: 0,
            finalized: false,
            segs: vec![0; n],
            positions: vec![Point::default(); n],
            grid: FlatGrid::default(),
            open: HashMap::new(),
        }
    }

    /// The timestamp the next [`ContactStepper::step`] call will process:
    /// each sampling instant in turn, then `duration` once for the horizon
    /// close-out, then `None`.
    pub fn next_time(&self) -> Option<f64> {
        if self.finalized {
            None
        } else if self.step < self.steps {
            Some(self.step as f64 * self.cfg.dt)
        } else {
            Some(self.duration)
        }
    }

    /// Advances one sampling step, appending contacts that closed at its
    /// time `t` to `downs` (sorted by `(start, pair)`) and pairs that came
    /// into contact at `t` to `ups` (sorted by pair). The final call — at
    /// `t = duration` — closes every still-open contact. Returns the
    /// processed timestamp, or `None` once the horizon has been finalized.
    ///
    /// `trajs` must be the slice whose length was given to
    /// [`ContactStepper::new`], unchanged across calls.
    pub fn step(
        &mut self,
        trajs: &[Trajectory],
        downs: &mut Vec<Contact>,
        ups: &mut Vec<NodePair>,
    ) -> Option<f64> {
        assert_eq!(trajs.len(), self.segs.len(), "trajectory set changed");
        if self.finalized {
            return None;
        }
        if self.step >= self.steps {
            self.finalized = true;
            let base = downs.len();
            for (&pair, &(start, _)) in self.open.iter() {
                downs.push(Contact {
                    pair,
                    start: SimTime::secs(start),
                    end: SimTime::secs(self.duration),
                });
            }
            self.open.clear();
            downs[base..].sort_unstable_by_key(|c| (c.start, c.pair));
            return Some(self.duration);
        }

        let t = self.step as f64 * self.cfg.dt;
        let step = self.step;
        for (i, traj) in trajs.iter().enumerate() {
            let mut cur = TrajectoryCursor::with_seg(traj, self.segs[i]);
            self.positions[i] = cur.position_at(t);
            self.segs[i] = cur.seg();
        }
        self.grid.build(&self.positions, self.cfg.range);

        let range_sq = self.cfg.range * self.cfg.range;
        let grid = &self.grid;
        let open = &mut self.open;
        let positions = &self.positions;
        let up_base = ups.len();
        for (i, p) in positions.iter().enumerate() {
            grid.neighbors(*p, |j| {
                if (j as usize) <= i {
                    return;
                }
                if p.dist_sq(positions[j as usize]) <= range_sq {
                    let pair = NodePair::new(NodeId(i as u32), NodeId(j));
                    match open.entry(pair) {
                        Entry::Occupied(mut e) => e.get_mut().1 = step,
                        Entry::Vacant(e) => {
                            e.insert((t, step));
                            ups.push(pair);
                        }
                    }
                }
            });
        }
        ups[up_base..].sort_unstable();

        let down_base = downs.len();
        self.open.retain(|pair, (start, last)| {
            if *last != step {
                downs.push(Contact {
                    pair: *pair,
                    start: SimTime::secs(*start),
                    end: SimTime::secs(t),
                });
                false
            } else {
                true
            }
        });
        downs[down_base..].sort_unstable_by_key(|c| (c.start, c.pair));
        self.step += 1;
        Some(t)
    }

    /// Phase 1 of a sharded step (see [`crate::shard`]): advances every
    /// trajectory cursor to the next sampling instant and rebuilds the grid,
    /// without touching the open-contact map or the step counter.
    ///
    /// Returns `None` once the horizon has been finalized, `Some(false)` when
    /// the next step is the horizon close-out (nothing to scan — go straight
    /// to [`ContactStepper::commit_step`]), and `Some(true)` when positions
    /// and grid are ready for [`ContactStepper::scan_band`].
    pub(crate) fn prepare_step(&mut self, trajs: &[Trajectory]) -> Option<bool> {
        assert_eq!(trajs.len(), self.segs.len(), "trajectory set changed");
        if self.finalized {
            return None;
        }
        if self.step >= self.steps {
            return Some(false);
        }
        let t = self.step as f64 * self.cfg.dt;
        for (i, traj) in trajs.iter().enumerate() {
            let mut cur = TrajectoryCursor::with_seg(traj, self.segs[i]);
            self.positions[i] = cur.position_at(t);
            self.segs[i] = cur.seg();
        }
        self.grid.build(&self.positions, self.cfg.range);
        Some(true)
    }

    /// Phase 2 of a sharded step: scans band `band` of `n_bands` horizontal
    /// grid-row bands, pushing every in-range candidate pair whose *smaller*
    /// node falls in the band. Read-only, so any number of workers can scan
    /// disjoint bands of one prepared step concurrently.
    ///
    /// Every node lives in exactly one grid cell and every grid row in
    /// exactly one band, so the union over all bands is exactly the pair set
    /// the sequential [`ContactStepper::step`] discovers — independently of
    /// `n_bands`. Candidates may repeat when the grid table wraps (aliased
    /// 3×3 neighborhoods); [`ContactStepper::commit_step`] dedups.
    pub(crate) fn scan_band(&self, band: usize, n_bands: usize, out: &mut Vec<NodePair>) {
        let rows = self.grid.rows;
        let cols = self.grid.cols;
        let r0 = band * rows / n_bands;
        let r1 = (band + 1) * rows / n_bands;
        let range_sq = self.cfg.range * self.cfg.range;
        let positions = &self.positions;
        for c in r0 * cols..r1 * cols {
            for s in self.grid.starts[c] as usize..self.grid.starts[c + 1] as usize {
                let i = self.grid.items[s] as usize;
                let p = positions[i];
                self.grid.neighbors(p, |j| {
                    if (j as usize) <= i {
                        return;
                    }
                    if p.dist_sq(positions[j as usize]) <= range_sq {
                        out.push(NodePair::new(NodeId(i as u32), NodeId(j)));
                    }
                });
            }
        }
    }

    /// Phase 3 of a sharded step: merges the candidate pairs scanned by the
    /// bands and runs the identical open-map bookkeeping the sequential
    /// [`ContactStepper::step`] performs, emitting the same sorted
    /// `downs`/`ups`. Also handles the horizon close-out step (when
    /// [`ContactStepper::prepare_step`] returned `Some(false)` the candidate
    /// list is ignored). Returns the processed timestamp.
    ///
    /// `candidates` is sorted and deduplicated in place; the candidate *set*
    /// — not its order — determines the outcome, so the band count and the
    /// workers' completion order can never change the result.
    pub(crate) fn commit_step(
        &mut self,
        candidates: &mut Vec<NodePair>,
        downs: &mut Vec<Contact>,
        ups: &mut Vec<NodePair>,
    ) -> Option<f64> {
        if self.finalized {
            return None;
        }
        if self.step >= self.steps {
            self.finalized = true;
            let base = downs.len();
            for (&pair, &(start, _)) in self.open.iter() {
                downs.push(Contact {
                    pair,
                    start: SimTime::secs(start),
                    end: SimTime::secs(self.duration),
                });
            }
            self.open.clear();
            downs[base..].sort_unstable_by_key(|c| (c.start, c.pair));
            return Some(self.duration);
        }

        let t = self.step as f64 * self.cfg.dt;
        let step = self.step;
        candidates.sort_unstable();
        candidates.dedup();
        // Iterating the sorted candidates pushes new ups already pair-sorted
        // — the exact post-sort state of the sequential path.
        for &pair in candidates.iter() {
            match self.open.entry(pair) {
                Entry::Occupied(mut e) => e.get_mut().1 = step,
                Entry::Vacant(e) => {
                    e.insert((t, step));
                    ups.push(pair);
                }
            }
        }

        let down_base = downs.len();
        self.open.retain(|pair, (start, last)| {
            if *last != step {
                downs.push(Contact {
                    pair: *pair,
                    start: SimTime::secs(*start),
                    end: SimTime::secs(t),
                });
                false
            } else {
                true
            }
        });
        downs[down_base..].sort_unstable_by_key(|c| (c.start, c.pair));
        self.step += 1;
        Some(t)
    }
}

/// Generates the contact trace of `trajs` over `[0, duration)`.
///
/// # Panics
/// Panics if `range` or `dt` is not positive.
pub fn generate_trace(trajs: &[Trajectory], duration: f64, cfg: ContactGenConfig) -> ContactTrace {
    let mut stepper = ContactStepper::new(trajs.len(), duration, cfg);
    let mut contacts = Vec::new();
    let mut ups = Vec::new();
    while stepper.step(trajs, &mut contacts, &mut ups).is_some() {
        ups.clear();
    }
    ContactTrace::new(trajs.len() as u32, duration, contacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    /// Two nodes crossing: A fixed at origin, B drives past along x.
    #[test]
    fn crossing_nodes_make_one_contact() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let b = Trajectory::new(vec![
            (0.0, Point::new(-100.0, 0.0)),
            (40.0, Point::new(100.0, 0.0)), // 5 m/s
        ]);
        let trace = generate_trace(
            &[a, b],
            60.0,
            ContactGenConfig {
                range: 10.0,
                dt: 0.2,
            },
        );
        assert_eq!(trace.contacts.len(), 1);
        let c = trace.contacts[0];
        // In range for |x| <= 10 → 20 m at 5 m/s = 4 s around t = 20.
        assert!(
            (c.duration() - 4.0).abs() <= 0.5,
            "duration {}",
            c.duration()
        );
        assert!((c.start.as_secs() - 18.0).abs() <= 0.5);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn far_nodes_never_meet() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let b = Trajectory::stationary(Point::new(1000.0, 0.0));
        let trace = generate_trace(&[a, b], 100.0, ContactGenConfig::default());
        assert!(trace.contacts.is_empty());
    }

    #[test]
    fn contact_open_at_horizon_is_closed() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let b = Trajectory::stationary(Point::new(5.0, 0.0));
        let trace = generate_trace(&[a, b], 50.0, ContactGenConfig::default());
        assert_eq!(trace.contacts.len(), 1);
        assert_eq!(trace.contacts[0].start.as_secs(), 0.0);
        assert_eq!(trace.contacts[0].end.as_secs(), 50.0);
        assert!(trace.validate().is_ok());
    }

    /// Repeated approach/retreat produces one contact per approach.
    #[test]
    fn oscillating_node_produces_multiple_contacts() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let mut pts = vec![(0.0, Point::new(50.0, 0.0))];
        let mut t = 0.0;
        for _ in 0..3 {
            t += 10.0;
            pts.push((t, Point::new(0.0, 0.0)));
            t += 10.0;
            pts.push((t, Point::new(50.0, 0.0)));
        }
        let b = Trajectory::new(pts);
        let trace = generate_trace(&[a, b], t + 5.0, ContactGenConfig::default());
        assert_eq!(trace.contacts.len(), 3);
        assert!(trace.validate().is_ok());
    }

    /// The grid must not miss pairs straddling cell boundaries.
    #[test]
    fn grid_boundary_pairs_detected() {
        // Exactly range apart, straddling a cell boundary.
        let a = Trajectory::stationary(Point::new(9.99, 0.0));
        let b = Trajectory::stationary(Point::new(10.01, 0.0));
        let c = Trajectory::stationary(Point::new(19.0, 0.0));
        let trace = generate_trace(&[a, b, c], 10.0, ContactGenConfig::default());
        // a-b touch; b-c touch; a-c are 9.01 apart → touch too.
        assert_eq!(trace.contacts.len(), 3);
    }

    /// Negative coordinates hash correctly (floor division).
    #[test]
    fn negative_coordinates() {
        let a = Trajectory::stationary(Point::new(-3.0, -3.0));
        let b = Trajectory::stationary(Point::new(3.0, 3.0));
        let trace = generate_trace(&[a, b], 5.0, ContactGenConfig::default());
        assert_eq!(trace.contacts.len(), 1);
    }

    /// A world far wider than the cell cap wraps onto the table; aliased
    /// candidates must not turn into false contacts.
    #[test]
    fn wide_world_wraps_without_false_contacts() {
        let mut trajs = Vec::new();
        for k in 0..6 {
            trajs.push(Trajectory::stationary(Point::new(k as f64 * 1.0e5, 0.0)));
        }
        // One genuinely close pair.
        trajs.push(Trajectory::stationary(Point::new(3.0, 0.0)));
        let trace = generate_trace(&trajs, 5.0, ContactGenConfig::default());
        assert_eq!(trace.contacts.len(), 1);
        let c = trace.contacts[0];
        assert_eq!(c.pair, NodePair::new(NodeId(0), NodeId(6)));
    }

    /// The stepper emits per-step ups/downs consistent with the trace, and
    /// finalizes exactly once.
    #[test]
    fn stepper_streams_the_same_contacts() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let b = Trajectory::new(vec![
            (0.0, Point::new(-100.0, 0.0)),
            (40.0, Point::new(100.0, 0.0)),
        ]);
        let trajs = [a, b];
        let trace = generate_trace(&trajs, 60.0, ContactGenConfig::default());

        let mut stepper = ContactStepper::new(2, 60.0, ContactGenConfig::default());
        let mut downs = Vec::new();
        let mut ups = Vec::new();
        let mut n_ups = 0;
        while let Some(t) = stepper.next_time() {
            let processed = stepper.step(&trajs, &mut downs, &mut ups).unwrap();
            assert_eq!(processed, t);
            n_ups += ups.len();
            ups.clear();
        }
        assert!(stepper.next_time().is_none());
        assert!(stepper.step(&trajs, &mut downs, &mut ups).is_none());
        assert_eq!(downs.len(), trace.contacts.len());
        assert_eq!(n_ups, trace.contacts.len());
        assert_eq!(downs, trace.contacts);
    }

    /// Band partition ownership: for any band count, the union of the bands'
    /// candidates equals the brute-force in-range pair set — no pair missed,
    /// none owned by two bands (in a world small enough not to wrap the grid
    /// table).
    #[test]
    fn band_scan_owns_every_pair_exactly_once() {
        // A lattice spread across many grid rows, with pairs deliberately
        // straddling row boundaries (cell size == range == 10).
        let mut trajs = Vec::new();
        for r in 0..7 {
            for c in 0..8 {
                trajs.push(Trajectory::stationary(Point::new(
                    c as f64 * 6.0,
                    r as f64 * 9.5,
                )));
            }
        }
        let cfg = ContactGenConfig::default();
        let range_sq = cfg.range * cfg.range;

        let mut brute: Vec<NodePair> = Vec::new();
        for i in 0..trajs.len() {
            for j in i + 1..trajs.len() {
                let (pi, pj) = (trajs[i].points()[0].1, trajs[j].points()[0].1);
                if pi.dist_sq(pj) <= range_sq {
                    brute.push(NodePair::new(NodeId(i as u32), NodeId(j as u32)));
                }
            }
        }
        brute.sort_unstable();
        assert!(brute.len() > 20, "lattice should be well connected");

        for n_bands in [1usize, 2, 3, 5, 8] {
            let mut stepper = ContactStepper::new(trajs.len(), 10.0, cfg);
            assert_eq!(stepper.prepare_step(&trajs), Some(true));
            let mut union = Vec::new();
            for band in 0..n_bands {
                stepper.scan_band(band, n_bands, &mut union);
            }
            let raw_len = union.len();
            union.sort_unstable();
            union.dedup();
            assert_eq!(
                raw_len,
                union.len(),
                "{n_bands} bands produced duplicate candidates"
            );
            assert_eq!(union, brute, "{n_bands} bands missed or invented pairs");
        }
    }

    /// The prepare/scan/commit decomposition reproduces the sequential
    /// stepper's downs/ups streams bit for bit, including the horizon
    /// close-out.
    #[test]
    fn phased_step_matches_sequential_step() {
        let mut trajs = Vec::new();
        for k in 0..8 {
            trajs.push(Trajectory::new(vec![
                (0.0, Point::new(k as f64 * 7.0, 0.0)),
                (30.0, Point::new((7 - k) as f64 * 7.0, 12.0)),
            ]));
        }
        let cfg = ContactGenConfig::default();

        let mut seq = ContactStepper::new(trajs.len(), 30.0, cfg);
        let mut seq_downs = Vec::new();
        let mut seq_ups = Vec::new();
        let mut phased = ContactStepper::new(trajs.len(), 30.0, cfg);
        let mut ph_downs = Vec::new();
        let mut ph_ups = Vec::new();
        let mut cands = Vec::new();

        loop {
            let a = seq.step(&trajs, &mut seq_downs, &mut seq_ups);
            let scan = phased.prepare_step(&trajs);
            cands.clear();
            if scan == Some(true) {
                for band in 0..3 {
                    phased.scan_band(band, 3, &mut cands);
                }
            }
            let b = if scan.is_some() {
                phased.commit_step(&mut cands, &mut ph_downs, &mut ph_ups)
            } else {
                None
            };
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(seq_downs, ph_downs);
        assert_eq!(seq_ups, ph_ups);
        assert!(!seq_downs.is_empty());
    }
}
