//! Contact-trace generation from trajectories.
//!
//! Positions are sampled every `dt` seconds; nodes within `range` metres are
//! in contact. A uniform spatial hash grid with cell size `range` reduces the
//! per-step pair test from O(n²) to O(n) for the sparse densities of
//! vehicular scenarios. The resulting up/down intervals become a
//! [`ContactTrace`] the protocol engine replays.

use crate::trajectory::{Trajectory, TrajectoryCursor};
use dtn_sim::{Contact, ContactTrace, NodeId, NodePair};
use std::collections::HashMap;

/// Contact-detection parameters.
#[derive(Clone, Copy, Debug)]
pub struct ContactGenConfig {
    /// Radio range in metres (paper: 10).
    pub range: f64,
    /// Sampling step in seconds. The ONE simulator uses 0.1 s; with the
    /// paper's max speed (13.9 m/s) a 0.2 s step bounds the worst-case
    /// detection error at ≈ 5.6 m of relative motion.
    pub dt: f64,
}

impl Default for ContactGenConfig {
    fn default() -> Self {
        ContactGenConfig {
            range: 10.0,
            dt: 0.2,
        }
    }
}

/// Generates the contact trace of `trajs` over `[0, duration)`.
///
/// # Panics
/// Panics if `range` or `dt` is not positive.
pub fn generate_trace(trajs: &[Trajectory], duration: f64, cfg: ContactGenConfig) -> ContactTrace {
    assert!(cfg.range > 0.0 && cfg.dt > 0.0);
    let n = trajs.len();
    let mut cursors: Vec<TrajectoryCursor<'_>> = trajs.iter().map(TrajectoryCursor::new).collect();
    let cell = cfg.range;
    let range_sq = cfg.range * cfg.range;

    // Open contacts: pair -> (start_time, last_seen_step).
    let mut open: HashMap<NodePair, (f64, u64)> = HashMap::new();
    let mut contacts: Vec<Contact> = Vec::new();
    // Grid storage reused across steps.
    let mut grid: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    let mut positions = vec![crate::geometry::Point::default(); n];

    let steps = (duration / cfg.dt).ceil() as u64;
    for step in 0..steps {
        let t = step as f64 * cfg.dt;
        for (i, c) in cursors.iter_mut().enumerate() {
            positions[i] = c.position_at(t);
        }
        for v in grid.values_mut() {
            v.clear();
        }
        for (i, p) in positions.iter().enumerate() {
            let key = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
            grid.entry(key).or_default().push(i as u32);
        }
        for (i, p) in positions.iter().enumerate() {
            let cx = (p.x / cell).floor() as i64;
            let cy = (p.y / cell).floor() as i64;
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in bucket {
                        if (j as usize) <= i {
                            continue;
                        }
                        if p.dist_sq(positions[j as usize]) <= range_sq {
                            let pair = NodePair::new(NodeId(i as u32), NodeId(j));
                            open.entry(pair).or_insert((t, step)).1 = step;
                        }
                    }
                }
            }
        }
        // Close contacts not seen this step.
        open.retain(|pair, (start, last)| {
            if *last != step {
                contacts.push(Contact {
                    pair: *pair,
                    start: dtn_sim::SimTime::secs(*start),
                    end: dtn_sim::SimTime::secs(t),
                });
                false
            } else {
                true
            }
        });
    }
    // Close everything still open at the horizon.
    for (pair, (start, _)) in open {
        contacts.push(Contact {
            pair,
            start: dtn_sim::SimTime::secs(start),
            end: dtn_sim::SimTime::secs(duration),
        });
    }
    ContactTrace::new(n as u32, duration, contacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    /// Two nodes crossing: A fixed at origin, B drives past along x.
    #[test]
    fn crossing_nodes_make_one_contact() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let b = Trajectory::new(vec![
            (0.0, Point::new(-100.0, 0.0)),
            (40.0, Point::new(100.0, 0.0)), // 5 m/s
        ]);
        let trace = generate_trace(
            &[a, b],
            60.0,
            ContactGenConfig {
                range: 10.0,
                dt: 0.2,
            },
        );
        assert_eq!(trace.contacts.len(), 1);
        let c = trace.contacts[0];
        // In range for |x| <= 10 → 20 m at 5 m/s = 4 s around t = 20.
        assert!(
            (c.duration() - 4.0).abs() <= 0.5,
            "duration {}",
            c.duration()
        );
        assert!((c.start.as_secs() - 18.0).abs() <= 0.5);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn far_nodes_never_meet() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let b = Trajectory::stationary(Point::new(1000.0, 0.0));
        let trace = generate_trace(&[a, b], 100.0, ContactGenConfig::default());
        assert!(trace.contacts.is_empty());
    }

    #[test]
    fn contact_open_at_horizon_is_closed() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let b = Trajectory::stationary(Point::new(5.0, 0.0));
        let trace = generate_trace(&[a, b], 50.0, ContactGenConfig::default());
        assert_eq!(trace.contacts.len(), 1);
        assert_eq!(trace.contacts[0].start.as_secs(), 0.0);
        assert_eq!(trace.contacts[0].end.as_secs(), 50.0);
        assert!(trace.validate().is_ok());
    }

    /// Repeated approach/retreat produces one contact per approach.
    #[test]
    fn oscillating_node_produces_multiple_contacts() {
        let a = Trajectory::stationary(Point::new(0.0, 0.0));
        let mut pts = vec![(0.0, Point::new(50.0, 0.0))];
        let mut t = 0.0;
        for _ in 0..3 {
            t += 10.0;
            pts.push((t, Point::new(0.0, 0.0)));
            t += 10.0;
            pts.push((t, Point::new(50.0, 0.0)));
        }
        let b = Trajectory::new(pts);
        let trace = generate_trace(&[a, b], t + 5.0, ContactGenConfig::default());
        assert_eq!(trace.contacts.len(), 3);
        assert!(trace.validate().is_ok());
    }

    /// The grid must not miss pairs straddling cell boundaries.
    #[test]
    fn grid_boundary_pairs_detected() {
        // Exactly range apart, straddling a cell boundary.
        let a = Trajectory::stationary(Point::new(9.99, 0.0));
        let b = Trajectory::stationary(Point::new(10.01, 0.0));
        let c = Trajectory::stationary(Point::new(19.0, 0.0));
        let trace = generate_trace(&[a, b, c], 10.0, ContactGenConfig::default());
        // a-b touch; b-c touch; a-c are 9.01 apart → touch too.
        assert_eq!(trace.contacts.len(), 3);
    }

    /// Negative coordinates hash correctly (floor division).
    #[test]
    fn negative_coordinates() {
        let a = Trajectory::stationary(Point::new(-3.0, -3.0));
        let b = Trajectory::stationary(Point::new(3.0, 3.0));
        let trace = generate_trace(&[a, b], 5.0, ContactGenConfig::default());
        assert_eq!(trace.contacts.len(), 1);
    }
}
