//! Regression guard: a steady-state contact-detection step performs zero
//! heap allocations. The old per-step `HashMap<(i64, i64), Vec<u32>>` grid
//! allocated a bucket for every cell newly entered; the flat counting-sort
//! grid must not. A counting global allocator makes the assertion exact —
//! this file holds exactly one test so nothing else allocates concurrently.

use dtn_mobility::contacts::{ContactGenConfig, ContactStepper};
use dtn_mobility::geometry::Point;
use dtn_mobility::trajectory::Trajectory;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_allocates_nothing() {
    // A contact process with churn: A parked at the origin in permanent
    // contact with C, while B oscillates in and out of range on a fixed
    // bounding box (so the grid dimensions never change mid-measurement).
    let a = Trajectory::stationary(Point::new(0.0, 0.0));
    let c = Trajectory::stationary(Point::new(5.0, 0.0));
    let mut pts = vec![(0.0, Point::new(50.0, 0.0))];
    let mut t = 0.0;
    for _ in 0..50 {
        t += 10.0;
        pts.push((t, Point::new(0.0, 0.0)));
        t += 10.0;
        pts.push((t, Point::new(50.0, 0.0)));
    }
    let b = Trajectory::new(pts);
    let trajs = [a, b, c];

    let mut stepper = ContactStepper::new(3, t, ContactGenConfig::default());
    let mut downs = Vec::with_capacity(16);
    let mut ups = Vec::with_capacity(16);

    // Warm up across a full oscillation cycle (20 s = 100 steps at dt 0.2)
    // so every buffer, the open-contact map, and the grid reach their
    // steady-state footprint, including at least one contact up and down.
    for _ in 0..120 {
        downs.clear();
        ups.clear();
        stepper.step(&trajs, &mut downs, &mut ups).unwrap();
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..300 {
        downs.clear();
        ups.clear();
        stepper.step(&trajs, &mut downs, &mut ups).unwrap();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state contact steps must not allocate"
    );
}
