//! Property-based tests of the mobility substrate: trajectory sampling and,
//! crucially, that the spatial-grid contact detector agrees with a
//! brute-force O(n²) reference.

use dtn_mobility::contacts::{generate_trace, ContactGenConfig};
use dtn_mobility::geometry::Point;
use dtn_mobility::trajectory::{Trajectory, TrajectoryCursor};
use dtn_sim::{Contact, ContactTrace, NodeId, NodePair};
use proptest::prelude::*;

/// Strategy: a piecewise-linear trajectory inside a box.
fn trajectory_strategy() -> impl Strategy<Value = Trajectory> {
    proptest::collection::vec((0.1f64..30.0, -60.0f64..60.0, -60.0f64..60.0), 1..12).prop_map(
        |segs| {
            let mut t = 0.0;
            let mut pts = vec![(0.0, Point::new(segs[0].1, segs[0].2))];
            for (dt, x, y) in segs {
                t += dt;
                pts.push((t, Point::new(x, y)));
            }
            Trajectory::new(pts)
        },
    )
}

/// Brute-force contact detection: sample every pair at every step.
fn brute_force(trajs: &[Trajectory], duration: f64, cfg: ContactGenConfig) -> ContactTrace {
    let n = trajs.len();
    let steps = (duration / cfg.dt).ceil() as u64;
    let mut open: std::collections::HashMap<(usize, usize), f64> = Default::default();
    let mut contacts = Vec::new();
    for step in 0..steps {
        let t = step as f64 * cfg.dt;
        let pos: Vec<Point> = trajs.iter().map(|tr| tr.position_at(t)).collect();
        for i in 0..n {
            for j in i + 1..n {
                let within = pos[i].dist_sq(pos[j]) <= cfg.range * cfg.range;
                match (within, open.contains_key(&(i, j))) {
                    (true, false) => {
                        open.insert((i, j), t);
                    }
                    (false, true) => {
                        let start = open.remove(&(i, j)).unwrap();
                        contacts.push(Contact {
                            pair: NodePair::new(NodeId(i as u32), NodeId(j as u32)),
                            start: dtn_sim::SimTime::secs(start),
                            end: dtn_sim::SimTime::secs(t),
                        });
                    }
                    _ => {}
                }
            }
        }
    }
    for ((i, j), start) in open {
        contacts.push(Contact {
            pair: NodePair::new(NodeId(i as u32), NodeId(j as u32)),
            start: dtn_sim::SimTime::secs(start),
            end: dtn_sim::SimTime::secs(duration),
        });
    }
    ContactTrace::new(n as u32, duration, contacts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The grid detector and the brute-force reference produce identical
    /// contact traces (same pairs, same intervals).
    #[test]
    fn grid_matches_brute_force(
        trajs in proptest::collection::vec(trajectory_strategy(), 2..7),
    ) {
        let duration = 40.0;
        let cfg = ContactGenConfig { range: 10.0, dt: 0.5 };
        let fast = generate_trace(&trajs, duration, cfg);
        let slow = brute_force(&trajs, duration, cfg);
        prop_assert_eq!(fast.contacts.len(), slow.contacts.len());
        let key = |c: &Contact| (c.pair, c.start.as_secs().to_bits(), c.end.as_secs().to_bits());
        let mut a: Vec<_> = fast.contacts.iter().map(key).collect();
        let mut b: Vec<_> = slow.contacts.iter().map(key).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Cursor sampling equals random-access sampling at any monotone
    /// sequence of times.
    #[test]
    fn cursor_equals_random_access(
        traj in trajectory_strategy(),
        mut times in proptest::collection::vec(0.0f64..400.0, 1..64),
    ) {
        times.sort_by(f64::total_cmp);
        let mut cursor = TrajectoryCursor::new(&traj);
        for t in times {
            let a = cursor.position_at(t);
            let b = traj.position_at(t);
            prop_assert!(a.dist(b) < 1e-9, "cursor {a:?} vs direct {b:?} at t={t}");
        }
    }

    /// Positions are always interpolations: within the bounding box of the
    /// trajectory's breakpoints.
    #[test]
    fn positions_stay_in_hull_box(traj in trajectory_strategy(), t in -10.0f64..500.0) {
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, p) in traj.points() {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let p = traj.position_at(t);
        prop_assert!(p.x >= min_x - 1e-9 && p.x <= max_x + 1e-9);
        prop_assert!(p.y >= min_y - 1e-9 && p.y <= max_y + 1e-9);
    }

    /// The sharded contact source is bit-identical to the single-threaded
    /// stream for arbitrary trajectories, thread counts and window sizes —
    /// the equivalence that makes a run's thread count cache-key-invisible.
    #[test]
    fn sharded_source_matches_sequential_stream(
        trajs in proptest::collection::vec(trajectory_strategy(), 2..10),
        threads in 2usize..9,
        window in 5.0f64..60.0,
    ) {
        use dtn_mobility::{MobilityContactSource, ShardedContactSource};
        use dtn_sim::{ContactEvent, ContactSource};
        let duration = 40.0;
        let cfg = ContactGenConfig { range: 10.0, dt: 0.5 };
        let drain = |src: &mut dyn ContactSource, window: f64| {
            let mut out: Vec<ContactEvent> = Vec::new();
            let mut until = 0.0;
            while until < src.duration() {
                until = (until + window).min(src.duration());
                src.next_window(until, &mut out);
            }
            out
        };
        let mut seq = MobilityContactSource::new(trajs.clone(), duration, cfg);
        let reference = drain(&mut seq, duration);
        let mut sharded = ShardedContactSource::new(trajs, duration, cfg, threads);
        prop_assert_eq!(drain(&mut sharded, window), reference);
    }

    /// Generated traces always validate, whatever the trajectories.
    #[test]
    fn generated_traces_validate(
        trajs in proptest::collection::vec(trajectory_strategy(), 2..8),
        range in 1.0f64..40.0,
    ) {
        let cfg = ContactGenConfig { range, dt: 0.5 };
        let trace = generate_trace(&trajs, 30.0, cfg);
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
    }
}
