//! Messages and message workloads.

use crate::ids::{MessageId, NodeId};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An application message travelling through the DTN.
///
/// The struct is small and `Copy`-cheap on purpose: buffers store it by value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Message {
    /// Dense message identifier.
    pub id: MessageId,
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Payload size in bytes (what occupies buffer space and link time).
    pub size: u32,
    /// Creation time.
    pub created: SimTime,
    /// Time-to-live in seconds from `created`.
    pub ttl: f64,
}

impl Message {
    /// The absolute time at which the message expires.
    #[inline]
    pub fn expiry(&self) -> SimTime {
        self.created + self.ttl
    }

    /// Whether the message has expired at `now`.
    #[inline]
    pub fn expired(&self, now: SimTime) -> bool {
        now > self.expiry()
    }

    /// Remaining lifetime at `now`, clamped at zero.
    #[inline]
    pub fn residual_ttl(&self, now: SimTime) -> f64 {
        (self.expiry() - now).max(0.0)
    }
}

/// The immutable message workload in structure-of-arrays form, indexed by
/// [`MessageId`].
///
/// The engine holds one arena per run instead of a `Vec<MessageSpec>`: a
/// message's static fields (endpoints, size, timing) are written once at
/// setup and then only read, so parallel columns keep the hot lookups —
/// destination checks, size for link-time accounting — on dense cache lines
/// as the workload grows with the node count.
#[derive(Clone, Debug, Default)]
pub struct MessageArena {
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    size: Vec<u32>,
    created: Vec<SimTime>,
    ttl: Vec<f64>,
}

impl MessageArena {
    /// Builds the arena from a workload; `specs[i]` becomes `MessageId(i)`,
    /// with `created` equal to the scheduled creation time.
    pub fn from_specs(specs: &[MessageSpec]) -> Self {
        let mut arena = MessageArena {
            src: Vec::with_capacity(specs.len()),
            dst: Vec::with_capacity(specs.len()),
            size: Vec::with_capacity(specs.len()),
            created: Vec::with_capacity(specs.len()),
            ttl: Vec::with_capacity(specs.len()),
        };
        for spec in specs {
            arena.src.push(spec.src);
            arena.dst.push(spec.dst);
            arena.size.push(spec.size);
            arena.created.push(spec.create_at);
            arena.ttl.push(spec.ttl);
        }
        arena
    }

    /// Number of messages in the workload.
    #[inline]
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the workload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Assembles the full [`Message`] value for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn message(&self, id: MessageId) -> Message {
        let k = id.0 as usize;
        Message {
            id,
            src: self.src[k],
            dst: self.dst[k],
            size: self.size[k],
            created: self.created[k],
            ttl: self.ttl[k],
        }
    }
}

/// A message scheduled for creation: the workload element fed to the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageSpec {
    /// When the source generates the message.
    pub create_at: SimTime,
    /// Originating node.
    pub src: NodeId,
    /// Destination node, distinct from `src`.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub size: u32,
    /// Time-to-live in seconds.
    pub ttl: f64,
}

/// Configuration of the stock Poisson-like traffic generator.
///
/// Mirrors the ONE simulator's `MessageEventGenerator`: one new message per
/// uniformly random interval in `[interval_min, interval_max]`, with a
/// uniformly random distinct source/destination pair.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Minimum inter-creation interval in seconds.
    pub interval_min: f64,
    /// Maximum inter-creation interval in seconds.
    pub interval_max: f64,
    /// Message payload size in bytes.
    pub msg_size: u32,
    /// Time-to-live in seconds.
    pub ttl: f64,
    /// First creation happens at or after this time.
    pub start: f64,
    /// No creations at or after this time.
    pub end: f64,
}

impl TrafficConfig {
    /// The ICPP'11 paper's settings: 25 KB messages, 20 min TTL, one message
    /// every 25–35 s over a 10 000 s simulation.
    pub fn paper(sim_duration: f64) -> Self {
        TrafficConfig {
            interval_min: 25.0,
            interval_max: 35.0,
            msg_size: 25 * 1024,
            ttl: 20.0 * 60.0,
            start: 0.0,
            end: sim_duration,
        }
    }

    /// Generates the deterministic workload for `n_nodes` nodes from `seed`.
    ///
    /// # Panics
    /// Panics if fewer than two nodes are available or the interval bounds are
    /// not sane.
    pub fn generate(&self, n_nodes: u32, seed: u64) -> Vec<MessageSpec> {
        assert!(n_nodes >= 2, "traffic needs at least two nodes");
        assert!(
            self.interval_min > 0.0 && self.interval_max >= self.interval_min,
            "bad traffic intervals"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7261_6666_6963_u64);
        let mut out = Vec::new();
        let mut t = self.start + rng.gen_range(self.interval_min..=self.interval_max);
        while t < self.end {
            let src = NodeId(rng.gen_range(0..n_nodes));
            let mut dst = NodeId(rng.gen_range(0..n_nodes));
            while dst == src {
                dst = NodeId(rng.gen_range(0..n_nodes));
            }
            out.push(MessageSpec {
                create_at: SimTime::secs(t),
                src,
                dst,
                size: self.msg_size,
                ttl: self.ttl,
            });
            t += rng.gen_range(self.interval_min..=self.interval_max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_and_residual() {
        let m = Message {
            id: MessageId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 100,
            created: SimTime::secs(10.0),
            ttl: 60.0,
        };
        assert_eq!(m.expiry().as_secs(), 70.0);
        assert!(!m.expired(SimTime::secs(70.0)));
        assert!(m.expired(SimTime::secs(70.1)));
        assert_eq!(m.residual_ttl(SimTime::secs(40.0)), 30.0);
        assert_eq!(m.residual_ttl(SimTime::secs(90.0)), 0.0);
    }

    #[test]
    fn traffic_is_deterministic_per_seed() {
        let cfg = TrafficConfig::paper(10_000.0);
        let w1 = cfg.generate(40, 7);
        let w2 = cfg.generate(40, 7);
        let w3 = cfg.generate(40, 8);
        assert_eq!(w1, w2);
        assert_ne!(w1, w3);
    }

    #[test]
    fn traffic_respects_bounds() {
        let cfg = TrafficConfig::paper(10_000.0);
        let w = cfg.generate(40, 42);
        // ~10000/30 messages expected.
        assert!(w.len() > 250 && w.len() < 420, "got {}", w.len());
        let mut prev = 0.0;
        for spec in &w {
            let t = spec.create_at.as_secs();
            assert!(t < 10_000.0);
            let gap = t - prev;
            assert!((25.0 - 1e-9..=35.0 + 1e-9).contains(&gap), "gap {gap}");
            prev = t;
            assert_ne!(spec.src, spec.dst);
            assert!(spec.src.0 < 40 && spec.dst.0 < 40);
            assert_eq!(spec.size, 25 * 1024);
            assert_eq!(spec.ttl, 1200.0);
        }
    }

    #[test]
    #[should_panic]
    fn traffic_needs_two_nodes() {
        TrafficConfig::paper(100.0).generate(1, 0);
    }

    /// The arena reassembles exactly the message the engine used to build
    /// from the spec list (id = index, created = scheduled creation time).
    #[test]
    fn arena_round_trips_specs() {
        let specs = TrafficConfig::paper(500.0).generate(6, 3);
        let arena = MessageArena::from_specs(&specs);
        assert_eq!(arena.len(), specs.len());
        assert!(!arena.is_empty());
        for (i, spec) in specs.iter().enumerate() {
            let m = arena.message(MessageId(i as u32));
            assert_eq!(m.id, MessageId(i as u32));
            assert_eq!(m.src, spec.src);
            assert_eq!(m.dst, spec.dst);
            assert_eq!(m.size, spec.size);
            assert_eq!(m.created, spec.create_at);
            assert_eq!(m.ttl, spec.ttl);
        }
        assert!(MessageArena::default().is_empty());
    }
}
