//! Contact traces: the when-and-who of node encounters.
//!
//! A [`ContactTrace`] is the interface between the mobility substrate and the
//! protocol engine. Mobility models (or real-world datasets) are reduced to a
//! time-sorted list of contact intervals; the engine then replays the trace
//! against any routing protocol. Precomputing the trace pays the geometric
//! cost once per scenario and makes protocol comparisons run on *identical*
//! contact processes.

use crate::ids::{NodeId, NodePair};
use crate::time::SimTime;
use std::fmt::Write as _;

/// A single contact: nodes `pair.a` and `pair.b` are within radio range from
/// `start` (inclusive) to `end` (exclusive).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Contact {
    /// The two nodes in contact (normalised pair).
    pub pair: NodePair,
    /// Contact start time.
    pub start: SimTime,
    /// Contact end time (strictly after `start`).
    pub end: SimTime,
}

impl Contact {
    /// Convenience constructor from raw ids and seconds.
    ///
    /// # Panics
    /// Panics if `start >= end` (a contact must have positive duration).
    pub fn new(a: u32, b: u32, start: f64, end: f64) -> Self {
        assert!(
            end > start,
            "contact ({a}, {b}) must have positive duration: start {start} >= end {end}"
        );
        Contact {
            pair: NodePair::new(NodeId(a), NodeId(b)),
            start: SimTime::secs(start),
            end: SimTime::secs(end),
        }
    }

    /// Contact duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Validation problems [`ContactTrace::validate`] can detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A contact references a node ≥ `n_nodes`.
    NodeOutOfRange {
        /// Index of the offending contact.
        contact_idx: usize,
    },
    /// Contacts are not sorted by start time.
    Unsorted {
        /// Index of the offending contact.
        contact_idx: usize,
    },
    /// A contact has `end ≤ start`.
    EmptyInterval {
        /// Index of the offending contact.
        contact_idx: usize,
    },
    /// Two contacts of the same pair overlap in time.
    OverlappingPair {
        /// Index of the offending contact.
        contact_idx: usize,
    },
    /// A contact extends past the trace duration.
    PastEnd {
        /// Index of the offending contact.
        contact_idx: usize,
    },
}

impl TraceError {
    /// Index (into [`ContactTrace::contacts`]) of the offending contact.
    pub fn contact_idx(&self) -> usize {
        match *self {
            TraceError::NodeOutOfRange { contact_idx }
            | TraceError::Unsorted { contact_idx }
            | TraceError::EmptyInterval { contact_idx }
            | TraceError::OverlappingPair { contact_idx }
            | TraceError::PastEnd { contact_idx } => contact_idx,
        }
    }
}

/// Aggregate statistics about a trace, for sanity checks and reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Number of contacts.
    pub contacts: usize,
    /// Mean contact duration in seconds (0 if no contacts).
    pub mean_duration: f64,
    /// Mean number of contacts per node.
    pub contacts_per_node: f64,
    /// Mean inter-contact time across pairs that met at least twice.
    pub mean_intercontact: f64,
    /// Number of distinct pairs that ever met.
    pub distinct_pairs: usize,
}

/// A time-sorted list of contacts over `n_nodes` nodes for `duration` seconds.
#[derive(Clone, Debug, Default)]
pub struct ContactTrace {
    /// Number of nodes in the scenario.
    pub n_nodes: u32,
    /// Trace horizon in seconds.
    pub duration: f64,
    /// Contacts sorted by start time.
    pub contacts: Vec<Contact>,
}

impl ContactTrace {
    /// Creates a trace, sorting contacts by `(start, pair)`.
    pub fn new(n_nodes: u32, duration: f64, mut contacts: Vec<Contact>) -> Self {
        contacts.sort_by(|x, y| x.start.cmp(&y.start).then(x.pair.cmp(&y.pair)));
        ContactTrace {
            n_nodes,
            duration,
            contacts,
        }
    }

    /// Checks the structural invariants the engine relies on.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut last_start = SimTime::ZERO;
        // Last end time seen per pair, to detect overlaps.
        let mut last_end: std::collections::HashMap<NodePair, SimTime> =
            std::collections::HashMap::new();
        for (i, c) in self.contacts.iter().enumerate() {
            if c.pair.b.0 >= self.n_nodes {
                return Err(TraceError::NodeOutOfRange { contact_idx: i });
            }
            if c.end <= c.start {
                return Err(TraceError::EmptyInterval { contact_idx: i });
            }
            if c.start < last_start {
                return Err(TraceError::Unsorted { contact_idx: i });
            }
            if c.end.as_secs() > self.duration + 1e-9 {
                return Err(TraceError::PastEnd { contact_idx: i });
            }
            if let Some(&prev_end) = last_end.get(&c.pair) {
                if c.start < prev_end {
                    return Err(TraceError::OverlappingPair { contact_idx: i });
                }
            }
            last_end.insert(c.pair, c.end);
            last_start = c.start;
        }
        Ok(())
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let contacts = self.contacts.len();
        if contacts == 0 {
            return TraceStats::default();
        }
        let total_dur: f64 = self.contacts.iter().map(|c| c.duration()).sum();
        let mut per_pair: std::collections::HashMap<NodePair, Vec<f64>> =
            std::collections::HashMap::new();
        for c in &self.contacts {
            per_pair.entry(c.pair).or_default().push(c.start.as_secs());
        }
        let mut gap_sum = 0.0;
        let mut gap_cnt = 0usize;
        for starts in per_pair.values() {
            for w in starts.windows(2) {
                gap_sum += w[1] - w[0];
                gap_cnt += 1;
            }
        }
        TraceStats {
            contacts,
            mean_duration: total_dur / contacts as f64,
            contacts_per_node: 2.0 * contacts as f64 / self.n_nodes.max(1) as f64,
            mean_intercontact: if gap_cnt > 0 {
                gap_sum / gap_cnt as f64
            } else {
                0.0
            },
            distinct_pairs: per_pair.len(),
        }
    }

    /// Serialises to a simple line format: header then `a b start end` rows.
    ///
    /// The format is plain text so traces can be archived, diffed and
    /// replayed (`examples/trace_replay.rs`) without extra dependencies.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.contacts.len() * 32 + 64);
        let _ = writeln!(s, "# cen-dtn contact trace v1");
        let _ = writeln!(s, "nodes {} duration {}", self.n_nodes, self.duration);
        for c in &self.contacts {
            let _ = writeln!(
                s,
                "{} {} {} {}",
                c.pair.a.0,
                c.pair.b.0,
                c.start.as_secs(),
                c.end.as_secs()
            );
        }
        s
    }

    /// Parses the format produced by [`ContactTrace::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut n_nodes = None;
        let mut duration = None;
        let mut contacts = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.first() == Some(&"nodes") {
                if toks.len() != 4 || toks[2] != "duration" {
                    return Err(format!("line {}: bad header", lineno + 1));
                }
                n_nodes = Some(toks[1].parse::<u32>().map_err(|e| e.to_string())?);
                duration = Some(toks[3].parse::<f64>().map_err(|e| e.to_string())?);
                continue;
            }
            if toks.len() != 4 {
                return Err(format!("line {}: expected 4 fields", lineno + 1));
            }
            let a: u32 = toks[0]
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?;
            let b: u32 = toks[1]
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?;
            let s: f64 = toks[2]
                .parse()
                .map_err(|e: std::num::ParseFloatError| e.to_string())?;
            let e: f64 = toks[3]
                .parse()
                .map_err(|e: std::num::ParseFloatError| e.to_string())?;
            if e <= s {
                return Err(format!("line {}: empty interval", lineno + 1));
            }
            contacts.push(Contact::new(a, b, s, e));
        }
        match (n_nodes, duration) {
            (Some(n), Some(d)) => Ok(ContactTrace::new(n, d, contacts)),
            _ => Err("missing header line".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContactTrace {
        ContactTrace::new(
            4,
            100.0,
            vec![
                Contact::new(0, 1, 10.0, 20.0),
                Contact::new(2, 3, 5.0, 8.0),
                Contact::new(0, 1, 50.0, 60.0),
                Contact::new(1, 2, 30.0, 31.0),
            ],
        )
    }

    #[test]
    fn new_sorts_by_start() {
        let t = sample();
        let starts: Vec<f64> = t.contacts.iter().map(|c| c.start.as_secs()).collect();
        assert_eq!(starts, vec![5.0, 10.0, 30.0, 50.0]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_catches_out_of_range() {
        let t = ContactTrace::new(2, 100.0, vec![Contact::new(0, 5, 1.0, 2.0)]);
        assert_eq!(
            t.validate(),
            Err(TraceError::NodeOutOfRange { contact_idx: 0 })
        );
    }

    #[test]
    fn validate_catches_overlap() {
        let t = ContactTrace::new(
            2,
            100.0,
            vec![Contact::new(0, 1, 1.0, 10.0), Contact::new(0, 1, 5.0, 12.0)],
        );
        assert_eq!(
            t.validate(),
            Err(TraceError::OverlappingPair { contact_idx: 1 })
        );
    }

    #[test]
    fn validate_catches_past_end() {
        let t = ContactTrace::new(2, 10.0, vec![Contact::new(0, 1, 5.0, 15.0)]);
        assert_eq!(t.validate(), Err(TraceError::PastEnd { contact_idx: 0 }));
    }

    #[test]
    fn stats_compute_means() {
        let t = sample();
        let s = t.stats();
        assert_eq!(s.contacts, 4);
        assert_eq!(s.distinct_pairs, 3);
        assert!((s.mean_duration - (10.0 + 3.0 + 10.0 + 1.0) / 4.0).abs() < 1e-9);
        // Only pair (0,1) met twice: gap 40.
        assert!((s.mean_intercontact - 40.0).abs() < 1e-9);
        assert!((s.contacts_per_node - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stats_empty_trace() {
        let t = ContactTrace::new(4, 10.0, vec![]);
        let s = t.stats();
        assert_eq!(s.contacts, 0);
        assert_eq!(s.mean_duration, 0.0);
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let text = t.to_text();
        let t2 = ContactTrace::from_text(&text).unwrap();
        assert_eq!(t2.n_nodes, t.n_nodes);
        assert_eq!(t2.duration, t.duration);
        assert_eq!(t2.contacts, t.contacts);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(ContactTrace::from_text("nodes 2 duration").is_err());
        assert!(ContactTrace::from_text("nodes 2 duration 10\n0 1 5").is_err());
        assert!(ContactTrace::from_text("nodes 2 duration 10\n0 1 5 4").is_err());
        assert!(ContactTrace::from_text("0 1 5 6").is_err(), "no header");
    }

    #[test]
    #[should_panic]
    fn contact_rejects_empty_interval() {
        let _ = Contact::new(0, 1, 5.0, 5.0);
    }
}
