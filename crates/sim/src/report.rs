//! Post-run report helpers: delivery-progress curves and latency
//! distributions, in the spirit of the ONE simulator's report modules.
//!
//! These operate on the per-message delivery times collected in
//! [`SimStats::delivered_at`], so they cost nothing during the run.

use crate::stats::SimStats;

/// Cumulative deliveries sampled at fixed intervals: entry `k` is the number
/// of messages delivered by time `k * step`.
pub fn delivery_progress(stats: &SimStats, duration: f64, step: f64) -> Vec<u64> {
    assert!(step > 0.0 && duration >= 0.0);
    let buckets = (duration / step).ceil() as usize + 1;
    let mut out = vec![0u64; buckets];
    for t in stats.delivered_at.iter().flatten() {
        let idx = (t.as_secs() / step).ceil() as usize;
        if idx < buckets {
            out[idx] += 1;
        }
    }
    // Prefix-sum to make it cumulative.
    for i in 1..buckets {
        out[i] += out[i - 1];
    }
    out
}

/// Latency percentiles (p in `[0, 100]`) over delivered messages, from the
/// recorded per-message delivery times. Returns `None` when nothing was
/// delivered or creation times are unavailable to the caller.
///
/// Latencies must be provided by the caller (delivery time − creation time);
/// this helper just ranks them.
pub fn percentile(mut latencies: Vec<f64>, p: f64) -> Option<f64> {
    latencies.sort_by(f64::total_cmp);
    percentile_sorted(&latencies, p)
}

/// [`percentile`] over an already-sorted (ascending) slice — the single
/// nearest-rank implementation every percentile in the crate uses (the
/// latency-histogram probe included), so the rank rule can never diverge
/// between consumers.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p));
    if sorted.is_empty() {
        return None;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// Extracts per-message latencies given the workload's creation times.
pub fn latencies(stats: &SimStats, created_at: &[f64]) -> Vec<f64> {
    stats
        .delivered_at
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| t.as_secs() - created_at[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MessageId;
    use crate::time::SimTime;

    fn stats_with_deliveries(times: &[Option<f64>]) -> SimStats {
        let mut s = SimStats::new(times.len());
        for (i, t) in times.iter().enumerate() {
            if let Some(t) = t {
                s.record_arrival(MessageId(i as u32), SimTime::ZERO, SimTime::secs(*t), 1);
            }
        }
        s
    }

    #[test]
    fn progress_is_cumulative_and_monotone() {
        let s = stats_with_deliveries(&[Some(10.0), Some(25.0), None, Some(95.0)]);
        let prog = delivery_progress(&s, 100.0, 10.0);
        assert_eq!(prog.len(), 11);
        assert_eq!(prog[0], 0);
        assert_eq!(prog[1], 1, "delivery at exactly 10 lands in bucket 1");
        assert_eq!(prog[3], 2);
        assert_eq!(*prog.last().unwrap(), 3);
        assert!(prog.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn percentiles_rank_correctly() {
        let lats = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(lats.clone(), 0.0), Some(1.0));
        assert_eq!(percentile(lats.clone(), 50.0), Some(3.0));
        assert_eq!(percentile(lats.clone(), 100.0), Some(5.0));
        assert_eq!(percentile(vec![], 50.0), None);
    }

    #[test]
    fn latencies_subtract_creation_times() {
        let s = stats_with_deliveries(&[Some(10.0), None, Some(30.0)]);
        let lats = latencies(&s, &[2.0, 0.0, 25.0]);
        assert_eq!(lats, vec![8.0, 5.0]);
    }
}
