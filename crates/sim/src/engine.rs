//! The discrete-event protocol engine.
//!
//! A [`Simulation`] replays a contact process against a routing protocol:
//! contacts come up and down, routers exchange control state and propose
//! transfers, the engine models link bandwidth, buffer occupancy, TTL expiry
//! and transfer aborts, and a [`SimStats`] is produced at the end.
//!
//! Contacts are *pulled*, not preloaded: the engine draws windows of
//! up/down events from a [`ContactSource`] as simulated time advances
//! ([`Simulation::from_source`]), so the event queue holds only the near
//! future regardless of horizon or node count. [`Simulation::new`] wraps a
//! materialized [`ContactTrace`] in a [`TraceReplaySource`] — byte-for-byte
//! the same runs as the historic bulk loader, with a bounded queue.
//!
//! The engine is deterministic: all randomness lives in the trace/workload
//! generators and in router-private RNGs seeded from [`SimConfig::seed`].
//!
//! ## Observation
//!
//! The loop never mutates [`SimStats`] field-by-field: every observable
//! occurrence is emitted as a [`SimEvent`] and folded into the stats through
//! [`SimStats::apply`] — the same function any attached [`SimObserver`]
//! (time-series probes, latency histograms, event logs; see
//! [`crate::observe`]) sees the stream through. Observers receive events in
//! batches from one reused scratch buffer ([`Simulation::add_observer`]); with no
//! observers attached the stream costs nothing beyond the inline fold, and
//! because probe sampling is read-only, attaching observers can never change
//! a run's statistics.
//!
//! ## Hot-path layout
//!
//! Link state lives in a slab of `LinkSlot`s recycled across contacts, not
//! in a hash map: a contact gets a slot plus a globally unique *epoch*, and
//! events carry the slot index, so the per-transfer path never hashes. The
//! per-direction "already sent during this contact" set is an epoch-stamped
//! array indexed by the dense [`MessageId`] space (`stamps[m] == epoch` means
//! sent), so membership tests are O(1) and recycling a slot needs no clearing
//! — bumping the epoch invalidates every old stamp at once. Scratch buffers
//! (purge lists, TTL sweeps, per-node link snapshots) are reused across
//! callbacks, keeping the steady-state event loop allocation-free.

use crate::buffer::{Buffer, BufferEntry, DropReason};
use crate::event::{EventKind, EventQueue};
use crate::ids::{MessageId, NodeId, NodePair};
use crate::message::{Message, MessageArena, MessageSpec};
use crate::observe::{DrainMode, ObserverDrain, SimEvent, SimObserver};
use crate::router::{pair_mut, ContactCtx, NodeCtx, Router, SentSet, TransferAction, TransferPlan};
use crate::source::{ContactEvent, ContactSource, TraceReplaySource};
use crate::stats::SimStats;
use crate::time::SimTime;
use crate::trace::ContactTrace;

/// Static configuration of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Link bandwidth in bytes per second (paper: 2 Mbit/s = 250 000 B/s).
    pub bandwidth_bps: f64,
    /// Fixed per-transfer setup latency in seconds (0 in the paper's model).
    pub link_setup: f64,
    /// Buffer capacity per node in bytes (paper: 1 MB).
    pub buffer_capacity: u64,
    /// Interval between TTL sweeps in seconds.
    pub ttl_sweep: f64,
    /// Seed available to routers needing private randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper(0)
    }
}

impl SimConfig {
    /// The ICPP'11 settings: 2 Mbit/s links, 1 MB buffers.
    pub fn paper(seed: u64) -> Self {
        SimConfig {
            bandwidth_bps: 2_000_000.0 / 8.0,
            link_setup: 0.0,
            buffer_capacity: 1024 * 1024,
            ttl_sweep: 5.0,
            seed,
        }
    }
}

/// Direction index within a link: 0 = `pair.a → pair.b`, 1 = `pair.b → pair.a`.
#[inline]
fn dir_index(pair: NodePair, from: NodeId) -> usize {
    usize::from(from != pair.a)
}

/// Slab slot holding the state of one active contact. Slots are recycled;
/// the `epoch` distinguishes occupancies (see module docs).
struct LinkSlot {
    pair: NodePair,
    /// Epoch of the contact currently (or, when inactive, last) using this
    /// slot. Epochs are globally unique across the run.
    epoch: u32,
    active: bool,
    /// Message and action in flight per direction, if any.
    in_flight: [Option<(MessageId, TransferAction)>; 2],
    /// Epoch-stamped per-direction transfer log over the dense message-id
    /// space: `sent[d][m] == epoch` iff `m` was sent in direction `d` during
    /// the current contact. Never cleared — recycling bumps the epoch.
    sent: [Vec<u32>; 2],
}

/// Stamp value no real epoch ever takes: allocating the 2^32-th contact
/// epoch panics first (`checked_add` + `expect`, in every build profile).
const NO_EPOCH: u32 = u32::MAX;

/// Events accumulated before a batch is dispatched to observers. The batch
/// buffer is allocated once and reused (`clear`, never shrink), so observer
/// delivery performs no per-event allocation.
const OBSERVER_BATCH: usize = 256;

/// Smallest accepted observer sampling cadence, in simulated seconds. A
/// cadence below this floods the event queue (and, below the float
/// resolution of the clock, could not even advance it); sampling finer than
/// a millisecond of simulated time is a configuration error.
pub const MIN_SAMPLE_INTERVAL: f64 = 1e-3;

/// A full simulation run over one trace, workload and protocol.
pub struct Simulation {
    cfg: SimConfig,
    n_nodes: u32,
    duration: f64,
    /// The immutable workload in structure-of-arrays form (id = spec index).
    arena: MessageArena,
    buffers: Vec<Buffer>,
    routers: Vec<Box<dyn Router>>,
    /// Slab of link slots; indices are stable while a contact is active.
    links: Vec<LinkSlot>,
    /// Indices of inactive slots available for reuse.
    free_links: Vec<u32>,
    /// Active links per node as `(pair, slot)` (small vectors; membership
    /// scanned linearly — node degree is tiny in DTN contact processes).
    active: Vec<Vec<(NodePair, u32)>>,
    /// The demand-driven contact supply.
    source: Box<dyn ContactSource>,
    /// Contacts starting before this time have been drawn from the source.
    loaded_until: f64,
    /// Reused scratch buffer for source windows.
    source_scratch: Vec<ContactEvent>,
    events: EventQueue,
    stats: SimStats,
    now: SimTime,
    next_epoch: u32,
    /// Scratch for purge requests, reused across callbacks.
    purge_scratch: Vec<MessageId>,
    /// Scratch snapshot of a node's active links, reused by [`Self::kick_node`].
    kick_scratch: Vec<(NodePair, u32)>,
    /// Scratch for expired message ids, reused by TTL sweeps.
    expired_scratch: Vec<MessageId>,
    /// Attached observers; the engine's own `stats` is always folded inline
    /// and is not in this list. Empty while a ring drain owns them; restored
    /// (in attachment order) by [`Self::finish`].
    observers: Vec<Box<dyn SimObserver>>,
    /// Reused scratch batch of pending events for observer dispatch (empty
    /// while no observers are attached).
    batch: Vec<SimEvent>,
    /// Distinct sampling cadences requested by observers; each entry owns a
    /// [`EventKind::ProbeSample`] chain.
    probe_intervals: Vec<f64>,
    /// Where observer batches are dispatched ([`Self::set_drain_mode`]).
    drain_mode: DrainMode,
    /// The running companion drain thread, when [`DrainMode::Ring`] is
    /// active and observers are attached.
    drain: Option<ObserverDrain>,
    /// Whether any observer consumes the stream this run (directly or via
    /// the drain) — decided once at start so [`Self::emit`] checks one bool.
    observing: bool,
    finished: bool,
    started: bool,
}

impl Simulation {
    /// Builds a simulation. `factory` creates the router for each node and
    /// receives `(node, n_nodes)`.
    ///
    /// # Panics
    /// Panics if the trace fails validation, naming the offending contact
    /// index and the contact itself.
    pub fn new(
        trace: &ContactTrace,
        workload: Vec<MessageSpec>,
        cfg: SimConfig,
        factory: impl FnMut(NodeId, u32) -> Box<dyn Router>,
    ) -> Self {
        // Validation (and its panic) lives in the replay source.
        Self::from_source(
            Box::new(TraceReplaySource::new(trace)),
            workload,
            cfg,
            factory,
        )
    }

    /// Builds a simulation over a streaming contact supply. Contacts are
    /// drawn from `source` in windows as simulated time advances, so the
    /// event queue never holds more than roughly one window of the contact
    /// process — this is the constructor that scales to city-sized node
    /// counts. Runs are bit-identical to a materialized-trace run of the
    /// same contact process (see [`crate::source`] for the ordering
    /// contract that guarantees it).
    pub fn from_source(
        source: Box<dyn ContactSource>,
        workload: Vec<MessageSpec>,
        cfg: SimConfig,
        mut factory: impl FnMut(NodeId, u32) -> Box<dyn Router>,
    ) -> Self {
        let n = source.n_nodes();
        let duration = source.duration();
        let mut events = EventQueue::new();
        for (i, spec) in workload.iter().enumerate() {
            debug_assert!(spec.src.0 < n && spec.dst.0 < n && spec.src != spec.dst);
            events.push(
                spec.create_at,
                EventKind::MessageCreate { spec_idx: i as u32 },
            );
        }
        if cfg.ttl_sweep > 0.0 {
            events.push(SimTime::secs(cfg.ttl_sweep), EventKind::TtlSweep);
        }
        events.push(SimTime::secs(duration), EventKind::End);

        let buffers = (0..n).map(|_| Buffer::new(cfg.buffer_capacity)).collect();
        let routers: Vec<Box<dyn Router>> = (0..n).map(|i| factory(NodeId(i), n)).collect();
        for (i, r) in routers.iter().enumerate() {
            if let Some(dt) = r.tick_interval() {
                assert!(dt > 0.0, "tick interval must be positive");
                events.push(
                    SimTime::secs(dt),
                    EventKind::RouterTick {
                        node: NodeId(i as u32),
                    },
                );
            }
        }

        let stats = SimStats::new(workload.len());
        Simulation {
            cfg,
            n_nodes: n,
            duration,
            arena: MessageArena::from_specs(&workload),
            buffers,
            routers,
            links: Vec::new(),
            free_links: Vec::new(),
            active: vec![Vec::new(); n as usize],
            source,
            loaded_until: 0.0,
            source_scratch: Vec::new(),
            events,
            stats,
            now: SimTime::ZERO,
            next_epoch: 0,
            purge_scratch: Vec::new(),
            kick_scratch: Vec::new(),
            expired_scratch: Vec::new(),
            observers: Vec::new(),
            batch: Vec::new(),
            probe_intervals: Vec::new(),
            drain_mode: DrainMode::Inline,
            drain: None,
            observing: false,
            finished: false,
            started: false,
        }
    }

    /// Selects where observer batches are dispatched: inline on the
    /// simulation thread (the default) or through a bounded lock-free ring
    /// to a companion drain thread ([`DrainMode::Ring`]). Purely an
    /// execution knob — stats, probe outputs and recorded artifacts are
    /// bitwise identical in both modes.
    ///
    /// # Panics
    /// Panics if the run has already started.
    pub fn set_drain_mode(&mut self, mode: DrainMode) {
        assert!(
            !self.started,
            "the drain mode must be chosen before the simulation starts"
        );
        self.drain_mode = mode;
    }

    /// Attaches an observer to the run. If the observer requests a sampling
    /// cadence ([`SimObserver::sample_interval`]), the engine schedules
    /// periodic [`SimEvent::Tick`] samples carrying global buffer occupancy
    /// (one chain per distinct cadence; ticks are broadcast).
    ///
    /// Probe processing is read-only, so attaching observers never changes
    /// the run's [`SimStats`].
    ///
    /// # Panics
    /// Panics if the run has already started, or if the requested sampling
    /// interval is not finite and at least [`MIN_SAMPLE_INTERVAL`].
    pub fn add_observer(&mut self, observer: Box<dyn SimObserver>) {
        assert!(
            !self.started,
            "observers must be attached before the simulation starts"
        );
        if let Some(dt) = observer.sample_interval() {
            assert!(
                dt.is_finite() && dt >= MIN_SAMPLE_INTERVAL,
                "observer sample interval must be at least {MIN_SAMPLE_INTERVAL} s of \
                 simulated time, got {dt}"
            );
            if !self.probe_intervals.contains(&dt) {
                self.probe_intervals.push(dt);
                let interval = (self.probe_intervals.len() - 1) as u32;
                if dt < self.duration {
                    self.events
                        .push(SimTime::secs(dt), EventKind::ProbeSample { interval });
                }
            }
        }
        if self.batch.capacity() == 0 {
            self.batch.reserve(OBSERVER_BATCH);
        }
        self.observers.push(observer);
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Read access to a node's buffer (for tests and inspection).
    pub fn buffer(&self, node: NodeId) -> &Buffer {
        &self.buffers[node.idx()]
    }

    /// Read access to a node's router (for tests and inspection).
    pub fn router(&self, node: NodeId) -> &dyn Router {
        self.routers[node.idx()].as_ref()
    }

    /// Runs to completion and returns the collected statistics.
    pub fn run(mut self) -> SimStats {
        self.run_to_end();
        self.stats
    }

    /// Runs to completion and returns the statistics together with the
    /// attached observers, for post-run result extraction (downcast through
    /// [`SimObserver::as_any`]). Observers come back in attachment order.
    pub fn run_observed(mut self) -> (SimStats, Vec<Box<dyn SimObserver>>) {
        self.run_to_end();
        (self.stats, self.observers)
    }

    /// Read access to the attached observers (for inspection after
    /// [`Self::run_to_end`]).
    pub fn observers(&self) -> &[Box<dyn SimObserver>] {
        &self.observers
    }

    /// Runs to completion in place, so routers and buffers remain
    /// inspectable afterwards (used by tests and examples).
    pub fn run_to_end(&mut self) -> &SimStats {
        if !self.started {
            if let DrainMode::Ring { capacity } = self.drain_mode {
                if !self.observers.is_empty() {
                    self.drain = Some(ObserverDrain::spawn(
                        std::mem::take(&mut self.observers),
                        capacity,
                    ));
                }
            }
            self.observing = self.drain.is_some() || !self.observers.is_empty();
            self.start();
            self.started = true;
        }
        while self.step() {}
        &self.stats
    }

    /// Invokes `on_start` on every router.
    fn start(&mut self) {
        for i in 0..self.n_nodes as usize {
            let mut purge = std::mem::take(&mut self.purge_scratch);
            {
                let mut ctx = NodeCtx {
                    now: self.now,
                    me: NodeId(i as u32),
                    buf: &self.buffers[i],
                    stats: &mut self.stats,
                    purge: &mut purge,
                };
                self.routers[i].on_start(&mut ctx);
            }
            self.apply_purges(NodeId(i as u32), &mut purge);
            self.purge_scratch = purge;
        }
    }

    /// Draws contact windows from the source until the earliest queued
    /// event lies strictly inside loaded territory (or the source is
    /// exhausted). Called before every pop, so an event at time `t` is only
    /// processed once every contact starting at or before `t` is queued —
    /// the streaming run pops the exact event sequence of a bulk load.
    fn pump_source(&mut self) {
        while self.loaded_until < self.duration {
            match self.events.peek_time() {
                Some(t) if t.as_secs() < self.loaded_until => break,
                _ => {}
            }
            let hint = self.source.window_hint();
            debug_assert!(hint > 0.0, "window hint must be positive");
            let until = (self.loaded_until + hint).min(self.duration);
            let mut scratch = std::mem::take(&mut self.source_scratch);
            scratch.clear();
            self.source.next_window(until, &mut scratch);
            for ev in &scratch {
                match *ev {
                    ContactEvent::Up { pair, at } => {
                        self.events.push_contact(at, EventKind::ContactUp { pair });
                    }
                    ContactEvent::Down { pair, at } => {
                        self.events
                            .push_contact(at, EventKind::ContactDown { pair });
                    }
                }
            }
            self.source_scratch = scratch;
            self.loaded_until = until;
        }
    }

    /// Processes one event; returns `false` once the simulation ended.
    fn step(&mut self) -> bool {
        if self.finished {
            return false;
        }
        self.pump_source();
        let Some((t, kind)) = self.events.pop() else {
            self.finish();
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        match kind {
            EventKind::ContactUp { pair } => self.handle_contact_up(pair),
            EventKind::ContactDown { pair } => self.handle_contact_down(pair),
            EventKind::MessageCreate { spec_idx } => self.handle_create(spec_idx),
            EventKind::TransferDone {
                link,
                from,
                msg,
                epoch,
            } => self.handle_transfer_done(link, from, msg, epoch),
            EventKind::TtlSweep => self.handle_ttl_sweep(),
            EventKind::RouterTick { node } => self.handle_tick(node),
            EventKind::ProbeSample { interval } => self.handle_probe_sample(interval),
            EventKind::End => {
                self.finish();
                return false;
            }
        }
        true
    }

    /// Ends the run: a final occupancy sample, the last observer batch and
    /// the end-of-run callback. Idempotent (guarded by `finished`).
    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.observing {
            let (buffered_bytes, buffered_msgs) = self.occupancy();
            self.emit(SimEvent::Tick {
                at: self.now,
                buffered_bytes,
                buffered_msgs,
            });
            self.flush();
            let final_stats = self.stats.snapshot();
            if let Some(drain) = self.drain.take() {
                // End-of-run barrier: the drain thread folds every batch
                // published before this point, runs `on_end`, and hands the
                // observers back — in attachment order, states bitwise equal
                // to inline dispatch.
                self.observers = drain.finish(self.now, final_stats);
            } else {
                for obs in &mut self.observers {
                    obs.on_end(self.now, &final_stats);
                }
            }
        }
    }

    /// Folds `ev` into the run's statistics and queues it for observer
    /// dispatch. The fold uses [`SimStats::apply`] — the same function the
    /// [`SimObserver`] impl of [`SimStats`] uses — so an external replica
    /// fed from the stream reproduces the engine's stats bitwise.
    #[inline]
    fn emit(&mut self, ev: SimEvent) {
        self.stats.apply(&ev);
        if self.observing {
            self.batch.push(ev);
            if self.batch.len() >= OBSERVER_BATCH {
                self.flush();
            }
        }
    }

    /// Delivers the pending batch to every observer and clears it. Inline
    /// mode dispatches from the reused scratch buffer (capacity retained, no
    /// allocation); ring mode hands the batch's storage to the drain thread
    /// and starts a fresh one — one allocation per [`OBSERVER_BATCH`]
    /// events, paid instead of the observers' fold cost.
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        if let Some(drain) = &mut self.drain {
            let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(OBSERVER_BATCH));
            drain.send_batch(batch);
        } else {
            for obs in &mut self.observers {
                obs.on_events(&self.batch);
            }
            self.batch.clear();
        }
    }

    /// Global buffer occupancy: `(total bytes, total messages)` across all
    /// nodes. Linear in the node count; only computed at probe cadence.
    fn occupancy(&self) -> (u64, u64) {
        let mut bytes = 0u64;
        let mut msgs = 0u64;
        for buf in &self.buffers {
            bytes += buf.used();
            msgs += buf.len() as u64;
        }
        (bytes, msgs)
    }

    /// Emits an occupancy [`SimEvent::Tick`] and reschedules this cadence's
    /// chain. Read-only with respect to simulation state.
    fn handle_probe_sample(&mut self, interval: u32) {
        let (buffered_bytes, buffered_msgs) = self.occupancy();
        self.emit(SimEvent::Tick {
            at: self.now,
            buffered_bytes,
            buffered_msgs,
        });
        let dt = self.probe_intervals[interval as usize];
        let next = self.now + dt;
        // Strictly before the horizon: the final sample is the Tick that
        // `finish` emits at `End` (which pops first on an exact tie). The
        // `next > now` guard stops the chain when the cadence falls below
        // the float resolution of the current time — rescheduling an
        // instant that cannot advance would loop forever.
        if next > self.now && next.as_secs() < self.duration {
            self.events.push(next, EventKind::ProbeSample { interval });
        }
    }

    /// Slot of the active link between `pair`, if any (linear scan of the
    /// smaller endpoint's link list — node degrees are tiny).
    fn slot_of(&self, pair: NodePair) -> Option<u32> {
        self.active[pair.a.idx()]
            .iter()
            .find(|(p, _)| *p == pair)
            .map(|&(_, s)| s)
    }

    fn handle_contact_up(&mut self, pair: NodePair) {
        if self.slot_of(pair).is_some() {
            debug_assert!(false, "duplicate ContactUp for {pair:?}");
            return;
        }
        let epoch = self.next_epoch;
        self.next_epoch = self
            .next_epoch
            .checked_add(1)
            .expect("contact epoch space exhausted");
        let n_msgs = self.arena.len();
        let slot = match self.free_links.pop() {
            Some(s) => {
                let link = &mut self.links[s as usize];
                link.pair = pair;
                link.epoch = epoch;
                link.active = true;
                link.in_flight = [None, None];
                // `sent` stamps stay as-is: the fresh epoch invalidates them.
                s
            }
            None => {
                self.links.push(LinkSlot {
                    pair,
                    epoch,
                    active: true,
                    in_flight: [None, None],
                    sent: [vec![NO_EPOCH; n_msgs], vec![NO_EPOCH; n_msgs]],
                });
                (self.links.len() - 1) as u32
            }
        };
        self.active[pair.a.idx()].push((pair, slot));
        self.active[pair.b.idx()].push((pair, slot));
        self.emit(SimEvent::ContactStart { at: self.now, pair });

        // Control-plane handshake, both directions.
        for (me, peer) in [(pair.a, pair.b), (pair.b, pair.a)] {
            let mut purge = std::mem::take(&mut self.purge_scratch);
            {
                let (me_r, peer_r) = pair_mut(&mut self.routers, me.idx(), peer.idx());
                let mut ctx = ContactCtx {
                    now: self.now,
                    me,
                    peer,
                    buf: &self.buffers[me.idx()],
                    peer_buf: &self.buffers[peer.idx()],
                    stats: &mut self.stats,
                    sent: SentSet::empty(),
                    purge: &mut purge,
                };
                me_r.on_contact_up(&mut ctx, peer_r.as_mut());
            }
            self.apply_purges(me, &mut purge);
            self.purge_scratch = purge;
        }

        self.try_fill(slot, pair.a);
        self.try_fill(slot, pair.b);
    }

    fn handle_contact_down(&mut self, pair: NodePair) {
        let Some(slot) = self.slot_of(pair) else {
            return;
        };
        let link = &mut self.links[slot as usize];
        link.active = false;
        let in_flight = [link.in_flight[0].take(), link.in_flight[1].take()];
        for (di, flight) in in_flight.into_iter().enumerate() {
            if let Some((msg, _)) = flight {
                // Direction 0 is `pair.a → pair.b`.
                let (from, to) = if di == 0 {
                    (pair.a, pair.b)
                } else {
                    (pair.b, pair.a)
                };
                self.emit(SimEvent::Aborted {
                    at: self.now,
                    msg,
                    from,
                    to,
                });
            }
        }
        self.free_links.push(slot);
        self.active[pair.a.idx()].retain(|(p, _)| *p != pair);
        self.active[pair.b.idx()].retain(|(p, _)| *p != pair);
        self.emit(SimEvent::ContactEnd { at: self.now, pair });
        for (me, peer) in [(pair.a, pair.b), (pair.b, pair.a)] {
            let mut purge = std::mem::take(&mut self.purge_scratch);
            {
                let mut ctx = NodeCtx {
                    now: self.now,
                    me,
                    buf: &self.buffers[me.idx()],
                    stats: &mut self.stats,
                    purge: &mut purge,
                };
                self.routers[me.idx()].on_contact_down(&mut ctx, peer);
            }
            self.apply_purges(me, &mut purge);
            self.purge_scratch = purge;
        }
    }

    fn handle_create(&mut self, spec_idx: u32) {
        let msg = self.arena.message(MessageId(spec_idx));
        self.emit(SimEvent::Generated {
            at: self.now,
            msg: msg.id,
            src: msg.src,
        });
        let src = msg.src.idx();
        let copies = self.routers[src].initial_copies(&msg).max(1);
        if !self.make_room(msg.src, &msg) {
            // The newborn never entered a buffer; no router is notified.
            self.emit(SimEvent::Dropped {
                at: self.now,
                msg: msg.id,
                node: msg.src,
                reason: DropReason::BufferFull,
            });
            return;
        }
        let entry = BufferEntry {
            msg,
            copies,
            received_at: self.now,
            hops: 0,
        };
        self.buffers[src].insert(entry).expect("room was just made");
        let mut purge = std::mem::take(&mut self.purge_scratch);
        {
            let mut ctx = NodeCtx {
                now: self.now,
                me: msg.src,
                buf: &self.buffers[src],
                stats: &mut self.stats,
                purge: &mut purge,
            };
            self.routers[src].on_message_created(&mut ctx, msg.id);
        }
        self.apply_purges(msg.src, &mut purge);
        self.purge_scratch = purge;
        self.kick_node(msg.src);
    }

    fn handle_transfer_done(&mut self, slot: u32, from: NodeId, msg_id: MessageId, epoch: u32) {
        let link = &mut self.links[slot as usize];
        if !link.active || link.epoch != epoch {
            return; // link went down (abort already counted) or slot recycled
        }
        let pair = link.pair;
        let di = dir_index(pair, from);
        let Some((in_msg, action)) = link.in_flight[di].take() else {
            debug_assert!(false, "TransferDone with no in-flight transfer");
            return;
        };
        debug_assert_eq!(in_msg, msg_id);
        let to = pair.other(from);

        // The sender may have lost the message mid-flight (TTL sweep), or it
        // may have expired while on the air: the transfer is wasted.
        let sender_has = self.buffers[from.idx()].contains(msg_id);
        let expired = self.buffers[from.idx()]
            .get(msg_id)
            .map(|e| e.msg.expired(self.now))
            .unwrap_or(true);
        if !sender_has || expired {
            self.emit(SimEvent::Aborted {
                at: self.now,
                msg: msg_id,
                from,
                to,
            });
            self.try_fill(slot, from);
            return;
        }

        let entry = self.buffers[from.idx()].get(msg_id).expect("checked above");
        let msg = entry.msg;

        if to == msg.dst {
            let first = !self.stats.is_delivered(msg.id);
            self.emit(SimEvent::Delivered {
                at: self.now,
                msg: msg.id,
                from,
                to,
                created: msg.created,
                hops: entry.hops + 1,
                first,
            });
            self.apply_sender_action(from, msg_id, action);
            self.notify_sent(from, &msg, action, to, true);
            let mut purge = std::mem::take(&mut self.purge_scratch);
            {
                let mut ctx = NodeCtx {
                    now: self.now,
                    me: to,
                    buf: &self.buffers[to.idx()],
                    stats: &mut self.stats,
                    purge: &mut purge,
                };
                self.routers[to.idx()].on_delivery_received(&mut ctx, &msg, from, first);
            }
            self.apply_purges(to, &mut purge);
            self.purge_scratch = purge;
        } else if self.buffers[to.idx()].contains(msg_id) {
            // The receiver obtained the message from a third party while this
            // transfer was in flight; treat as a wasted relay.
            self.emit(SimEvent::Forwarded {
                at: self.now,
                msg: msg_id,
                from,
                to,
                duplicate: true,
            });
        } else if !self.make_room(to, &msg) {
            self.emit(SimEvent::Refused {
                at: self.now,
                msg: msg_id,
                from,
                to,
            });
        } else {
            self.emit(SimEvent::Forwarded {
                at: self.now,
                msg: msg_id,
                from,
                to,
                duplicate: false,
            });
            let give = match action {
                TransferAction::Forward => entry.copies,
                // The plan was validated against the copy count at
                // plan-application time (`validate_plan` rejects out-of-range
                // gives loudly), but a concurrent transfer on another link
                // can legitimately shrink the sender's copies while this one
                // was in flight — clamp to what is actually left.
                TransferAction::Split { give } => give.min(entry.copies).max(1),
                TransferAction::Copy => 1,
            };
            let new_entry = BufferEntry {
                msg,
                copies: give,
                received_at: self.now,
                hops: entry.hops + 1,
            };
            self.buffers[to.idx()]
                .insert(new_entry)
                .expect("room was just made");
            self.apply_sender_action(from, msg_id, action);
            self.notify_sent(from, &msg, action, to, false);
            let mut purge = std::mem::take(&mut self.purge_scratch);
            {
                let mut ctx = NodeCtx {
                    now: self.now,
                    me: to,
                    buf: &self.buffers[to.idx()],
                    stats: &mut self.stats,
                    purge: &mut purge,
                };
                self.routers[to.idx()].on_received(&mut ctx, &new_entry, from);
            }
            self.apply_purges(to, &mut purge);
            self.purge_scratch = purge;
            self.kick_node(to);
        }

        self.try_fill(slot, from);
    }

    fn handle_ttl_sweep(&mut self) {
        let mut expired = std::mem::take(&mut self.expired_scratch);
        for i in 0..self.n_nodes as usize {
            let node = NodeId(i as u32);
            expired.clear();
            expired.extend(
                self.buffers[i]
                    .iter()
                    .filter(|e| e.msg.expired(self.now))
                    .map(|e| e.msg.id),
            );
            for &id in &expired {
                if let Some(entry) = self.buffers[i].remove(id) {
                    self.emit(SimEvent::Dropped {
                        at: self.now,
                        msg: id,
                        node,
                        reason: DropReason::Expired,
                    });
                    self.notify_dropped(node, &entry.msg, DropReason::Expired);
                }
            }
        }
        self.expired_scratch = expired;
        let next = self.now + self.cfg.ttl_sweep;
        if next.as_secs() < self.duration {
            self.events.push(next, EventKind::TtlSweep);
        }
    }

    fn handle_tick(&mut self, node: NodeId) {
        let i = node.idx();
        let mut purge = std::mem::take(&mut self.purge_scratch);
        {
            let mut ctx = NodeCtx {
                now: self.now,
                me: node,
                buf: &self.buffers[i],
                stats: &mut self.stats,
                purge: &mut purge,
            };
            self.routers[i].on_tick(&mut ctx);
        }
        self.apply_purges(node, &mut purge);
        self.purge_scratch = purge;
        if let Some(dt) = self.routers[i].tick_interval() {
            let next = self.now + dt;
            if next.as_secs() < self.duration {
                self.events.push(next, EventKind::RouterTick { node });
            }
        }
        self.kick_node(node);
    }

    /// Applies the sender-side effect of a completed transfer.
    fn apply_sender_action(&mut self, from: NodeId, msg: MessageId, action: TransferAction) {
        let buf = &mut self.buffers[from.idx()];
        match action {
            TransferAction::Forward => {
                buf.remove(msg);
            }
            TransferAction::Split { give } => {
                let remove = {
                    let copies = buf.copies_mut(msg).expect("sender entry present");
                    *copies = copies.saturating_sub(give);
                    *copies == 0
                };
                if remove {
                    buf.remove(msg);
                }
            }
            TransferAction::Copy => {}
        }
    }

    fn notify_sent(
        &mut self,
        from: NodeId,
        msg: &Message,
        action: TransferAction,
        to: NodeId,
        delivered: bool,
    ) {
        let mut purge = std::mem::take(&mut self.purge_scratch);
        {
            let mut ctx = NodeCtx {
                now: self.now,
                me: from,
                buf: &self.buffers[from.idx()],
                stats: &mut self.stats,
                purge: &mut purge,
            };
            self.routers[from.idx()].on_sent(&mut ctx, msg, action, to, delivered);
        }
        self.apply_purges(from, &mut purge);
        self.purge_scratch = purge;
    }

    fn notify_dropped(&mut self, node: NodeId, msg: &Message, reason: DropReason) {
        let mut purge = std::mem::take(&mut self.purge_scratch);
        {
            let mut ctx = NodeCtx {
                now: self.now,
                me: node,
                buf: &self.buffers[node.idx()],
                stats: &mut self.stats,
                purge: &mut purge,
            };
            self.routers[node.idx()].on_dropped(&mut ctx, msg, reason);
        }
        self.apply_purges(node, &mut purge);
        self.purge_scratch = purge;
    }

    /// Applies router purge requests against `node`'s buffer.
    fn apply_purges(&mut self, node: NodeId, purge: &mut Vec<MessageId>) {
        while let Some(id) = purge.pop() {
            if let Some(entry) = self.buffers[node.idx()].remove(id) {
                self.emit(SimEvent::Dropped {
                    at: self.now,
                    msg: id,
                    node,
                    reason: DropReason::Protocol,
                });
                self.notify_dropped(node, &entry.msg, DropReason::Protocol);
            }
        }
    }

    /// Evicts messages (per the router's policy) until `incoming` fits at
    /// `node`. Returns `false` if room cannot be made.
    fn make_room(&mut self, node: NodeId, incoming: &Message) -> bool {
        let i = node.idx();
        if u64::from(incoming.size) > self.buffers[i].capacity() {
            return false;
        }
        if self.buffers[i].fits(incoming.size) {
            return true;
        }
        let victims = self.routers[i].select_drops(&self.buffers[i], incoming, self.now);
        for v in victims {
            if self.buffers[i].fits(incoming.size) {
                break;
            }
            if let Some(entry) = self.buffers[i].remove(v) {
                self.emit(SimEvent::Dropped {
                    at: self.now,
                    msg: v,
                    node,
                    reason: DropReason::BufferFull,
                });
                self.notify_dropped(node, &entry.msg, DropReason::BufferFull);
            }
        }
        self.buffers[i].fits(incoming.size)
    }

    /// Re-offers work on every active link of `node`.
    fn kick_node(&mut self, node: NodeId) {
        let mut snapshot = std::mem::take(&mut self.kick_scratch);
        snapshot.clear();
        snapshot.extend_from_slice(&self.active[node.idx()]);
        for &(_, slot) in &snapshot {
            self.try_fill(slot, node);
        }
        self.kick_scratch = snapshot;
    }

    /// If direction `from → other(from)` of the link in `slot` is idle, asks
    /// the router for a plan and starts the transfer.
    fn try_fill(&mut self, slot: u32, from: NodeId) {
        let link = &self.links[slot as usize];
        if !link.active {
            return;
        }
        let pair = link.pair;
        let di = dir_index(pair, from);
        if link.in_flight[di].is_some() {
            return;
        }
        let to = pair.other(from);
        let epoch = link.epoch;

        let plan = {
            let mut purge = std::mem::take(&mut self.purge_scratch);
            let plan = {
                let link = &self.links[slot as usize];
                let mut ctx = ContactCtx {
                    now: self.now,
                    me: from,
                    peer: to,
                    buf: &self.buffers[from.idx()],
                    peer_buf: &self.buffers[to.idx()],
                    stats: &mut self.stats,
                    sent: SentSet::new(&link.sent[di], epoch),
                    purge: &mut purge,
                };
                self.routers[from.idx()].pick_transfer(&mut ctx)
            };
            self.apply_purges(from, &mut purge);
            self.purge_scratch = purge;
            plan
        };
        let Some(plan) = plan else {
            return;
        };
        if !self.validate_plan(slot, from, to, &plan) {
            debug_assert!(
                false,
                "router {} proposed invalid plan {plan:?}",
                self.routers[from.idx()].label()
            );
            return;
        }
        let size = self.buffers[from.idx()]
            .get(plan.msg)
            .expect("validated")
            .msg
            .size;
        let duration = self.cfg.link_setup + f64::from(size) / self.cfg.bandwidth_bps;
        let link = &mut self.links[slot as usize];
        link.in_flight[di] = Some((plan.msg, plan.action));
        link.sent[di][plan.msg.idx()] = epoch;
        self.events.push(
            self.now + duration,
            EventKind::TransferDone {
                link: slot,
                from,
                msg: plan.msg,
                epoch,
            },
        );
    }

    fn validate_plan(&self, slot: u32, from: NodeId, to: NodeId, plan: &TransferPlan) -> bool {
        let Some(entry) = self.buffers[from.idx()].get(plan.msg) else {
            return false;
        };
        let link = &self.links[slot as usize];
        let di = dir_index(link.pair, from);
        if link.sent[di][plan.msg.idx()] == link.epoch {
            return false;
        }
        // Offering a message the peer already buffers is useless (delivery to
        // the destination is always allowed: destinations do not buffer).
        if to != entry.msg.dst && self.buffers[to.idx()].contains(plan.msg) {
            return false;
        }
        // Out-of-bounds splits are router bugs, not transient staleness: the
        // plan was produced against this exact buffer state. Silently
        // accepting them would corrupt copy conservation (a zero give would
        // be bumped to 1 at completion; an oversized give would drain the
        // sender to zero while minting copies at the receiver), so they fail
        // loudly here, at plan-application time.
        if let TransferAction::Split { give } = plan.action {
            assert!(
                give >= 1,
                "router {} proposed Split {{ give: 0 }} for message {:?} at node {from:?}: \
                 a split must hand over at least one copy (use Copy or drop the plan)",
                self.routers[from.idx()].label(),
                plan.msg,
            );
            assert!(
                give <= entry.copies,
                "router {} proposed Split {{ give: {give} }} for message {:?} at node {from:?}, \
                 which holds only {} copies: a split cannot hand over more copies than the \
                 sender owns",
                self.routers[from.idx()].label(),
                plan.msg,
                entry.copies,
            );
        }
        true
    }
}
