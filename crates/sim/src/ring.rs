//! A bounded lock-free single-producer/single-consumer ring.
//!
//! This is the transport under the off-thread observer drain
//! ([`crate::observe::DrainMode`]): the simulation thread publishes
//! [`SimEvent`](crate::SimEvent) batches, a companion thread folds them into
//! the attached observers. The design follows the classic Lamport ring with
//! per-slot presence flags (the shape the cpp-ipc family of IPC queues
//! uses): a fixed circular array of [`AtomicPtr`] slots, a producer-private
//! tail cursor and a consumer-private head cursor. A slot is *full* when it
//! holds a non-null pointer, *empty* when null, so no shared head/tail
//! counters exist at all — each side synchronizes purely through the slot it
//! is about to use (release on publish, acquire on take).
//!
//! Semantics:
//!
//! * **Bounded with backpressure** — [`Producer::push`] spins (then yields)
//!   while the ring is full, so a producer outrunning its consumer is
//!   throttled instead of growing a queue without bound. Capacity 1 is
//!   legal: the ring degenerates to a rendezvous buffer and still makes
//!   progress.
//! * **Deterministic FIFO** — items arrive in push order, always; the ring
//!   reorders nothing, so a consumer folding a probe over the stream sees
//!   exactly the inline dispatch order.
//! * **Panic-safe in both directions** — dropping the [`Producer`] (normal
//!   completion *or* unwinding) closes the ring: the consumer drains every
//!   remaining item and then sees `None`, so no item is ever lost. Dropping
//!   the [`Consumer`] early (e.g. a panicking drain thread) marks the ring
//!   dead: the next `push` returns the rejected value instead of blocking,
//!   so the producer can never hang on a dead peer.
//!
//! ```
//! let (mut tx, mut rx) = dtn_sim::ring::channel::<u32>(2);
//! let t = std::thread::spawn(move || {
//!     let mut got = Vec::new();
//!     while let Some(v) = rx.pop() {
//!         got.push(v);
//!     }
//!     got
//! });
//! for v in 0..100 {
//!     tx.push(v).expect("consumer alive");
//! }
//! drop(tx); // close: the consumer drains the rest and stops
//! assert_eq!(t.join().unwrap(), (0..100).collect::<Vec<_>>());
//! ```

use std::marker::PhantomData;
use std::ptr::null_mut;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

/// Spins briefly, then yields the CPU — the wait primitive both sides use
/// when the slot they need is not ready.
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// The shared circular array. Slots own their boxed items: a non-null
/// pointer is a full slot, null is empty.
struct Shared<T> {
    slots: Box<[AtomicPtr<T>]>,
    /// Producer gone: no further items will arrive (set on [`Producer`]
    /// drop, which covers both normal completion and unwinding).
    closed: AtomicBool,
    /// Consumer gone: remaining and future items will never be drained (set
    /// on [`Consumer`] drop before the ring is closed).
    dead: AtomicBool,
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Reclaim items that were pushed but never popped (consumer died, or
        // both sides dropped mid-stream).
        for slot in self.slots.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// The sending half of a [`channel`]. Single producer: requires `&mut self`
/// and is `Send` but not clonable.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer-private next-write index (only this side advances it).
    tail: usize,
    /// Restricts `Producer<T>: Send` to `T: Send` (the slots smuggle owned
    /// `T`s across threads; `AtomicPtr` alone would not impose the bound).
    _owns: PhantomData<T>,
}

/// The receiving half of a [`channel`]. Single consumer: requires
/// `&mut self` and is `Send` but not clonable.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer-private next-read index (only this side advances it).
    head: usize,
    /// See [`Producer::_owns`].
    _owns: PhantomData<T>,
}

/// Creates a bounded SPSC ring with room for `capacity` in-flight items.
///
/// # Panics
/// Panics if `capacity` is zero — a zero-slot ring could never transfer
/// anything.
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be at least 1");
    let slots = (0..capacity)
        .map(|_| AtomicPtr::new(null_mut()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        closed: AtomicBool::new(false),
        dead: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            _owns: PhantomData,
        },
        Consumer {
            shared,
            head: 0,
            _owns: PhantomData,
        },
    )
}

impl<T: Send> Producer<T> {
    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Enqueues `v`, blocking (spin, then yield) while the ring is full.
    ///
    /// Returns `Err(v)` — handing the item back — once the consumer is gone:
    /// a producer can be throttled by a slow consumer but never hangs on a
    /// dead one.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let slot = &self.shared.slots[self.tail];
        let mut spins = 0;
        loop {
            if self.shared.dead.load(Ordering::Acquire) {
                return Err(v);
            }
            if slot.load(Ordering::Acquire).is_null() {
                break;
            }
            backoff(&mut spins);
        }
        // Release-publish the box: the consumer's acquire load of the
        // pointer sees the fully initialized item.
        slot.store(Box::into_raw(Box::new(v)), Ordering::Release);
        self.tail = (self.tail + 1) % self.shared.slots.len();
        Ok(())
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Runs on normal completion and on unwinding alike: either way the
        // consumer must not wait for items that will never come.
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T: Send> Consumer<T> {
    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Takes the next item if one is immediately available.
    pub fn try_pop(&mut self) -> Option<T> {
        let slot = &self.shared.slots[self.head];
        let p = slot.swap(null_mut(), Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        self.head = (self.head + 1) % self.shared.slots.len();
        Some(*unsafe { Box::from_raw(p) })
    }

    /// Dequeues the next item, blocking (spin, then yield) while the ring is
    /// empty. Returns `None` once the producer is gone *and* every pushed
    /// item has been drained — items pushed before the close are never lost.
    pub fn pop(&mut self) -> Option<T> {
        let mut spins = 0;
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // The close is released *after* the producer's last publish,
                // so one more look at the slot decides: still empty means
                // truly drained (slots fill strictly in order).
                return self.try_pop();
            }
            backoff(&mut spins);
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // An early consumer death (panicking drain thread) must unblock the
        // producer; after a normal close this is a harmless no-op.
        self.shared.dead.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = channel::<u32>(8);
        for v in 0..5 {
            tx.push(v).unwrap();
        }
        for v in 0..5 {
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn close_drains_remaining_items() {
        let (mut tx, mut rx) = channel::<u32>(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.pop(), None, "closed ring stays closed");
    }

    #[test]
    fn dead_consumer_rejects_pushes() {
        let (mut tx, rx) = channel::<u32>(2);
        tx.push(7).unwrap();
        drop(rx);
        // The buffered item is reclaimed by Shared's Drop; new pushes bounce.
        assert_eq!(tx.push(8), Err(8));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_is_rejected() {
        let _ = channel::<u32>(0);
    }

    #[test]
    fn unpopped_items_are_reclaimed() {
        // Drop both sides with items still in flight; Miri/leak checkers
        // would flag a leak if Shared::drop missed them.
        let (mut tx, rx) = channel::<Vec<u8>>(4);
        tx.push(vec![1, 2, 3]).unwrap();
        tx.push(vec![4, 5]).unwrap();
        drop(tx);
        drop(rx);
    }
}
