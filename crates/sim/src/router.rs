//! The routing-protocol interface.
//!
//! Each node runs one [`Router`] instance. The engine drives routers through
//! callbacks; routers never mutate buffers directly — they *propose* transfers
//! ([`TransferPlan`]) and *request* purges (via [`ContactCtx::purge`]), and the
//! engine applies them. This keeps every byte of buffer accounting in one
//! place and makes protocol implementations short and auditable.
//!
//! Control-plane exchange (summary vectors, delivery predictabilities,
//! meeting-interval matrices, ...) happens in [`Router::on_contact_up`], where
//! a protocol may downcast the peer router to its own concrete type — the
//! in-simulator equivalent of the metadata handshake real DTN nodes perform
//! when a link comes up. Implementations should account for the bytes they
//! exchange through [`ContactCtx::control_bytes`].

use crate::buffer::{Buffer, BufferEntry, DropReason};
use crate::ids::{MessageId, NodeId};
use crate::message::Message;
use crate::stats::SimStats;
use crate::time::SimTime;
use std::any::Any;

/// How a transfer affects the sender's copy count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferAction {
    /// Relinquish custody: all copies move to the peer and the sender deletes
    /// the message (single-copy forwarding).
    Forward,
    /// Quota split: hand `give` copies to the peer, keep the rest.
    Split {
        /// Number of copies transferred (≥ 1 and ≤ the sender's count).
        give: u32,
    },
    /// Replicate: the peer receives one copy, the sender's state is
    /// unchanged (epidemic-family flooding).
    Copy,
}

/// A transfer the router wants to start towards the current peer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferPlan {
    /// Message to send; must be buffered at the sender.
    pub msg: MessageId,
    /// Copy semantics of the transfer.
    pub action: TransferAction,
}

impl TransferPlan {
    /// Single-copy forward.
    pub fn forward(msg: MessageId) -> Self {
        TransferPlan {
            msg,
            action: TransferAction::Forward,
        }
    }

    /// Quota split handing over `give` copies.
    pub fn split(msg: MessageId, give: u32) -> Self {
        TransferPlan {
            msg,
            action: TransferAction::Split { give },
        }
    }

    /// Epidemic-style replication.
    pub fn copy(msg: MessageId) -> Self {
        TransferPlan {
            msg,
            action: TransferAction::Copy,
        }
    }
}

/// Context for node-local callbacks (creation, ticks, contact teardown).
pub struct NodeCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// This node.
    pub me: NodeId,
    /// This node's buffer (read-only; mutations go through plans/purges).
    pub buf: &'a Buffer,
    /// Global statistics (routers may account control bytes).
    pub stats: &'a mut SimStats,
    /// Messages the router wants removed from its own buffer; the engine
    /// applies these with [`DropReason::Protocol`] after the callback.
    pub purge: &'a mut Vec<MessageId>,
}

impl NodeCtx<'_> {
    /// Accounts `bytes` of control-plane traffic.
    #[inline]
    pub fn control_bytes(&mut self, bytes: u64) {
        self.stats.control_bytes += bytes;
    }
}

/// Read view of "messages already sent to the peer during this contact".
///
/// Backed by the engine's epoch-stamped per-direction transfer log: an entry
/// is a member iff its stamp equals the contact's epoch, so membership is one
/// indexed load and the engine never clears the log between contacts.
#[derive(Clone, Copy)]
pub struct SentSet<'a> {
    stamps: &'a [u32],
    epoch: u32,
}

impl<'a> SentSet<'a> {
    /// View over `stamps` valid for the contact identified by `epoch`.
    pub(crate) fn new(stamps: &'a [u32], epoch: u32) -> Self {
        SentSet { stamps, epoch }
    }

    /// A set containing nothing (used during the contact-up handshake,
    /// before any transfer can have happened).
    pub fn empty() -> SentSet<'static> {
        SentSet {
            stamps: &[],
            epoch: 0,
        }
    }

    /// Whether `msg` was already sent during this contact.
    #[inline]
    pub fn contains(&self, msg: &MessageId) -> bool {
        self.stamps.get(msg.idx()).is_some_and(|&s| s == self.epoch)
    }
}

/// Context for callbacks that happen while in contact with a peer.
pub struct ContactCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// This node.
    pub me: NodeId,
    /// The peer node of this contact.
    pub peer: NodeId,
    /// This node's buffer.
    pub buf: &'a Buffer,
    /// The peer's buffer (the "summary vector" a real node would receive).
    pub peer_buf: &'a Buffer,
    /// Global statistics.
    pub stats: &'a mut SimStats,
    /// Messages already sent to this peer during the current contact; the
    /// engine rejects plans that repeat them, and routers should filter on
    /// this set to avoid proposing dead transfers.
    pub sent: SentSet<'a>,
    /// Purge requests, as in [`NodeCtx::purge`].
    pub purge: &'a mut Vec<MessageId>,
}

impl ContactCtx<'_> {
    /// Accounts `bytes` of control-plane traffic.
    #[inline]
    pub fn control_bytes(&mut self, bytes: u64) {
        self.stats.control_bytes += bytes;
    }

    /// Whether `msg` may be offered to the peer: buffered here, not already
    /// buffered there, not yet sent during this contact.
    pub fn can_offer(&self, msg: MessageId) -> bool {
        self.buf.contains(msg) && !self.peer_buf.contains(msg) && !self.sent.contains(&msg)
    }
}

/// A DTN routing protocol instance, one per node.
///
/// All methods have no-op defaults except [`Router::label`] and
/// [`Router::as_any_mut`], so trivial protocols stay trivial.
pub trait Router: Any {
    /// Short protocol name for reports (e.g. `"EER"`).
    fn label(&self) -> &'static str;

    /// Upcast used for peer-state exchange via downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Number of logical copies a freshly created message starts with
    /// (quota protocols return their λ).
    fn initial_copies(&self, _msg: &Message) -> u32 {
        1
    }

    /// Called once before the simulation starts.
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// Called right after this node generated `msg` (already buffered).
    fn on_message_created(&mut self, _ctx: &mut NodeCtx<'_>, _msg: MessageId) {}

    /// Called when a contact to `ctx.peer` comes up. `peer` is the peer's
    /// router, for control-plane exchange. The engine invokes this once per
    /// direction; implementations must only mutate *their own* routing state
    /// (reading the peer's is fine).
    fn on_contact_up(&mut self, _ctx: &mut ContactCtx<'_>, _peer: &mut dyn Router) {}

    /// Called when the contact to `peer` goes down.
    fn on_contact_down(&mut self, _ctx: &mut NodeCtx<'_>, _peer: NodeId) {}

    /// Asks for the next transfer towards `ctx.peer`, or `None` to idle.
    /// Invoked whenever the link direction is free.
    fn pick_transfer(&mut self, _ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        None
    }

    /// A transfer of `msg` to `to` completed; `delivered` is true when `to`
    /// is the destination. The buffer effect of `action` is already applied.
    fn on_sent(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _msg: &Message,
        _action: TransferAction,
        _to: NodeId,
        _delivered: bool,
    ) {
    }

    /// This node accepted `entry` from `from` (already buffered).
    fn on_received(&mut self, _ctx: &mut NodeCtx<'_>, _entry: &BufferEntry, _from: NodeId) {}

    /// A replica of `msg` arrived at this node as final destination (it is
    /// *not* buffered). `first` is true for the copy that counts as the
    /// delivery.
    fn on_delivery_received(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _msg: &Message,
        _from: NodeId,
        _first: bool,
    ) {
    }

    /// A message left the buffer for `reason` (TTL, eviction, purge).
    fn on_dropped(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &Message, _reason: DropReason) {}

    /// Chooses victims to evict so that `incoming` fits. Returns ids in
    /// eviction order; the engine evicts until there is room (or gives up).
    /// The default drops the oldest-received messages first, which is the
    /// ONE simulator's default policy.
    fn select_drops(&mut self, buf: &Buffer, incoming: &Message, _now: SimTime) -> Vec<MessageId> {
        let mut entries: Vec<(SimTime, MessageId)> = buf
            .iter()
            .filter(|e| e.msg.id != incoming.id)
            .map(|e| (e.received_at, e.msg.id))
            .collect();
        entries.sort();
        entries.into_iter().map(|(_, id)| id).collect()
    }

    /// If `Some(dt)`, the engine calls [`Router::on_tick`] every `dt` seconds.
    fn tick_interval(&self) -> Option<f64> {
        None
    }

    /// Periodic callback (see [`Router::tick_interval`]).
    fn on_tick(&mut self, _ctx: &mut NodeCtx<'_>) {}
}

/// Borrow two distinct elements of a slice mutably.
///
/// # Panics
/// Panics if `i == j` or either index is out of bounds.
pub(crate) fn pair_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert!(i != j, "pair_mut needs distinct indices");
    if i < j {
        let (lo, hi) = v.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_mut_returns_distinct() {
        let mut v = vec![1, 2, 3, 4];
        let (a, b) = pair_mut(&mut v, 3, 1);
        *a += 10;
        *b += 20;
        assert_eq!(v, vec![1, 22, 3, 14]);
    }

    #[test]
    #[should_panic]
    fn pair_mut_rejects_equal() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }

    #[test]
    fn plan_constructors() {
        assert_eq!(
            TransferPlan::forward(MessageId(1)).action,
            TransferAction::Forward
        );
        assert_eq!(
            TransferPlan::split(MessageId(1), 3).action,
            TransferAction::Split { give: 3 }
        );
        assert_eq!(
            TransferPlan::copy(MessageId(1)).action,
            TransferAction::Copy
        );
    }

    /// The default drop policy evicts oldest-received first.
    #[test]
    fn default_select_drops_oldest_first() {
        struct Dummy;
        impl Router for Dummy {
            fn label(&self) -> &'static str {
                "dummy"
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut buf = Buffer::new(10_000);
        for (i, t) in [(0u32, 5.0), (1, 2.0), (2, 9.0)] {
            buf.insert(BufferEntry {
                msg: Message {
                    id: MessageId(i),
                    src: NodeId(0),
                    dst: NodeId(1),
                    size: 10,
                    created: SimTime::ZERO,
                    ttl: 100.0,
                },
                copies: 1,
                received_at: SimTime::secs(t),
                hops: 0,
            })
            .unwrap();
        }
        let incoming = Message {
            id: MessageId(7),
            src: NodeId(2),
            dst: NodeId(3),
            size: 10,
            created: SimTime::ZERO,
            ttl: 100.0,
        };
        let mut r = Dummy;
        let order = r.select_drops(&buf, &incoming, SimTime::secs(10.0));
        assert_eq!(order, vec![MessageId(1), MessageId(0), MessageId(2)]);
    }
}
