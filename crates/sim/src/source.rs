//! Streaming contact supply: contact events pulled on demand.
//!
//! A [`ContactSource`] yields contact up/down events in windows of simulated
//! time as the engine advances, so a run never has to materialize its whole
//! contact process up front. [`crate::Simulation::from_source`] pulls one
//! window ahead of the event clock; [`TraceReplaySource`] adapts a
//! pre-recorded [`ContactTrace`] to the interface, which is how
//! [`crate::Simulation::new`] now loads traces — same events, same order,
//! bounded queue instead of a whole-horizon bulk load.
//!
//! ## Ordering contract
//!
//! Within a window the source must emit events so that, at any single
//! timestamp, all `Down` events precede all `Up` events, `Down`s are sorted
//! by their contact's `(start, pair)` and `Up`s by `pair`. This is exactly
//! the tie order of a trace sorted by `(start, pair)` — the order
//! [`crate::trace::ContactTrace::new`] produces — so a streaming source and
//! a materialized trace drive bit-identical simulations (the engine assigns
//! contact-band sequence numbers in emission order; see
//! [`crate::event::EventQueue::push_contact`]).

use crate::ids::NodePair;
use crate::time::SimTime;
use crate::trace::{Contact, ContactTrace};

/// One contact edge event produced by a [`ContactSource`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ContactEvent {
    /// A contact begins at `at`.
    Up {
        /// The node pair coming into contact.
        pair: NodePair,
        /// Contact start time.
        at: SimTime,
    },
    /// A contact ends at `at`.
    Down {
        /// The node pair losing contact.
        pair: NodePair,
        /// Contact end time.
        at: SimTime,
    },
}

impl ContactEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            ContactEvent::Up { at, .. } | ContactEvent::Down { at, .. } => at,
        }
    }
}

/// A demand-driven supply of contact events for one scenario.
///
/// The engine calls [`ContactSource::next_window`] with a monotonically
/// increasing `until`; each call must append every not-yet-emitted event of
/// contacts *starting* before `until` (their `Down` events may lie beyond
/// `until` — emit them together with the `Up` so a contact is never left
/// dangling). When `until` reaches [`ContactSource::duration`], the source
/// finalizes: contacts still open at the horizon emit their `Down` at
/// `duration`. See the module docs for the intra-window ordering contract.
pub trait ContactSource: Send {
    /// Number of nodes in the scenario.
    fn n_nodes(&self) -> u32;

    /// Scenario horizon in seconds.
    fn duration(&self) -> f64;

    /// Appends to `out` all pending events for contacts starting in
    /// `[previous until, until)`, in the documented order. Called with
    /// nondecreasing `until`; `until == duration` finalizes the source.
    fn next_window(&mut self, until: f64, out: &mut Vec<ContactEvent>);

    /// Preferred window length in simulated seconds: the engine stays about
    /// this far ahead of the event clock. Trades queue occupancy against
    /// call overhead; correctness does not depend on it.
    fn window_hint(&self) -> f64 {
        60.0
    }
}

/// Replays a recorded [`ContactTrace`] as a [`ContactSource`].
///
/// Contacts are emitted in trace index order (the `(start, pair)` sort
/// order), each `Up` immediately followed by its `Down` — precisely the
/// sequence-number assignment the engine's historic bulk loader produced,
/// so replay runs are bit-identical to pre-streaming builds.
#[derive(Debug)]
pub struct TraceReplaySource {
    n_nodes: u32,
    duration: f64,
    contacts: Vec<Contact>,
    /// Index of the first contact not yet emitted.
    next: usize,
}

impl TraceReplaySource {
    /// Builds a replay source from a validated trace.
    ///
    /// # Panics
    /// Panics if the trace fails validation, naming the offending contact
    /// index and the contact itself.
    pub fn new(trace: &ContactTrace) -> Self {
        if let Err(e) = trace.validate() {
            let idx = e.contact_idx();
            panic!(
                "invalid contact trace: {e:?} (contact #{idx}: {:?})",
                trace.contacts.get(idx)
            );
        }
        TraceReplaySource {
            n_nodes: trace.n_nodes,
            duration: trace.duration,
            contacts: trace.contacts.clone(),
            next: 0,
        }
    }
}

impl ContactSource for TraceReplaySource {
    fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn next_window(&mut self, until: f64, out: &mut Vec<ContactEvent>) {
        while let Some(c) = self.contacts.get(self.next) {
            if c.start.as_secs() >= until && until < self.duration {
                break;
            }
            out.push(ContactEvent::Up {
                pair: c.pair,
                at: c.start,
            });
            out.push(ContactEvent::Down {
                pair: c.pair,
                at: c.end,
            });
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ContactTrace {
        ContactTrace::new(
            4,
            100.0,
            vec![
                Contact::new(0, 1, 10.0, 20.0),
                Contact::new(2, 3, 10.0, 90.0),
                Contact::new(1, 2, 55.0, 100.0),
            ],
        )
    }

    #[test]
    fn replay_emits_in_trace_order_per_window() {
        let mut src = TraceReplaySource::new(&trace());
        assert_eq!(src.n_nodes(), 4);
        assert_eq!(src.duration(), 100.0);
        let mut out = Vec::new();
        src.next_window(50.0, &mut out);
        // Both t=10 contacts: Up then Down each, in (start, pair) order.
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].at(), SimTime::secs(10.0));
        assert!(matches!(out[0], ContactEvent::Up { .. }));
        assert!(matches!(out[1], ContactEvent::Down { .. }));
        out.clear();
        src.next_window(100.0, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        src.next_window(100.0, &mut out);
        assert!(out.is_empty(), "source is exhausted");
    }

    #[test]
    fn final_window_emits_everything() {
        let mut src = TraceReplaySource::new(&trace());
        let mut out = Vec::new();
        src.next_window(100.0, &mut out);
        assert_eq!(out.len(), 6);
    }

    #[test]
    #[should_panic(expected = "invalid contact trace")]
    fn replay_rejects_invalid_trace() {
        let bad = ContactTrace::new(1, 100.0, vec![Contact::new(0, 5, 1.0, 2.0)]);
        let _ = TraceReplaySource::new(&bad);
    }
}
