//! The observation layer: simulation events, observers and probes.
//!
//! The engine no longer hard-codes what gets measured. Every observable
//! occurrence — a message generated, forwarded, delivered, dropped, a
//! contact starting or ending, a periodic occupancy sample — is a
//! [`SimEvent`], and anything that wants to measure a run implements
//! [`SimObserver`] and is attached with
//! [`Simulation::add_observer`](crate::Simulation::add_observer). The
//! default observer is [`SimStats`](crate::SimStats) itself: the engine
//! folds every event into its stats through the exact same
//! [`SimStats::apply`](crate::SimStats::apply) the observer impl uses, so an
//! external `SimStats` replica fed from the event stream is bitwise
//! identical to the engine's own (a property test pins this).
//!
//! Observers receive events in **batches**: the engine accumulates events in
//! a reused scratch buffer and dispatches a slice once it fills (and at run
//! end), so adding observers costs a slice iteration, not a virtual call per
//! event. Each event carries its own timestamp, which makes batch timing
//! invisible to observers — a probe's output is a pure function of the event
//! stream, and therefore exactly as deterministic as the simulation.
//!
//! Two probes ship with the crate:
//!
//! * [`TimeSeriesProbe`] — samples cumulative delivery / relay / drop
//!   counters and global buffer occupancy at a configurable cadence,
//!   yielding the delivery-ratio-over-time and overhead-over-time curves the
//!   paper plots, from a *single* run;
//! * [`LatencyHistogramProbe`] — collects per-delivery end-to-end latencies
//!   into a log₂-bucketed histogram with exact p50/p95/p99 (percentiles are
//!   computed from the stored values, the buckets are the compact view).
//!
//! ```
//! use dtn_sim::observe::{TimeSeriesProbe, TimeSeries};
//! use dtn_sim::prelude::*;
//!
//! struct Direct;
//! impl Router for Direct {
//!     fn label(&self) -> &'static str { "direct" }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//!     fn pick_transfer(&mut self, ctx: &mut ContactCtx) -> Option<TransferPlan> {
//!         ctx.buf.iter()
//!             .find(|e| e.msg.dst == ctx.peer && !ctx.sent.contains(&e.msg.id))
//!             .map(|e| TransferPlan::forward(e.msg.id))
//!     }
//! }
//!
//! let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
//! let workload = vec![MessageSpec {
//!     create_at: SimTime::secs(1.0), src: NodeId(0), dst: NodeId(1),
//!     size: 1000, ttl: 50.0,
//! }];
//! let mut sim = Simulation::new(&trace, workload, SimConfig::paper(0), |_, _| Box::new(Direct));
//! sim.add_observer(Box::new(TimeSeriesProbe::new(20.0)));
//! let (stats, observers) = sim.run_observed();
//! assert_eq!(stats.delivered, 1);
//! let ts: &TimeSeries = observers[0]
//!     .as_any()
//!     .downcast_ref::<TimeSeriesProbe>()
//!     .unwrap()
//!     .series();
//! // The curve ends at the horizon with the full delivery count.
//! assert_eq!(ts.samples.last().unwrap().delivered, 1);
//! ```

use crate::buffer::DropReason;
use crate::ids::{MessageId, NodeId, NodePair};
use crate::time::SimTime;
use std::any::Any;

/// One observable simulation occurrence, stamped with its time.
///
/// The event stream is *complete* with respect to [`SimStats`]: folding every
/// event through [`SimStats::apply`] reproduces the run's statistics exactly
/// (only router-side control-byte accounting bypasses the stream, because it
/// is the routers', not the engine's, bookkeeping).
///
/// [`SimStats`]: crate::SimStats
/// [`SimStats::apply`]: crate::SimStats::apply
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimEvent {
    /// The workload generated `msg` at `src`. Emitted before the source
    /// buffers it, so a full source buffer follows up with a
    /// [`SimEvent::Dropped`] for the newborn message.
    Generated {
        /// When the message was created.
        at: SimTime,
        /// The generated message.
        msg: MessageId,
        /// The originating node.
        src: NodeId,
    },
    /// A transfer of `msg` to a non-destination node completed (a relay).
    /// `duplicate` marks a wasted relay: the receiver obtained the message
    /// from a third party while this transfer was in flight and discards it.
    Forwarded {
        /// Completion time of the transfer.
        at: SimTime,
        /// The relayed message.
        msg: MessageId,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Whether the receiver already held the message (wasted relay).
        duplicate: bool,
    },
    /// A completed transfer was refused: the receiver could not make room.
    /// Counts as a relay (the bytes crossed the link) *and* a refusal.
    Refused {
        /// Completion time of the transfer.
        at: SimTime,
        /// The refused message.
        msg: MessageId,
        /// Sending node.
        from: NodeId,
        /// Receiving (refusing) node.
        to: NodeId,
    },
    /// A replica of `msg` arrived at its destination. `first` is true for
    /// the arrival that counts as *the* delivery; later replicas are
    /// duplicates. Counts as a relay.
    Delivered {
        /// Arrival time.
        at: SimTime,
        /// The delivered message.
        msg: MessageId,
        /// The last-hop sender.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// When the message was created (so observers can derive latency).
        created: SimTime,
        /// Hop count of the delivering replica.
        hops: u32,
        /// Whether this is the first arrival (the delivery).
        first: bool,
    },
    /// A message left a buffer (or, for a newborn at a full source, never
    /// entered it) for `reason`.
    Dropped {
        /// Drop time.
        at: SimTime,
        /// The dropped message.
        msg: MessageId,
        /// The node dropping it.
        node: NodeId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// An in-flight transfer was wasted: the carrying contact ended
    /// mid-flight, or the sender lost (or let expire) the message while it
    /// was on the air.
    Aborted {
        /// Abort time.
        at: SimTime,
        /// The message that was in flight.
        msg: MessageId,
        /// Sending node of the aborted transfer.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A contact between `pair` came up.
    ContactStart {
        /// Contact start time.
        at: SimTime,
        /// The node pair in contact.
        pair: NodePair,
    },
    /// The contact between `pair` went down.
    ContactEnd {
        /// Contact end time.
        at: SimTime,
        /// The node pair losing contact.
        pair: NodePair,
    },
    /// A periodic probe sample carrying global buffer occupancy, scheduled
    /// by the engine at the cadence observers request via
    /// [`SimObserver::sample_interval`] (plus one final tick at the
    /// horizon). Pure observation: ticks never mutate simulation state, so
    /// attaching probes cannot change a run's [`SimStats`].
    ///
    /// [`SimStats`]: crate::SimStats
    Tick {
        /// Sample time.
        at: SimTime,
        /// Total bytes buffered across all nodes.
        buffered_bytes: u64,
        /// Total messages buffered across all nodes.
        buffered_msgs: u64,
    },
}

impl SimEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            SimEvent::Generated { at, .. }
            | SimEvent::Forwarded { at, .. }
            | SimEvent::Refused { at, .. }
            | SimEvent::Delivered { at, .. }
            | SimEvent::Dropped { at, .. }
            | SimEvent::Aborted { at, .. }
            | SimEvent::ContactStart { at, .. }
            | SimEvent::ContactEnd { at, .. }
            | SimEvent::Tick { at, .. } => at,
        }
    }
}

/// A consumer of the simulation event stream.
///
/// Observers are attached before the run starts
/// ([`Simulation::add_observer`](crate::Simulation::add_observer)) and
/// receive the full event stream in order, delivered as batches from a
/// reused scratch buffer. Because every event is timestamped, batch
/// boundaries carry no information: an observer's output must be (and, for
/// the in-tree probes, is) a pure function of the stream.
///
/// Observers are `Send` so the engine can hand the whole set to a companion
/// drain thread ([`DrainMode::Ring`]) — batch delivery then happens off the
/// simulation thread, through the bounded lock-free ring in [`crate::ring`],
/// with the exact same call sequence (`on_events` in stream order, one final
/// `on_end`) as inline dispatch.
pub trait SimObserver: Any + Send {
    /// Receives the next slice of the event stream, in occurrence order.
    fn on_events(&mut self, batch: &[SimEvent]);

    /// Called exactly once when the run ends, after the final batch (and a
    /// final [`SimEvent::Tick`]) has been delivered. `final_stats` is the
    /// engine's end-of-run counters; it exists for the one statistic the
    /// event stream cannot carry — router-side control accounting
    /// (`control_bytes`), which routers write straight into
    /// [`SimStats`](crate::stats::SimStats)
    /// via their contexts. Everything else in it is derivable from the
    /// stream.
    fn on_end(&mut self, _now: SimTime, _final_stats: &crate::stats::StatsSnapshot) {}

    /// If `Some(dt)`, the engine schedules [`SimEvent::Tick`] samples every
    /// `dt` seconds for this observer (ticks are broadcast, so observers
    /// must filter by their own cadence — see [`TimeSeriesProbe`]).
    fn sample_interval(&self) -> Option<f64> {
        None
    }

    /// Upcast for post-run result extraction by downcasting.
    fn as_any(&self) -> &dyn Any;
}

/// One sample of a [`TimeSeries`]: the cumulative counters at time `t` plus
/// the instantaneous global buffer occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TsSample {
    /// Sample time in seconds.
    pub t: f64,
    /// Messages generated by time `t`.
    pub created: u64,
    /// Messages delivered (first arrivals) by time `t`.
    pub delivered: u64,
    /// Completed transfers (relays, including delivery hops) by time `t`.
    pub relayed: u64,
    /// Messages dropped (buffer, TTL or protocol) by time `t`.
    pub dropped: u64,
    /// Total bytes buffered across all nodes at time `t`.
    pub buffered_bytes: u64,
    /// Total messages buffered across all nodes at time `t`.
    pub buffered_msgs: u64,
}

impl TsSample {
    /// Delivery ratio at this sample; `0` when nothing was created yet.
    pub fn delivery_ratio(&self) -> f64 {
        if self.created == 0 {
            0.0
        } else {
            self.delivered as f64 / self.created as f64
        }
    }

    /// ONE-style overhead ratio at this sample; `0` before any delivery.
    pub fn overhead_ratio(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            (self.relayed.saturating_sub(self.delivered)) as f64 / self.delivered as f64
        }
    }
}

/// The output of a [`TimeSeriesProbe`]: delivery / overhead / occupancy
/// curves sampled at cadence `dt` (plus a final sample at the horizon).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    /// Requested sampling cadence in seconds.
    pub dt: f64,
    /// Samples in time order, starting at `t = 0`.
    pub samples: Vec<TsSample>,
}

impl TimeSeries {
    /// Largest global buffer occupancy seen at any sample, in bytes.
    pub fn peak_buffered_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.buffered_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Comparison tolerance for sample-boundary crossing, absorbing float noise
/// in repeated `now + dt` event scheduling.
const SAMPLE_EPS: f64 = 1e-9;

/// Samples delivery-ratio / overhead / buffer-occupancy curves at a fixed
/// cadence from the event stream — the probe behind every
/// delivery-over-time figure, replacing N re-runs with one.
///
/// The probe folds cumulative counters from the stream and snapshots them at
/// every [`SimEvent::Tick`] that crosses its own `dt` boundary (ticks are
/// broadcast to all observers, so cadences of different probes coexist), plus
/// one final sample at the horizon. Output is a pure function of the event
/// stream: bitwise deterministic whatever the thread count or batch size.
#[derive(Debug)]
pub struct TimeSeriesProbe {
    next: f64,
    acc: TsSample,
    series: TimeSeries,
}

impl TimeSeriesProbe {
    /// A probe sampling every `dt` seconds.
    ///
    /// # Panics
    /// Panics unless `dt` is finite and positive.
    pub fn new(dt: f64) -> Self {
        assert!(
            dt.is_finite() && dt > 0.0,
            "time-series cadence must be a positive number of seconds, got {dt}"
        );
        TimeSeriesProbe {
            next: dt,
            acc: TsSample::default(),
            series: TimeSeries {
                dt,
                // The curve starts at the origin: nothing has happened at t=0.
                samples: vec![TsSample::default()],
            },
        }
    }

    /// The samples collected so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the probe, yielding its samples.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

impl SimObserver for TimeSeriesProbe {
    fn on_events(&mut self, batch: &[SimEvent]) {
        for ev in batch {
            match *ev {
                SimEvent::Generated { .. } => self.acc.created += 1,
                SimEvent::Forwarded { .. } | SimEvent::Refused { .. } => self.acc.relayed += 1,
                SimEvent::Delivered { first, .. } => {
                    self.acc.relayed += 1;
                    if first {
                        self.acc.delivered += 1;
                    }
                }
                SimEvent::Dropped { .. } => self.acc.dropped += 1,
                SimEvent::Tick {
                    at,
                    buffered_bytes,
                    buffered_msgs,
                } => {
                    self.acc.buffered_bytes = buffered_bytes;
                    self.acc.buffered_msgs = buffered_msgs;
                    let t = at.as_secs();
                    if t + SAMPLE_EPS >= self.next {
                        self.series.samples.push(TsSample { t, ..self.acc });
                        // The next boundary is one cadence past the sample
                        // just taken. On this probe's own engine tick chain
                        // (which accumulates `+ dt` identically) this equals
                        // stepping the grid; when ticks arrive late or
                        // sparsely (another probe's cadence, the end-of-run
                        // tick) it jumps past the skipped boundaries in
                        // O(1) instead of looping over them.
                        self.next = t + self.series.dt;
                    }
                }
                SimEvent::Aborted { .. }
                | SimEvent::ContactStart { .. }
                | SimEvent::ContactEnd { .. } => {}
            }
        }
    }

    fn on_end(&mut self, now: SimTime, _final_stats: &crate::stats::StatsSnapshot) {
        // Close the curve at the horizon if the last cadence boundary fell
        // short of it (the engine emits a final Tick before calling this, so
        // occupancy in `acc` is current).
        let t = now.as_secs();
        if self
            .series
            .samples
            .last()
            .is_none_or(|s| s.t + SAMPLE_EPS < t)
        {
            self.series.samples.push(TsSample { t, ..self.acc });
        }
    }

    fn sample_interval(&self) -> Option<f64> {
        Some(self.series.dt)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The output of a [`LatencyHistogramProbe`]: a log₂-bucketed latency
/// histogram with exact percentiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyHistogram {
    /// Number of deliveries observed (duplicates excluded).
    pub count: u64,
    /// Exact median latency in seconds (`0` when nothing was delivered).
    pub p50: f64,
    /// Exact 95th-percentile latency in seconds.
    pub p95: f64,
    /// Exact 99th-percentile latency in seconds.
    pub p99: f64,
    /// Largest observed latency in seconds.
    pub max: f64,
    /// Log₂ buckets: `buckets[i]` counts deliveries with latency in
    /// `[2^i − 1, 2^{i+1} − 1)` seconds (bucket 0 is `[0, 1)`). The vector
    /// ends at the last non-empty bucket; counts sum to `count`.
    pub buckets: Vec<u64>,
}

impl LatencyHistogram {
    /// The exact nearest-rank percentile `p` (in `[0, 100]`) of `sorted`
    /// ascending latencies — delegates to the crate's single rank rule,
    /// [`report::percentile_sorted`](crate::report::percentile_sorted), so
    /// the probe and the post-run helpers can never disagree.
    fn rank(sorted: &[f64], p: f64) -> f64 {
        crate::report::percentile_sorted(sorted, p).unwrap_or(0.0)
    }
}

/// Collects end-to-end latencies of first deliveries into a
/// [`LatencyHistogram`].
///
/// Latencies are stored exactly (the delivered count is bounded by the
/// workload size), so the percentiles are *exact*, not bucket
/// interpolations; the log₂ buckets are the compact distribution view the
/// report layer serializes.
#[derive(Debug, Default)]
pub struct LatencyHistogramProbe {
    latencies: Vec<f64>,
    summary: LatencyHistogram,
}

impl LatencyHistogramProbe {
    /// An empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// The summary; complete once the run has ended.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.summary
    }

    /// Consumes the probe, yielding the summary.
    pub fn into_histogram(self) -> LatencyHistogram {
        self.summary
    }

    /// The log₂ bucket index of a latency in seconds.
    fn bucket(latency: f64) -> usize {
        // +1 keeps sub-second latencies in bucket 0 without a log of zero.
        (latency.max(0.0) + 1.0).log2().floor() as usize
    }
}

impl SimObserver for LatencyHistogramProbe {
    fn on_events(&mut self, batch: &[SimEvent]) {
        for ev in batch {
            if let SimEvent::Delivered {
                at,
                created,
                first: true,
                ..
            } = *ev
            {
                self.latencies.push(at - created);
            }
        }
    }

    fn on_end(&mut self, _now: SimTime, _final_stats: &crate::stats::StatsSnapshot) {
        self.latencies.sort_by(f64::total_cmp);
        let lats = &self.latencies;
        let mut buckets = Vec::new();
        for &l in lats {
            let idx = Self::bucket(l);
            if idx >= buckets.len() {
                buckets.resize(idx + 1, 0u64);
            }
            buckets[idx] += 1;
        }
        self.summary = LatencyHistogram {
            count: lats.len() as u64,
            p50: LatencyHistogram::rank(lats, 50.0),
            p95: LatencyHistogram::rank(lats, 95.0),
            p99: LatencyHistogram::rank(lats, 99.0),
            max: lats.last().copied().unwrap_or(0.0),
            buckets,
        };
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// An observer retaining the raw event stream — test and debugging aid.
#[derive(Debug, Default)]
pub struct EventLog {
    /// Every event received, in order.
    pub events: Vec<SimEvent>,
}

impl SimObserver for EventLog {
    fn on_events(&mut self, batch: &[SimEvent]) {
        self.events.extend_from_slice(batch);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Where observer batches are dispatched.
///
/// Purely an *execution* knob: every event carries its own timestamp and the
/// drain preserves batch order and the end-of-run callback sequence, so
/// stats, probe outputs and TRACE/1.0 artifacts are bitwise identical in
/// both modes (property-tested in the bench crate). Like the worker-thread
/// count, the drain mode is therefore never part of a cell's identity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DrainMode {
    /// Dispatch batches to observers on the simulation thread (the
    /// default): no extra thread, no handoff, observer cost rides the hot
    /// path.
    #[default]
    Inline,
    /// Publish batches into a bounded lock-free ring ([`crate::ring`]) and
    /// fold them into the observers on a companion thread. The simulation
    /// thread pays one pointer publish per batch instead of the observer
    /// work; the end of the run joins the drain deterministically, so
    /// [`Simulation::run_observed`](crate::Simulation::run_observed) hands
    /// back fully-folded observers exactly as in inline mode.
    Ring {
        /// In-flight batch capacity; 1 is legal (rendezvous). A full ring
        /// backpressures the simulation thread rather than queueing without
        /// bound.
        capacity: usize,
    },
}

/// One message on the drain ring: the event batches in stream order, then
/// exactly one end-of-run marker.
enum DrainMsg {
    /// The next slice of the event stream.
    Batch(Vec<SimEvent>),
    /// The run ended at this time with these final counters.
    End(SimTime, crate::stats::StatsSnapshot),
}

/// The engine's handle on a running observer drain thread: the producer side
/// of the batch ring plus the join handle that returns the observers once
/// the stream (and the end-of-run callback) has been fully folded.
pub(crate) struct ObserverDrain {
    tx: crate::ring::Producer<DrainMsg>,
    handle: Option<std::thread::JoinHandle<Vec<Box<dyn SimObserver>>>>,
}

impl ObserverDrain {
    /// Moves `observers` to a companion thread that folds ring batches into
    /// them. `capacity` is clamped to at least one slot.
    pub(crate) fn spawn(mut observers: Vec<Box<dyn SimObserver>>, capacity: usize) -> Self {
        let (tx, mut rx) = crate::ring::channel::<DrainMsg>(capacity.max(1));
        let handle = std::thread::Builder::new()
            .name("dtn-sim-observer-drain".into())
            .spawn(move || {
                while let Some(msg) = rx.pop() {
                    match msg {
                        DrainMsg::Batch(batch) => {
                            for obs in &mut observers {
                                obs.on_events(&batch);
                            }
                        }
                        DrainMsg::End(now, final_stats) => {
                            for obs in &mut observers {
                                obs.on_end(now, &final_stats);
                            }
                        }
                    }
                }
                observers
            })
            .expect("spawn observer drain thread");
        ObserverDrain {
            tx,
            handle: Some(handle),
        }
    }

    /// Publishes one event batch, blocking on a full ring (backpressure). If
    /// the drain thread died (an observer panicked), the original panic is
    /// re-raised here on the simulation thread — mid-run, loudly, never a
    /// hang.
    pub(crate) fn send_batch(&mut self, batch: Vec<SimEvent>) {
        if self.tx.push(DrainMsg::Batch(batch)).is_err() {
            let handle = self.handle.take().expect("drain joined once");
            match handle.join() {
                Err(panic) => std::panic::resume_unwind(panic),
                Ok(_) => unreachable!("drain thread exited before the ring closed"),
            }
        }
    }

    /// Publishes the end-of-run marker, closes the ring and joins the drain
    /// thread, returning the observers in their original attachment order —
    /// the deterministic barrier that makes ring drain indistinguishable
    /// from inline dispatch to every caller. A drain-side panic is re-raised
    /// here.
    pub(crate) fn finish(
        mut self,
        now: SimTime,
        final_stats: crate::stats::StatsSnapshot,
    ) -> Vec<Box<dyn SimObserver>> {
        // A push failure means the drain thread is already dead; the join
        // below surfaces its panic either way.
        let _ = self.tx.push(DrainMsg::End(now, final_stats));
        let handle = self.handle.take().expect("drain joined once");
        drop(self); // closes the ring: the drain loop exits after End
        match handle.join() {
            Ok(observers) => observers,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: f64, bytes: u64, msgs: u64) -> SimEvent {
        SimEvent::Tick {
            at: SimTime::secs(t),
            buffered_bytes: bytes,
            buffered_msgs: msgs,
        }
    }

    fn delivered(t: f64, created: f64, first: bool) -> SimEvent {
        SimEvent::Delivered {
            at: SimTime::secs(t),
            msg: MessageId(0),
            from: NodeId(0),
            to: NodeId(1),
            created: SimTime::secs(created),
            hops: 1,
            first,
        }
    }

    #[test]
    fn timeseries_samples_at_cadence_and_closes_at_end() {
        let mut p = TimeSeriesProbe::new(10.0);
        p.on_events(&[
            SimEvent::Generated {
                at: SimTime::secs(1.0),
                msg: MessageId(0),
                src: NodeId(0),
            },
            tick(10.0, 500, 1),
            delivered(12.0, 1.0, true),
            tick(20.0, 0, 0),
        ]);
        p.on_end(SimTime::secs(25.0), &crate::stats::StatsSnapshot::default());
        let s = p.series();
        assert_eq!(s.samples.len(), 4, "origin, 10, 20, final 25");
        assert_eq!(s.samples[0].t, 0.0);
        assert_eq!(s.samples[1].t, 10.0);
        assert_eq!(s.samples[1].created, 1);
        assert_eq!(s.samples[1].delivered, 0);
        assert_eq!(s.samples[1].buffered_bytes, 500);
        assert_eq!(s.samples[2].delivered, 1);
        assert_eq!(s.samples[2].delivery_ratio(), 1.0);
        assert_eq!(s.samples[3].t, 25.0, "forced final sample at the horizon");
        assert_eq!(s.peak_buffered_bytes(), 500);
    }

    #[test]
    fn timeseries_ignores_offcadence_ticks_and_batch_boundaries() {
        // Feeding the same events in one batch or many must not change the
        // output, and ticks between boundaries only refresh occupancy.
        let events = [
            tick(4.0, 100, 1),
            tick(10.0, 200, 2),
            tick(14.0, 300, 3),
            tick(20.0, 400, 4),
        ];
        let mut one = TimeSeriesProbe::new(10.0);
        one.on_events(&events);
        one.on_end(SimTime::secs(20.0), &crate::stats::StatsSnapshot::default());
        let mut many = TimeSeriesProbe::new(10.0);
        for ev in events {
            many.on_events(&[ev]);
        }
        many.on_end(SimTime::secs(20.0), &crate::stats::StatsSnapshot::default());
        assert_eq!(one.series(), many.series());
        let ts: Vec<f64> = one.series().samples.iter().map(|s| s.t).collect();
        assert_eq!(ts, vec![0.0, 10.0, 20.0]);
        assert_eq!(one.series().samples[2].buffered_bytes, 400);
    }

    #[test]
    fn timeseries_catches_up_after_sparse_ticks() {
        let mut p = TimeSeriesProbe::new(10.0);
        // A single late tick crosses several boundaries: one sample, and the
        // boundary cursor jumps one cadence past it (to 45), so the tick at
        // 40 only refreshes occupancy.
        p.on_events(&[tick(35.0, 7, 1), tick(40.0, 8, 2), tick(45.0, 9, 3)]);
        let ts: Vec<f64> = p.series().samples.iter().map(|s| s.t).collect();
        assert_eq!(ts, vec![0.0, 35.0, 45.0]);
    }

    #[test]
    #[should_panic]
    fn timeseries_rejects_zero_cadence() {
        let _ = TimeSeriesProbe::new(0.0);
    }

    /// A cadence far below the tick spacing degrades to sampling every tick
    /// in O(1) per tick — the boundary cursor jumps, it never loops over
    /// skipped boundaries (the engine additionally refuses to schedule
    /// sub-millisecond tick chains).
    #[test]
    fn timeseries_survives_subresolution_cadence() {
        let mut p = TimeSeriesProbe::new(1e-300);
        p.on_events(&[tick(1.0, 10, 1), tick(2.0, 20, 2)]);
        p.on_end(SimTime::secs(3.0), &crate::stats::StatsSnapshot::default());
        let s = p.series();
        // Origin, both ticks, and the forced final sample.
        let ts: Vec<f64> = s.samples.iter().map(|x| x.t).collect();
        assert_eq!(ts, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let mut p = LatencyHistogramProbe::new();
        // Latencies 1..=100 s via create_at = 0.
        for i in 1..=100 {
            p.on_events(&[delivered(f64::from(i), 0.0, true)]);
        }
        // Duplicates are excluded.
        p.on_events(&[delivered(1000.0, 0.0, false)]);
        p.on_end(
            SimTime::secs(1000.0),
            &crate::stats::StatsSnapshot::default(),
        );
        let h = p.histogram();
        assert_eq!(h.count, 100);
        // Nearest-rank on 1..=100: rank(50) = round(0.5 · 99) = 50 → 51.
        assert_eq!(h.p50, 51.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogramProbe::bucket(0.0), 0);
        assert_eq!(LatencyHistogramProbe::bucket(0.99), 0);
        assert_eq!(LatencyHistogramProbe::bucket(1.0), 1);
        assert_eq!(LatencyHistogramProbe::bucket(2.9), 1);
        assert_eq!(LatencyHistogramProbe::bucket(3.0), 2);
        assert_eq!(LatencyHistogramProbe::bucket(7.0), 3);
        assert_eq!(LatencyHistogramProbe::bucket(-1.0), 0, "clamped at zero");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let mut p = LatencyHistogramProbe::new();
        p.on_end(SimTime::secs(10.0), &crate::stats::StatsSnapshot::default());
        let h = p.histogram();
        assert_eq!(h.count, 0);
        assert_eq!(h.p50, 0.0);
        assert!(h.buckets.is_empty());
    }
}
