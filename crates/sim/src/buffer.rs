//! Per-node message buffers with byte-capacity accounting.
//!
//! Storage is structure-of-arrays: the fields the hot paths scan —
//! membership (`ids`), expiry, routing metadata — live in parallel columns,
//! and the full [`Message`] sits in a cold column touched only when a scan
//! has already matched. A membership probe during a contact then walks a
//! dense `Vec<MessageId>` (4 bytes/entry) instead of striding over 48-byte
//! entries, which is what keeps per-contact cache traffic flat as node and
//! message counts grow. Buffers hold at most a few tens of messages in the
//! paper's scenarios (1 MB capacity, 25 KB messages), so linear lookups stay
//! the right call — now over a column an order of magnitude denser.
//!
//! Entries keep their insertion order; "oldest first" orderings
//! ([`Buffer::summary_diff`], [`Buffer::destined_to`]) are part of the
//! semantics, not an implementation accident.

use crate::ids::{MessageId, NodeId};
use crate::message::Message;
use crate::time::SimTime;

/// A buffered message together with its per-node routing metadata.
///
/// With column storage this is a *view* assembled on access, not the unit of
/// storage; it stays `Copy` and is returned by value.
#[derive(Clone, Copy, Debug)]
pub struct BufferEntry {
    /// The message itself.
    pub msg: Message,
    /// Quota-routing copy count: how many logical replicas this node holds.
    /// Always ≥ 1 while the entry is buffered.
    pub copies: u32,
    /// When this node obtained the message (creation or reception time).
    pub received_at: SimTime,
    /// Number of hops the message has taken to reach this node (0 at source).
    pub hops: u32,
}

/// Why a message left a buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// TTL expired.
    Expired,
    /// Evicted to make room for an incoming message.
    BufferFull,
    /// Forwarded away: the node relinquished custody (not counted as a drop
    /// in statistics).
    ForwardedAway,
    /// Removed by the protocol (e.g. MaxProp ack purge).
    Protocol,
}

/// A byte-capacity-bounded message store, laid out as parallel columns
/// indexed by buffer slot (insertion order).
#[derive(Clone, Debug, Default)]
pub struct Buffer {
    capacity: u64,
    used: u64,
    /// Membership column: the only data a contains/diff scan touches.
    ids: Vec<MessageId>,
    /// Absolute expiry instants (`created + ttl`), for TTL sweeps.
    expiry: Vec<SimTime>,
    copies: Vec<u32>,
    received_at: Vec<SimTime>,
    hops: Vec<u32>,
    /// Cold column: full messages, read only after a scan already matched.
    msgs: Vec<Message>,
}

impl Buffer {
    /// Creates an empty buffer with `capacity` bytes of space.
    pub fn new(capacity: u64) -> Self {
        Buffer {
            capacity,
            ..Buffer::default()
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of buffered messages.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the buffer holds no messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the buffer holds message `id`.
    #[inline]
    pub fn contains(&self, id: MessageId) -> bool {
        self.ids.contains(&id)
    }

    /// Assembles the entry view at slot `k`.
    #[inline]
    fn entry_at(&self, k: usize) -> BufferEntry {
        BufferEntry {
            msg: self.msgs[k],
            copies: self.copies[k],
            received_at: self.received_at[k],
            hops: self.hops[k],
        }
    }

    /// The slot of `id`, if buffered.
    #[inline]
    fn slot(&self, id: MessageId) -> Option<usize> {
        self.ids.iter().position(|&i| i == id)
    }

    /// The entry for `id`, if buffered.
    #[inline]
    pub fn get(&self, id: MessageId) -> Option<BufferEntry> {
        self.slot(id).map(|k| self.entry_at(k))
    }

    /// Mutable access to the copy count of `id`, if buffered — the only
    /// per-entry field protocols mutate in place.
    #[inline]
    pub fn copies_mut(&mut self, id: MessageId) -> Option<&mut u32> {
        let k = self.slot(id)?;
        Some(&mut self.copies[k])
    }

    /// Iterates over buffered entries in insertion order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = BufferEntry> + '_ {
        (0..self.len()).map(|k| self.entry_at(k))
    }

    /// The ids of all buffered messages, in insertion order.
    pub fn ids(&self) -> Vec<MessageId> {
        self.ids.clone()
    }

    /// Whether an entry of `size` bytes would fit right now.
    #[inline]
    pub fn fits(&self, size: u32) -> bool {
        u64::from(size) <= self.free()
    }

    /// Inserts an entry.
    ///
    /// Returns `Err(entry)` without modifying the buffer when there is not
    /// enough free space or the message is already buffered (duplicate
    /// insertion is a protocol error the engine guards against).
    pub fn insert(&mut self, entry: BufferEntry) -> Result<(), BufferEntry> {
        if !self.fits(entry.msg.size) || self.contains(entry.msg.id) {
            return Err(entry);
        }
        debug_assert!(entry.copies >= 1);
        self.used += u64::from(entry.msg.size);
        self.ids.push(entry.msg.id);
        self.expiry.push(entry.msg.expiry());
        self.copies.push(entry.copies);
        self.received_at.push(entry.received_at);
        self.hops.push(entry.hops);
        self.msgs.push(entry.msg);
        Ok(())
    }

    /// Removes slot `k` from every column, returning the entry view.
    fn remove_at(&mut self, k: usize) -> BufferEntry {
        let entry = self.entry_at(k);
        self.ids.remove(k);
        self.expiry.remove(k);
        self.copies.remove(k);
        self.received_at.remove(k);
        self.hops.remove(k);
        self.msgs.remove(k);
        self.used -= u64::from(entry.msg.size);
        entry
    }

    /// Removes and returns the entry for `id`.
    pub fn remove(&mut self, id: MessageId) -> Option<BufferEntry> {
        let k = self.slot(id)?;
        Some(self.remove_at(k))
    }

    /// Removes every expired message, invoking `on_drop` for each. Only the
    /// expiry column is scanned; other columns are touched per actual drop.
    pub fn sweep_expired(&mut self, now: SimTime, mut on_drop: impl FnMut(&BufferEntry)) {
        let mut k = 0;
        while k < self.expiry.len() {
            if now > self.expiry[k] {
                let entry = self.remove_at(k);
                on_drop(&entry);
            } else {
                k += 1;
            }
        }
    }

    /// Ids of messages buffered here but absent from `peer` — the classic
    /// epidemic "summary vector" difference, oldest first. Touches only the
    /// two membership columns.
    pub fn summary_diff(&self, peer: &Buffer) -> Vec<MessageId> {
        self.ids
            .iter()
            .filter(|&&id| !peer.contains(id))
            .copied()
            .collect()
    }

    /// Ids of messages destined to `dst` and buffered here, oldest first.
    pub fn destined_to(&self, dst: NodeId) -> Vec<MessageId> {
        self.msgs
            .iter()
            .filter(|m| m.dst == dst)
            .map(|m| m.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn msg(id: u32, size: u32, created: f64, ttl: f64) -> Message {
        Message {
            id: MessageId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            created: SimTime::secs(created),
            ttl,
        }
    }

    fn entry(id: u32, size: u32) -> BufferEntry {
        BufferEntry {
            msg: msg(id, size, 0.0, 100.0),
            copies: 1,
            received_at: SimTime::ZERO,
            hops: 0,
        }
    }

    #[test]
    fn insert_and_capacity_accounting() {
        let mut b = Buffer::new(100);
        assert!(b.insert(entry(0, 60)).is_ok());
        assert_eq!(b.used(), 60);
        assert_eq!(b.free(), 40);
        assert!(b.insert(entry(1, 50)).is_err(), "over capacity");
        assert!(b.insert(entry(1, 40)).is_ok());
        assert_eq!(b.free(), 0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut b = Buffer::new(1000);
        assert!(b.insert(entry(3, 10)).is_ok());
        assert!(b.insert(entry(3, 10)).is_err());
        assert_eq!(b.len(), 1);
        assert_eq!(b.used(), 10);
    }

    #[test]
    fn remove_restores_space() {
        let mut b = Buffer::new(100);
        b.insert(entry(0, 70)).unwrap();
        assert!(b.remove(MessageId(9)).is_none());
        let e = b.remove(MessageId(0)).unwrap();
        assert_eq!(e.msg.id, MessageId(0));
        assert_eq!(b.used(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn sweep_drops_only_expired() {
        let mut b = Buffer::new(1000);
        b.insert(BufferEntry {
            msg: msg(0, 10, 0.0, 50.0),
            copies: 1,
            received_at: SimTime::ZERO,
            hops: 0,
        })
        .unwrap();
        b.insert(BufferEntry {
            msg: msg(1, 10, 0.0, 500.0),
            copies: 1,
            received_at: SimTime::ZERO,
            hops: 0,
        })
        .unwrap();
        let mut dropped = vec![];
        b.sweep_expired(SimTime::secs(100.0), |e| dropped.push(e.msg.id));
        assert_eq!(dropped, vec![MessageId(0)]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.used(), 10);
        assert!(b.contains(MessageId(1)));
    }

    #[test]
    fn summary_diff_lists_missing() {
        let mut a = Buffer::new(1000);
        let mut b = Buffer::new(1000);
        a.insert(entry(0, 10)).unwrap();
        a.insert(entry(1, 10)).unwrap();
        b.insert(entry(1, 10)).unwrap();
        assert_eq!(a.summary_diff(&b), vec![MessageId(0)]);
        assert!(b.summary_diff(&a).is_empty());
    }

    #[test]
    fn destined_to_filters() {
        let mut b = Buffer::new(1000);
        let mut e = entry(0, 10);
        e.msg.dst = NodeId(5);
        b.insert(e).unwrap();
        b.insert(entry(1, 10)).unwrap();
        assert_eq!(b.destined_to(NodeId(5)), vec![MessageId(0)]);
        assert_eq!(b.destined_to(NodeId(1)), vec![MessageId(1)]);
    }

    /// Columns stay aligned through mixed insert/mutate/remove traffic, and
    /// the entry views reassemble every field.
    #[test]
    fn copies_mut_and_views_stay_consistent() {
        let mut b = Buffer::new(1000);
        for id in 0..4 {
            let mut e = entry(id, 10);
            e.copies = 8;
            e.hops = id;
            b.insert(e).unwrap();
        }
        *b.copies_mut(MessageId(2)).unwrap() = 3;
        assert!(b.copies_mut(MessageId(9)).is_none());
        b.remove(MessageId(1)).unwrap();
        assert_eq!(b.ids(), vec![MessageId(0), MessageId(2), MessageId(3)]);
        let got: Vec<(MessageId, u32, u32)> =
            b.iter().map(|e| (e.msg.id, e.copies, e.hops)).collect();
        assert_eq!(
            got,
            vec![
                (MessageId(0), 8, 0),
                (MessageId(2), 3, 2),
                (MessageId(3), 8, 3)
            ]
        );
        assert_eq!(b.get(MessageId(3)).unwrap().hops, 3);
        assert_eq!(b.used(), 30);
    }
}
