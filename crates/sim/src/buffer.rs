//! Per-node message buffers with byte-capacity accounting.
//!
//! Buffers hold at most a few tens of messages in the paper's scenarios
//! (1 MB capacity, 25 KB messages), so storage is a plain `Vec` with linear
//! lookups — cache-friendly and allocation-light.

use crate::ids::{MessageId, NodeId};
use crate::message::Message;
use crate::time::SimTime;

/// A buffered message together with its per-node routing metadata.
#[derive(Clone, Copy, Debug)]
pub struct BufferEntry {
    /// The message itself.
    pub msg: Message,
    /// Quota-routing copy count: how many logical replicas this node holds.
    /// Always ≥ 1 while the entry is buffered.
    pub copies: u32,
    /// When this node obtained the message (creation or reception time).
    pub received_at: SimTime,
    /// Number of hops the message has taken to reach this node (0 at source).
    pub hops: u32,
}

/// Why a message left a buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// TTL expired.
    Expired,
    /// Evicted to make room for an incoming message.
    BufferFull,
    /// Forwarded away: the node relinquished custody (not counted as a drop
    /// in statistics).
    ForwardedAway,
    /// Removed by the protocol (e.g. MaxProp ack purge).
    Protocol,
}

/// A byte-capacity-bounded message store.
#[derive(Clone, Debug)]
pub struct Buffer {
    capacity: u64,
    used: u64,
    entries: Vec<BufferEntry>,
}

impl Buffer {
    /// Creates an empty buffer with `capacity` bytes of space.
    pub fn new(capacity: u64) -> Self {
        Buffer {
            capacity,
            used: 0,
            entries: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of buffered messages.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer holds message `id`.
    #[inline]
    pub fn contains(&self, id: MessageId) -> bool {
        self.entries.iter().any(|e| e.msg.id == id)
    }

    /// The entry for `id`, if buffered.
    #[inline]
    pub fn get(&self, id: MessageId) -> Option<&BufferEntry> {
        self.entries.iter().find(|e| e.msg.id == id)
    }

    /// Mutable entry for `id`, if buffered.
    #[inline]
    pub fn get_mut(&mut self, id: MessageId) -> Option<&mut BufferEntry> {
        self.entries.iter_mut().find(|e| e.msg.id == id)
    }

    /// Iterates over buffered entries in insertion order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &BufferEntry> {
        self.entries.iter()
    }

    /// Iterates mutably over buffered entries in insertion order.
    #[inline]
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut BufferEntry> {
        self.entries.iter_mut()
    }

    /// The ids of all buffered messages, in insertion order.
    pub fn ids(&self) -> Vec<MessageId> {
        self.entries.iter().map(|e| e.msg.id).collect()
    }

    /// Whether an entry of `size` bytes would fit right now.
    #[inline]
    pub fn fits(&self, size: u32) -> bool {
        u64::from(size) <= self.free()
    }

    /// Inserts an entry.
    ///
    /// Returns `Err(entry)` without modifying the buffer when there is not
    /// enough free space or the message is already buffered (duplicate
    /// insertion is a protocol error the engine guards against).
    pub fn insert(&mut self, entry: BufferEntry) -> Result<(), BufferEntry> {
        if !self.fits(entry.msg.size) || self.contains(entry.msg.id) {
            return Err(entry);
        }
        debug_assert!(entry.copies >= 1);
        self.used += u64::from(entry.msg.size);
        self.entries.push(entry);
        Ok(())
    }

    /// Removes and returns the entry for `id`.
    pub fn remove(&mut self, id: MessageId) -> Option<BufferEntry> {
        let pos = self.entries.iter().position(|e| e.msg.id == id)?;
        let entry = self.entries.remove(pos);
        self.used -= u64::from(entry.msg.size);
        Some(entry)
    }

    /// Removes every expired message, invoking `on_drop` for each.
    pub fn sweep_expired(&mut self, now: SimTime, mut on_drop: impl FnMut(&BufferEntry)) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].msg.expired(now) {
                let entry = self.entries.remove(i);
                self.used -= u64::from(entry.msg.size);
                on_drop(&entry);
            } else {
                i += 1;
            }
        }
    }

    /// Ids of messages buffered here but absent from `peer` — the classic
    /// epidemic "summary vector" difference, oldest first.
    pub fn summary_diff(&self, peer: &Buffer) -> Vec<MessageId> {
        self.entries
            .iter()
            .filter(|e| !peer.contains(e.msg.id))
            .map(|e| e.msg.id)
            .collect()
    }

    /// Ids of messages destined to `dst` and buffered here, oldest first.
    pub fn destined_to(&self, dst: NodeId) -> Vec<MessageId> {
        self.entries
            .iter()
            .filter(|e| e.msg.dst == dst)
            .map(|e| e.msg.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn msg(id: u32, size: u32, created: f64, ttl: f64) -> Message {
        Message {
            id: MessageId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            created: SimTime::secs(created),
            ttl,
        }
    }

    fn entry(id: u32, size: u32) -> BufferEntry {
        BufferEntry {
            msg: msg(id, size, 0.0, 100.0),
            copies: 1,
            received_at: SimTime::ZERO,
            hops: 0,
        }
    }

    #[test]
    fn insert_and_capacity_accounting() {
        let mut b = Buffer::new(100);
        assert!(b.insert(entry(0, 60)).is_ok());
        assert_eq!(b.used(), 60);
        assert_eq!(b.free(), 40);
        assert!(b.insert(entry(1, 50)).is_err(), "over capacity");
        assert!(b.insert(entry(1, 40)).is_ok());
        assert_eq!(b.free(), 0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut b = Buffer::new(1000);
        assert!(b.insert(entry(3, 10)).is_ok());
        assert!(b.insert(entry(3, 10)).is_err());
        assert_eq!(b.len(), 1);
        assert_eq!(b.used(), 10);
    }

    #[test]
    fn remove_restores_space() {
        let mut b = Buffer::new(100);
        b.insert(entry(0, 70)).unwrap();
        assert!(b.remove(MessageId(9)).is_none());
        let e = b.remove(MessageId(0)).unwrap();
        assert_eq!(e.msg.id, MessageId(0));
        assert_eq!(b.used(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn sweep_drops_only_expired() {
        let mut b = Buffer::new(1000);
        b.insert(BufferEntry {
            msg: msg(0, 10, 0.0, 50.0),
            copies: 1,
            received_at: SimTime::ZERO,
            hops: 0,
        })
        .unwrap();
        b.insert(BufferEntry {
            msg: msg(1, 10, 0.0, 500.0),
            copies: 1,
            received_at: SimTime::ZERO,
            hops: 0,
        })
        .unwrap();
        let mut dropped = vec![];
        b.sweep_expired(SimTime::secs(100.0), |e| dropped.push(e.msg.id));
        assert_eq!(dropped, vec![MessageId(0)]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.used(), 10);
        assert!(b.contains(MessageId(1)));
    }

    #[test]
    fn summary_diff_lists_missing() {
        let mut a = Buffer::new(1000);
        let mut b = Buffer::new(1000);
        a.insert(entry(0, 10)).unwrap();
        a.insert(entry(1, 10)).unwrap();
        b.insert(entry(1, 10)).unwrap();
        assert_eq!(a.summary_diff(&b), vec![MessageId(0)]);
        assert!(b.summary_diff(&a).is_empty());
    }

    #[test]
    fn destined_to_filters() {
        let mut b = Buffer::new(1000);
        let mut e = entry(0, 10);
        e.msg.dst = NodeId(5);
        b.insert(e).unwrap();
        b.insert(entry(1, 10)).unwrap();
        assert_eq!(b.destined_to(NodeId(5)), vec![MessageId(0)]);
        assert_eq!(b.destined_to(NodeId(1)), vec![MessageId(1)]);
    }
}
