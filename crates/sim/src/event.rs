//! The deterministic discrete-event queue.
//!
//! Events are ordered by time, with a monotone sequence number breaking ties
//! so that equal-time events pop in scheduling (FIFO) order. This makes runs
//! bit-for-bit reproducible regardless of heap internals or platform.

use crate::ids::{MessageId, NodeId, NodePair};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What can happen in the simulated world.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A contact between two nodes begins; it will end at `until`.
    ContactUp {
        /// The node pair coming into contact.
        pair: NodePair,
        /// When the contact will end.
        until: SimTime,
    },
    /// The contact between two nodes ends.
    ContactDown {
        /// The node pair losing contact.
        pair: NodePair,
    },
    /// The workload creates message number `spec_idx`.
    MessageCreate {
        /// Index into the workload's spec list (also the message id).
        spec_idx: u32,
    },
    /// An in-flight transfer completes. `epoch` guards against the link
    /// having gone down (and its slot possibly been recycled) in the
    /// meantime.
    TransferDone {
        /// Slab index of the link slot carrying the transfer.
        link: u32,
        /// Sender of the transfer.
        from: NodeId,
        /// The message in flight.
        msg: MessageId,
        /// Link epoch at transfer start.
        epoch: u32,
    },
    /// Periodic buffer sweep removing expired messages.
    TtlSweep,
    /// Periodic per-node router tick (e.g. EBR's window update).
    RouterTick {
        /// The node whose router ticks.
        node: NodeId,
    },
    /// Periodic observer sample: the engine snapshots global buffer
    /// occupancy and broadcasts a [`SimEvent::Tick`] to every observer.
    /// Pure observation — processing it never mutates simulation state, so
    /// attaching probes cannot change a run's statistics.
    ///
    /// [`SimEvent::Tick`]: crate::observe::SimEvent::Tick
    ProbeSample {
        /// Index into the engine's table of distinct sampling intervals
        /// (each interval keeps its own event chain).
        interval: u32,
    },
    /// End of simulation.
    End,
}

#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A time-ordered, FIFO-tie-broken event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, kind }));
    }

    /// Pops the earliest event, FIFO among equal times.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.kind))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(5.0), EventKind::TtlSweep);
        q.push(SimTime::secs(1.0), EventKind::End);
        q.push(SimTime::secs(3.0), EventKind::MessageCreate { spec_idx: 0 });
        assert_eq!(q.pop().unwrap().0, SimTime::secs(1.0));
        assert_eq!(q.pop().unwrap().0, SimTime::secs(3.0));
        assert_eq!(q.pop().unwrap().0, SimTime::secs(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::secs(7.0), EventKind::MessageCreate { spec_idx: i });
        }
        for i in 0..100u32 {
            match q.pop().unwrap().1 {
                EventKind::MessageCreate { spec_idx } => assert_eq!(spec_idx, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(2.0), EventKind::End);
        assert_eq!(q.peek_time(), Some(SimTime::secs(2.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
