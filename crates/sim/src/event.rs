//! The deterministic discrete-event queue.
//!
//! Events are ordered by time, with a monotone sequence number breaking ties
//! so that equal-time events pop in scheduling (FIFO) order. This makes runs
//! bit-for-bit reproducible regardless of queue internals or platform.
//!
//! ## Calendar queue
//!
//! [`EventQueue`] is a *calendar queue* (Brown 1988): a ring of buckets,
//! each `width` seconds of simulated time wide, indexed by
//! `floor(time / width) & mask`. Near-future events — the vast majority in a
//! contact-driven simulation — land in the next few buckets, so push and pop
//! are O(1) amortized instead of the binary heap's O(log n). The bucket
//! count doubles/halves with occupancy and the width is recomputed from the
//! exact time span of the live contents at each resize, so the queue adapts
//! to the event density of the run. The earliest non-empty day is drained
//! into a sorted *head run* and popped from the back, which makes dense
//! equal-time clusters — dt-step contact batches schedule hundreds of
//! events at the same timestamp — cost one sort per day instead of a
//! bucket scan per pop. [`HeapEventQueue`] keeps the original `BinaryHeap`
//! implementation as the ordering oracle for differential tests and
//! benchmarks.
//!
//! ## Sequence bands
//!
//! Contact events scheduled through [`EventQueue::push_contact`] draw
//! sequence numbers from 0 upward, while every other event counts from a
//! disjoint upper band. At equal times, contacts therefore pop before
//! non-contact events, and among themselves in supply order — exactly the
//! order the engine produced historically, when it pushed the whole contact
//! trace into the queue before any workload event. Keeping the bands apart
//! is what makes the streaming contact supply
//! ([`crate::source::ContactSource`]) bit-compatible with bulk loading.

use crate::ids::{MessageId, NodeId, NodePair};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What can happen in the simulated world.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A contact between two nodes begins.
    ContactUp {
        /// The node pair coming into contact.
        pair: NodePair,
    },
    /// The contact between two nodes ends.
    ContactDown {
        /// The node pair losing contact.
        pair: NodePair,
    },
    /// The workload creates message number `spec_idx`.
    MessageCreate {
        /// Index into the workload's spec list (also the message id).
        spec_idx: u32,
    },
    /// An in-flight transfer completes. `epoch` guards against the link
    /// having gone down (and its slot possibly been recycled) in the
    /// meantime.
    TransferDone {
        /// Slab index of the link slot carrying the transfer.
        link: u32,
        /// Sender of the transfer.
        from: NodeId,
        /// The message in flight.
        msg: MessageId,
        /// Link epoch at transfer start.
        epoch: u32,
    },
    /// Periodic buffer sweep removing expired messages.
    TtlSweep,
    /// Periodic per-node router tick (e.g. EBR's window update).
    RouterTick {
        /// The node whose router ticks.
        node: NodeId,
    },
    /// Periodic observer sample: the engine snapshots global buffer
    /// occupancy and broadcasts a [`SimEvent::Tick`] to every observer.
    /// Pure observation — processing it never mutates simulation state, so
    /// attaching probes cannot change a run's statistics.
    ///
    /// [`SimEvent::Tick`]: crate::observe::SimEvent::Tick
    ProbeSample {
        /// Index into the engine's table of distinct sampling intervals
        /// (each interval keeps its own event chain).
        interval: u32,
    },
    /// End of simulation.
    End,
}

/// First sequence number of the non-contact band (see module docs). The
/// contact band below it never catches up: exhausting 2^62 contact events
/// is unreachable within a run.
const OTHER_SEQ_BASE: u64 = 1 << 62;

#[derive(Clone, Copy, Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// Initial (and minimum) bucket count; always a power of two.
const MIN_BUCKETS: usize = 16;
/// Bounds on the adaptive bucket width, in simulated seconds.
const MIN_WIDTH: f64 = 1e-6;
const MAX_WIDTH: f64 = 1e9;

/// A time-ordered, FIFO-tie-broken calendar event queue.
///
/// Same `(time, seq)` contract as the original heap-based queue (kept as
/// [`HeapEventQueue`]): pops come in nondecreasing time order and, at equal
/// times, in scheduling order within each sequence band — contacts
/// ([`EventQueue::push_contact`]) before everything else ([`EventQueue::push`]).
#[derive(Debug)]
pub struct EventQueue {
    buckets: Vec<Vec<Scheduled>>,
    /// `buckets.len() - 1`; virtual bucket `vb` lives at index `vb & mask`.
    mask: u64,
    /// Width of one bucket in simulated seconds.
    width: f64,
    /// Lower bound on every queued event's time: the last popped time,
    /// lowered if an event is ever scheduled below it.
    floor: SimTime,
    len: usize,
    next_contact_seq: u64,
    next_other_seq: u64,
    /// Virtual day whose entries currently live in `run` instead of their
    /// physical bucket; `None` exactly when `run` is empty.
    run_day: Option<u64>,
    /// All queued entries of `run_day`, sorted descending by `(time, seq)`
    /// so the minimum pops from the back in O(1). Same-day pushes binary-
    /// insert to keep the order.
    run: Vec<Scheduled>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            mask: (MIN_BUCKETS - 1) as u64,
            width: 1.0,
            floor: SimTime::ZERO,
            len: 0,
            next_contact_seq: 0,
            next_other_seq: OTHER_SEQ_BASE,
            run_day: None,
            run: Vec::new(),
        }
    }

    /// Schedules `kind` at `time` in the non-contact band.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_other_seq;
        self.next_other_seq += 1;
        self.insert(Scheduled { time, seq, kind });
    }

    /// Schedules a contact event at `time` in the contact band: at equal
    /// times, contact events pop before any event scheduled with
    /// [`EventQueue::push`], in `push_contact` call order. The engine's
    /// contact supply is the only intended caller.
    pub fn push_contact(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(
            matches!(
                kind,
                EventKind::ContactUp { .. } | EventKind::ContactDown { .. }
            ),
            "contact band is reserved for contact events"
        );
        let seq = self.next_contact_seq;
        self.next_contact_seq += 1;
        debug_assert!(seq < OTHER_SEQ_BASE, "contact sequence band exhausted");
        self.insert(Scheduled { time, seq, kind });
    }

    /// Pops the earliest event; FIFO among equal times (per band).
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        if self.len == 0 {
            return None;
        }
        if self.run.is_empty() {
            self.fill_run();
        }
        let s = self.run.pop().expect("fill_run yields at least one entry");
        if self.run.is_empty() {
            self.run_day = None;
        }
        self.len -= 1;
        self.floor = s.time;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            let target = self.buckets.len() / 2;
            self.resize(target);
        }
        Some((s.time, s.kind))
    }

    /// Time of the earliest pending event. (Mutable because locating the
    /// minimum pulls its day into the sorted head run, which the following
    /// [`EventQueue::pop`] reuses.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.run.is_empty() {
            self.fill_run();
        }
        self.run.last().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Virtual bucket (calendar "day") of `t`.
    #[inline]
    fn vb_of(&self, t: SimTime) -> u64 {
        let s = t.as_secs();
        if s <= 0.0 {
            0
        } else {
            (s / self.width) as u64
        }
    }

    fn insert(&mut self, s: Scheduled) {
        if self.len >= 2 * self.buckets.len() {
            let target = self.buckets.len() * 2;
            self.resize(target);
        }
        if s.time < self.floor {
            self.floor = s.time;
        }
        let day = self.vb_of(s.time);
        match self.run_day {
            // Head-day push: binary-insert into the descending run.
            Some(d) if day == d => {
                let idx = self.run.partition_point(|e| *e > s);
                self.run.insert(idx, s);
            }
            // A day below the cached head appeared (engine never schedules
            // into the past, so this is the rare API-allowed case): the run
            // is no longer the front — return it to its bucket.
            Some(d) if day < d => {
                self.spill_run();
                let b = (day & self.mask) as usize;
                self.buckets[b].push(s);
            }
            _ => {
                let b = (day & self.mask) as usize;
                self.buckets[b].push(s);
            }
        }
        self.len += 1;
    }

    /// Locates the earliest non-empty virtual day and drains all its entries
    /// from the physical bucket into `run`, sorted descending by
    /// `(time, seq)`, so the next pops come from the back in O(1).
    ///
    /// Scan virtual days upward from the floor's day: every queued entry
    /// has `time >= floor`, all entries sharing a day share one bucket, and
    /// any entry of a *later* day is strictly later in time than every entry
    /// of the current day — so the first day with a matching entry contains
    /// the global minimum. If a whole lap of the ring finds nothing (sparse
    /// far-future tail), fall back to a direct scan for the earliest entry.
    fn fill_run(&mut self) {
        debug_assert!(self.len > 0 && self.run.is_empty());
        let nb = self.buckets.len() as u64;
        let first = self.vb_of(self.floor);
        let mut day = None;
        for vb in first..first + nb {
            let b = (vb & self.mask) as usize;
            if self.buckets[b].iter().any(|s| self.vb_of(s.time) == vb) {
                day = Some(vb);
                break;
            }
        }
        let day = day.unwrap_or_else(|| {
            self.buckets
                .iter()
                .flatten()
                .map(|s| self.vb_of(s.time))
                .min()
                .expect("len > 0")
        });
        // `width` copied out so the drain can borrow the bucket mutably
        // while pushing into `run` (disjoint fields).
        let width = self.width;
        let vb_of = |t: SimTime| -> u64 {
            let secs = t.as_secs();
            if secs <= 0.0 {
                0
            } else {
                (secs / width) as u64
            }
        };
        let bucket = &mut self.buckets[(day & self.mask) as usize];
        let mut i = 0;
        while i < bucket.len() {
            if vb_of(bucket[i].time) == day {
                self.run.push(bucket.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.run.sort_unstable_by(|a, b| b.cmp(a));
        self.run_day = Some(day);
        debug_assert!(!self.run.is_empty());
    }

    /// Returns the head run's entries to their physical bucket (before a
    /// resize, or when a push lands below the cached head day).
    fn spill_run(&mut self) {
        if let Some(d) = self.run_day.take() {
            let b = (d & self.mask) as usize;
            self.buckets[b].append(&mut self.run);
        }
    }

    /// Rebuilds the ring with `new_nb` buckets and a freshly estimated
    /// width. O(len + buckets); amortized free under doubling/halving.
    fn resize(&mut self, new_nb: usize) {
        self.spill_run();
        let new_width = self.estimate_width();
        let mut all: Vec<Scheduled> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        self.buckets = vec![Vec::new(); new_nb];
        self.mask = (new_nb - 1) as u64;
        self.width = new_width;
        for s in all {
            let b = (self.vb_of(s.time) & self.mask) as usize;
            self.buckets[b].push(s);
        }
    }

    /// Chooses a bucket width from the live contents: the exact time span
    /// divided so that on average two entries share a day
    /// (`width = 2 * span / len`). The O(len) pass is free inside `resize`'s
    /// O(len) rebuild. Unlike inter-event gap sampling, the span cannot be
    /// fooled by dense equal-time clusters (dt-step contact batches schedule
    /// hundreds of events at one timestamp): ties shrink the width until
    /// each timestamp gets its own day, keeping `fill_run`'s drain small.
    /// Keeps the current width when degenerate (< 2 entries, zero span).
    fn estimate_width(&self) -> f64 {
        debug_assert!(self.run.is_empty(), "estimate after spill_run");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in self.buckets.iter().flatten() {
            let t = s.time.as_secs();
            min = min.min(t);
            max = max.max(t);
        }
        let span = max - min;
        if self.len < 2 || !span.is_finite() || span <= 0.0 {
            return self.width;
        }
        (2.0 * span / self.len as f64).clamp(MIN_WIDTH, MAX_WIDTH)
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the ordering
/// *reference implementation*: differential tests
/// (`tests/event_queue_equivalence.rs`) and the queue microbenches drive it
/// side by side with the calendar [`EventQueue`] to pin the shared
/// `(time, seq)` FIFO contract.
#[derive(Debug)]
pub struct HeapEventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_contact_seq: u64,
    next_other_seq: u64,
}

impl Default for HeapEventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_contact_seq: 0,
            next_other_seq: OTHER_SEQ_BASE,
        }
    }

    /// Schedules `kind` at `time` in the non-contact band.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_other_seq;
        self.next_other_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, kind }));
    }

    /// Schedules a contact event at `time` in the contact band (see
    /// [`EventQueue::push_contact`]).
    pub fn push_contact(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_contact_seq;
        self.next_contact_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, kind }));
    }

    /// Pops the earliest event; FIFO among equal times (per band).
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.kind))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(5.0), EventKind::TtlSweep);
        q.push(SimTime::secs(1.0), EventKind::End);
        q.push(SimTime::secs(3.0), EventKind::MessageCreate { spec_idx: 0 });
        assert_eq!(q.pop().unwrap().0, SimTime::secs(1.0));
        assert_eq!(q.pop().unwrap().0, SimTime::secs(3.0));
        assert_eq!(q.pop().unwrap().0, SimTime::secs(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::secs(7.0), EventKind::MessageCreate { spec_idx: i });
        }
        for i in 0..100u32 {
            match q.pop().unwrap().1 {
                EventKind::MessageCreate { spec_idx } => assert_eq!(spec_idx, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(2.0), EventKind::End);
        assert_eq!(q.peek_time(), Some(SimTime::secs(2.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn contact_band_pops_before_other_band_at_equal_time() {
        let pair = NodePair::new(NodeId(0), NodeId(1));
        let mut q = EventQueue::new();
        // Non-contact events scheduled *first* still lose the tie.
        q.push(SimTime::secs(4.0), EventKind::TtlSweep);
        q.push(SimTime::secs(4.0), EventKind::End);
        q.push_contact(SimTime::secs(4.0), EventKind::ContactDown { pair });
        q.push_contact(SimTime::secs(4.0), EventKind::ContactUp { pair });
        assert_eq!(q.pop().unwrap().1, EventKind::ContactDown { pair });
        assert_eq!(q.pop().unwrap().1, EventKind::ContactUp { pair });
        assert_eq!(q.pop().unwrap().1, EventKind::TtlSweep);
        assert_eq!(q.pop().unwrap().1, EventKind::End);
    }

    /// Deterministic mixed workload across resizes: the calendar queue must
    /// reproduce the heap reference pop-for-pop.
    #[test]
    fn calendar_matches_heap_on_mixed_schedule() {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let pair = NodePair::new(NodeId(0), NodeId(1));
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut lcg = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..20_000u32 {
            let r = lcg();
            // Cluster times heavily so equal-time ties are common.
            let t = SimTime::secs((r % 997) as f64 * 0.37);
            match r % 5 {
                0 | 1 => {
                    cal.push(t, EventKind::MessageCreate { spec_idx: i });
                    heap.push(t, EventKind::MessageCreate { spec_idx: i });
                }
                2 => {
                    cal.push_contact(t, EventKind::ContactUp { pair });
                    heap.push_contact(t, EventKind::ContactUp { pair });
                }
                3 => {
                    cal.push_contact(t, EventKind::ContactDown { pair });
                    heap.push_contact(t, EventKind::ContactDown { pair });
                }
                _ => {
                    assert_eq!(cal.peek_time(), heap.peek_time(), "peek at op {i}");
                    assert_eq!(cal.pop(), heap.pop(), "pop at op {i}");
                }
            }
            assert_eq!(cal.len(), heap.len());
        }
        // Drain through the shrink path.
        while let Some(expect) = heap.pop() {
            assert_eq!(cal.pop(), Some(expect));
        }
        assert!(cal.pop().is_none());
    }

    /// An event scheduled below the current floor (never done by the engine,
    /// but allowed by the API) must still pop first.
    #[test]
    fn past_schedule_still_pops_in_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(100.0), EventKind::End);
        q.push(SimTime::secs(50.0), EventKind::TtlSweep);
        assert_eq!(q.pop().unwrap().0, SimTime::secs(50.0));
        q.push(SimTime::secs(10.0), EventKind::TtlSweep);
        assert_eq!(q.pop().unwrap().0, SimTime::secs(10.0));
        assert_eq!(q.pop().unwrap().0, SimTime::secs(100.0));
    }

    /// Far-future sparse tail: pops must survive an empty lap of the ring.
    #[test]
    fn sparse_far_future_events_pop_correctly() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(0.5), EventKind::TtlSweep);
        q.push(SimTime::secs(1.0e6), EventKind::End);
        q.push(SimTime::secs(2.5e5), EventKind::TtlSweep);
        assert_eq!(q.pop().unwrap().0, SimTime::secs(0.5));
        assert_eq!(q.pop().unwrap().0, SimTime::secs(2.5e5));
        assert_eq!(q.pop().unwrap().0, SimTime::secs(1.0e6));
        assert!(q.pop().is_none());
    }
}
