//! TRACE/1.0 — durable, hash-chained event-log artifacts and replay.
//!
//! The observation layer ([`crate::observe`]) streams every occurrence in a
//! run as a [`SimEvent`]; this module makes that stream *durable*. An
//! [`EventLogWriter`] is an ordinary [`SimObserver`] that serializes the
//! batched stream into a compact binary artifact, and a [`TraceReader`]
//! validates the artifact and re-folds any observer set over the recorded
//! stream — no re-simulation. Because the in-tree probes are pure functions
//! of the event stream, replayed [`SimStats`] and probe outputs are bitwise
//! identical to live observation.
//!
//! (The module is named `eventlog` rather than `trace` because
//! [`crate::trace`] already names *contact* traces — the mobility input —
//! while this is the *event* output.)
//!
//! # Format (TRACE/1.0)
//!
//! All integers are little-endian; times are `f64` bit patterns so the
//! round trip is lossless. Strings are `u32` length + UTF-8 bytes.
//!
//! ```text
//! magic      "TRACE/1.0\n"                          (10 bytes)
//! header     cell_key: string                        canonical RunSpec cell key
//!            seed: u64, horizon: u64 (f64 bits)
//!            n_nodes: u32, n_messages: u64
//!            labels: u32 count, then (key, value) string pairs
//! record*    tag: u8 (0..=8), seq: u64, payload, chain: u64
//! trailer    0xFF, record_count: u64, end_time: u64 (f64 bits),
//!            control_bytes: u64, fingerprint: u64
//! ```
//!
//! `control_bytes` rides in the trailer because it is the one statistic
//! the event stream cannot carry: routers account control-plane traffic
//! straight into [`SimStats`] through their contexts, so the engine hands
//! the final total to [`SimObserver::on_end`] and the writer persists it
//! there — which is exactly why replayed statistics match the live run on
//! *every* field.
//!
//! The writer is drain-agnostic: under [`crate::observe::DrainMode::Ring`]
//! it runs on the companion drain thread instead of the simulation thread,
//! and because the ring preserves batch order and the engine's end-of-run
//! barrier joins the drain before returning, the artifact — every record,
//! chain value and the trailer — is byte-identical to inline dispatch and
//! complete on disk by the time `run_observed` returns (pinned by
//! `crates/sim/tests/ring.rs`).
//!
//! The hash chain is FNV-1a (64-bit): the chain starts from the FNV offset
//! basis folded over the magic and header bytes, and each record folds its
//! own `tag ‖ seq ‖ payload` into the running value, which is then stored
//! as the record's `chain` field. The trailer's `fingerprint` folds the
//! trailer prefix into the final chain value, so it covers every byte of
//! the artifact: any single-bit flip fails verification at the first
//! affected sequence number. Records are append-only and `seq` is dense
//! from zero, so two artifacts of the same run are byte-identical.

use crate::buffer::DropReason;
use crate::ids::{MessageId, NodeId, NodePair};
use crate::observe::{SimEvent, SimObserver};
use crate::stats::{SimStats, StatsSnapshot};
use crate::time::SimTime;
use std::any::Any;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Leading magic of a TRACE/1.0 artifact (carries the format version).
pub const TRACE_MAGIC: &[u8; 10] = b"TRACE/1.0\n";

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Records are delivered to observers on replay in chunks of this size.
/// Batch boundaries are invisible to observers (every event carries its own
/// timestamp), so the value only bounds the replay scratch slice; it matches
/// the engine's batch size for symmetry.
const REPLAY_BATCH: usize = 256;

/// Largest encoded record body (`tag ‖ seq ‖ payload ‖ chain`):
/// `Delivered` at 1 + 8 + 33 + 8 bytes.
const MAX_RECORD: usize = 50;

/// Folds `bytes` into an FNV-1a 64-bit running hash.
#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Run identity carried in a trace header: enough to reconstruct *which*
/// cell produced the stream and to size replay-side collectors, without the
/// sim crate knowing anything about the bench layer's spec types.
///
/// `labels` is an ordered list of opaque `(key, value)` pairs for
/// higher-layer provenance (the bench layer stores series / scenario /
/// workload / protocol names there so a replayed run folds back into a
/// normal report record).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Canonical cell key of the recorded run (the bench `RunSpec` cell
    /// key; any stable run identifier for other embedders).
    pub cell_key: String,
    /// Seed of the recorded run.
    pub seed: u64,
    /// Simulation horizon in seconds.
    pub horizon: f64,
    /// Number of nodes in the scenario.
    pub n_nodes: u32,
    /// Number of workload messages (sizes the replay-side [`SimStats`]).
    pub n_messages: u64,
    /// Opaque provenance labels, in a caller-chosen stable order.
    pub labels: Vec<(String, String)>,
}

/// Byte-appender for header/record encoding.
struct Enc<'a> {
    buf: &'a mut [u8],
    n: usize,
}

impl Enc<'_> {
    #[inline]
    fn u8(&mut self, v: u8) {
        self.buf[self.n] = v;
        self.n += 1;
    }
    #[inline]
    fn u32(&mut self, v: u32) {
        self.buf[self.n..self.n + 4].copy_from_slice(&v.to_le_bytes());
        self.n += 4;
    }
    #[inline]
    fn u64(&mut self, v: u64) {
        self.buf[self.n..self.n + 8].copy_from_slice(&v.to_le_bytes());
        self.n += 8;
    }
    #[inline]
    fn time(&mut self, t: SimTime) {
        self.u64(t.as_secs().to_bits());
    }
    #[inline]
    fn node(&mut self, v: NodeId) {
        self.u32(v.0);
    }
    #[inline]
    fn msg(&mut self, v: MessageId) {
        self.u32(v.0);
    }
}

/// Encodes `tag ‖ seq ‖ payload` (everything the chain covers) into `buf`,
/// returning the encoded length.
fn encode_body(seq: u64, ev: &SimEvent, buf: &mut [u8; MAX_RECORD]) -> usize {
    let mut e = Enc { buf, n: 0 };
    match *ev {
        SimEvent::Generated { at, msg, src } => {
            e.u8(0);
            e.u64(seq);
            e.time(at);
            e.msg(msg);
            e.node(src);
        }
        SimEvent::Forwarded {
            at,
            msg,
            from,
            to,
            duplicate,
        } => {
            e.u8(1);
            e.u64(seq);
            e.time(at);
            e.msg(msg);
            e.node(from);
            e.node(to);
            e.u8(u8::from(duplicate));
        }
        SimEvent::Refused { at, msg, from, to } => {
            e.u8(2);
            e.u64(seq);
            e.time(at);
            e.msg(msg);
            e.node(from);
            e.node(to);
        }
        SimEvent::Delivered {
            at,
            msg,
            from,
            to,
            created,
            hops,
            first,
        } => {
            e.u8(3);
            e.u64(seq);
            e.time(at);
            e.msg(msg);
            e.node(from);
            e.node(to);
            e.time(created);
            e.u32(hops);
            e.u8(u8::from(first));
        }
        SimEvent::Dropped {
            at,
            msg,
            node,
            reason,
        } => {
            e.u8(4);
            e.u64(seq);
            e.time(at);
            e.msg(msg);
            e.node(node);
            e.u8(match reason {
                DropReason::Expired => 0,
                DropReason::BufferFull => 1,
                DropReason::ForwardedAway => 2,
                DropReason::Protocol => 3,
            });
        }
        SimEvent::Aborted { at, msg, from, to } => {
            e.u8(5);
            e.u64(seq);
            e.time(at);
            e.msg(msg);
            e.node(from);
            e.node(to);
        }
        SimEvent::ContactStart { at, pair } => {
            e.u8(6);
            e.u64(seq);
            e.time(at);
            e.node(pair.a);
            e.node(pair.b);
        }
        SimEvent::ContactEnd { at, pair } => {
            e.u8(7);
            e.u64(seq);
            e.time(at);
            e.node(pair.a);
            e.node(pair.b);
        }
        SimEvent::Tick {
            at,
            buffered_bytes,
            buffered_msgs,
        } => {
            e.u8(8);
            e.u64(seq);
            e.time(at);
            e.u64(buffered_bytes);
            e.u64(buffered_msgs);
        }
    }
    e.n
}

/// Payload size (bytes between `seq` and `chain`) for each record tag.
fn payload_len(tag: u8) -> Option<usize> {
    Some(match tag {
        0 => 16,     // Generated
        1 => 21,     // Forwarded
        2 => 20,     // Refused
        3 => 33,     // Delivered
        4 => 17,     // Dropped
        5 => 20,     // Aborted
        6 | 7 => 16, // ContactStart / ContactEnd
        8 => 24,     // Tick
        _ => return None,
    })
}

/// Encodes the header (everything after the magic) for `meta`.
fn encode_header(meta: &TraceMeta) -> Vec<u8> {
    fn put_str(out: &mut Vec<u8>, s: &str) {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    let mut out = Vec::new();
    put_str(&mut out, &meta.cell_key);
    out.extend_from_slice(&meta.seed.to_le_bytes());
    out.extend_from_slice(&meta.horizon.to_bits().to_le_bytes());
    out.extend_from_slice(&meta.n_nodes.to_le_bytes());
    out.extend_from_slice(&meta.n_messages.to_le_bytes());
    out.extend_from_slice(&(meta.labels.len() as u32).to_le_bytes());
    for (k, v) in &meta.labels {
        put_str(&mut out, k);
        put_str(&mut out, v);
    }
    out
}

/// A [`SimObserver`] that serializes the event stream into a TRACE/1.0
/// artifact.
///
/// The writer encodes each event into a stack buffer (no per-event
/// allocation) and appends it through a [`io::BufWriter`]. I/O errors
/// cannot surface through the observer callbacks, so the first error is
/// latched and the artifact is abandoned; callers **must** check
/// [`EventLogWriter::status`] after the run (the bench runner does, and
/// fails the run loudly).
pub struct EventLogWriter {
    out: io::BufWriter<std::fs::File>,
    path: PathBuf,
    chain: u64,
    seq: u64,
    err: Option<io::Error>,
    finished: bool,
}

impl EventLogWriter {
    /// Creates the artifact at `path` and writes the header immediately.
    ///
    /// The parent directory must exist (the bench layer routes every
    /// artifact path through `report::ensure_parent` first).
    pub fn create(path: &Path, meta: &TraceMeta) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let mut out = io::BufWriter::new(file);
        let header = encode_header(meta);
        out.write_all(TRACE_MAGIC)?;
        out.write_all(&header)?;
        let chain = fnv1a(fnv1a(FNV_OFFSET, TRACE_MAGIC), &header);
        Ok(EventLogWriter {
            out,
            path: path.to_path_buf(),
            chain,
            seq: 0,
            err: None,
            finished: false,
        })
    }

    /// The artifact path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `Ok` if every write so far succeeded and, once the run has ended,
    /// the trailer was flushed; otherwise the latched I/O error, naming the
    /// artifact path.
    pub fn status(&self) -> Result<(), String> {
        match &self.err {
            None => Ok(()),
            Some(e) => Err(format!(
                "trace write to {} failed: {e}",
                self.path.display()
            )),
        }
    }

    #[inline]
    fn write_bytes(&mut self, bytes: &[u8]) {
        if self.err.is_none() {
            if let Err(e) = self.out.write_all(bytes) {
                self.err = Some(e);
            }
        }
    }
}

impl SimObserver for EventLogWriter {
    fn on_events(&mut self, batch: &[SimEvent]) {
        let mut buf = [0u8; MAX_RECORD];
        for ev in batch {
            let n = encode_body(self.seq, ev, &mut buf);
            self.chain = fnv1a(self.chain, &buf[..n]);
            buf[n..n + 8].copy_from_slice(&self.chain.to_le_bytes());
            self.seq += 1;
            self.write_bytes(&buf[..n + 8]);
        }
    }

    fn on_end(&mut self, now: SimTime, final_stats: &StatsSnapshot) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut tail = [0u8; 25];
        tail[0] = 0xFF;
        tail[1..9].copy_from_slice(&self.seq.to_le_bytes());
        tail[9..17].copy_from_slice(&now.as_secs().to_bits().to_le_bytes());
        tail[17..25].copy_from_slice(&final_stats.control_bytes.to_le_bytes());
        let fingerprint = fnv1a(self.chain, &tail);
        self.write_bytes(&tail);
        self.write_bytes(&fingerprint.to_le_bytes());
        if self.err.is_none() {
            if let Err(e) = self.out.flush() {
                self.err = Some(e);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Bounds-checked byte reader for decoding.
struct Dec<'a> {
    buf: &'a [u8],
    n: usize,
}

impl<'a> Dec<'a> {
    fn need(&self, k: usize) -> Result<(), String> {
        if self.n + k > self.buf.len() {
            Err("truncated".into())
        } else {
            Ok(())
        }
    }
    fn u8(&mut self) -> Result<u8, String> {
        self.need(1)?;
        let v = self.buf[self.n];
        self.n += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, String> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.buf[self.n..self.n + 4].try_into().unwrap());
        self.n += 4;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, String> {
        self.need(8)?;
        let v = u64::from_le_bytes(self.buf[self.n..self.n + 8].try_into().unwrap());
        self.n += 8;
        Ok(v)
    }
    fn time(&mut self) -> Result<SimTime, String> {
        let secs = f64::from_bits(self.u64()?);
        if !secs.is_finite() {
            return Err("non-finite timestamp".into());
        }
        Ok(SimTime::secs(secs))
    }
    fn node(&mut self) -> Result<NodeId, String> {
        Ok(NodeId(self.u32()?))
    }
    fn msg(&mut self) -> Result<MessageId, String> {
        Ok(MessageId(self.u32()?))
    }
    fn flag(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("invalid boolean byte {v:#04x}")),
        }
    }
    fn pair(&mut self) -> Result<NodePair, String> {
        let a = self.node()?;
        let b = self.node()?;
        if a.0 >= b.0 {
            return Err(format!("invalid node pair ({}, {})", a.0, b.0));
        }
        Ok(NodePair { a, b })
    }
    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let s = std::str::from_utf8(&self.buf[self.n..self.n + len])
            .map_err(|_| "invalid UTF-8 string".to_string())?
            .to_string();
        self.n += len;
        Ok(s)
    }
}

/// Decodes one event payload; `tag` has already been validated by
/// [`payload_len`].
fn decode_payload(tag: u8, d: &mut Dec<'_>) -> Result<SimEvent, String> {
    Ok(match tag {
        0 => SimEvent::Generated {
            at: d.time()?,
            msg: d.msg()?,
            src: d.node()?,
        },
        1 => SimEvent::Forwarded {
            at: d.time()?,
            msg: d.msg()?,
            from: d.node()?,
            to: d.node()?,
            duplicate: d.flag()?,
        },
        2 => SimEvent::Refused {
            at: d.time()?,
            msg: d.msg()?,
            from: d.node()?,
            to: d.node()?,
        },
        3 => SimEvent::Delivered {
            at: d.time()?,
            msg: d.msg()?,
            from: d.node()?,
            to: d.node()?,
            created: d.time()?,
            hops: d.u32()?,
            first: d.flag()?,
        },
        4 => SimEvent::Dropped {
            at: d.time()?,
            msg: d.msg()?,
            node: d.node()?,
            reason: match d.u8()? {
                0 => DropReason::Expired,
                1 => DropReason::BufferFull,
                2 => DropReason::ForwardedAway,
                3 => DropReason::Protocol,
                v => return Err(format!("invalid drop reason {v}")),
            },
        },
        5 => SimEvent::Aborted {
            at: d.time()?,
            msg: d.msg()?,
            from: d.node()?,
            to: d.node()?,
        },
        6 => SimEvent::ContactStart {
            at: d.time()?,
            pair: d.pair()?,
        },
        7 => SimEvent::ContactEnd {
            at: d.time()?,
            pair: d.pair()?,
        },
        8 => SimEvent::Tick {
            at: d.time()?,
            buffered_bytes: d.u64()?,
            buffered_msgs: d.u64()?,
        },
        _ => unreachable!("tag validated by payload_len"),
    })
}

/// A validated, fully decoded TRACE/1.0 artifact.
///
/// [`TraceReader::open`] verifies the magic and version, the monotone
/// sequence numbers, the per-record hash chain and the trailing
/// fingerprint before returning; every error names the artifact and, for
/// record-level corruption, the offending sequence number.
#[derive(Debug)]
pub struct TraceReader {
    meta: TraceMeta,
    events: Vec<SimEvent>,
    end_time: SimTime,
    control_bytes: u64,
    fingerprint: u64,
}

impl TraceReader {
    /// Reads and validates the artifact at `path`.
    pub fn open(path: &Path) -> Result<Self, String> {
        let name = path.display().to_string();
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read trace {name}: {e}"))?;
        Self::from_bytes(&bytes, &name)
    }

    /// Validates an in-memory artifact; `name` labels errors (usually the
    /// path).
    pub fn from_bytes(bytes: &[u8], name: &str) -> Result<Self, String> {
        if bytes.len() < TRACE_MAGIC.len() || !bytes.starts_with(b"TRACE/") {
            return Err(format!("{name}: not a TRACE artifact (bad magic)"));
        }
        if &bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            let found = String::from_utf8_lossy(&bytes[..TRACE_MAGIC.len()]);
            return Err(format!(
                "{name}: unsupported trace version {:?} (this build reads {:?})",
                found.trim_end(),
                "TRACE/1.0"
            ));
        }
        let mut d = Dec {
            buf: bytes,
            n: TRACE_MAGIC.len(),
        };
        let err = |what: &str| format!("{name}: {what}");
        let header_err = |e: String| format!("{name}: corrupt header: {e}");

        let cell_key = d.string().map_err(header_err)?;
        let seed = d.u64().map_err(header_err)?;
        let horizon = f64::from_bits(d.u64().map_err(header_err)?);
        if !horizon.is_finite() {
            return Err(err("corrupt header: non-finite horizon"));
        }
        let n_nodes = d.u32().map_err(header_err)?;
        let n_messages = d.u64().map_err(header_err)?;
        let n_labels = d.u32().map_err(header_err)? as usize;
        let mut labels = Vec::with_capacity(n_labels.min(64));
        for _ in 0..n_labels {
            let k = d.string().map_err(header_err)?;
            let v = d.string().map_err(header_err)?;
            labels.push((k, v));
        }
        let mut chain = fnv1a(FNV_OFFSET, &bytes[..d.n]);

        let mut events = Vec::new();
        loop {
            let record_start = d.n;
            let tag = d
                .u8()
                .map_err(|_| err(&format!("truncated after record {}", events.len())))?;
            if tag == 0xFF {
                // Trailer.
                let tail_start = record_start;
                let count = d.u64().map_err(|_| err("truncated trailer"))?;
                let end_bits = d.u64().map_err(|_| err("truncated trailer"))?;
                let control_bytes = d.u64().map_err(|_| err("truncated trailer"))?;
                let fingerprint = fnv1a(chain, &bytes[tail_start..d.n]);
                let stored = d.u64().map_err(|_| err("truncated trailer"))?;
                if count != events.len() as u64 {
                    return Err(err(&format!(
                        "trailer record count {count} does not match {} records read",
                        events.len()
                    )));
                }
                if stored != fingerprint {
                    return Err(err(&format!(
                        "content fingerprint mismatch: stored {stored:#018x}, computed {fingerprint:#018x}"
                    )));
                }
                if d.n != bytes.len() {
                    return Err(err(&format!(
                        "{} trailing bytes after trailer",
                        bytes.len() - d.n
                    )));
                }
                let end_secs = f64::from_bits(end_bits);
                if !end_secs.is_finite() {
                    return Err(err("corrupt trailer: non-finite end time"));
                }
                return Ok(TraceReader {
                    meta: TraceMeta {
                        cell_key,
                        seed,
                        horizon,
                        n_nodes,
                        n_messages,
                        labels,
                    },
                    events,
                    end_time: SimTime::secs(end_secs),
                    control_bytes,
                    fingerprint,
                });
            }
            let expect_seq = events.len() as u64;
            let body_len = match payload_len(tag) {
                Some(p) => 1 + 8 + p,
                None => {
                    return Err(err(&format!(
                        "invalid record tag {tag:#04x} at seq {expect_seq}"
                    )))
                }
            };
            if record_start + body_len + 8 > bytes.len() {
                return Err(err(&format!("truncated record at seq {expect_seq}")));
            }
            // Verify the chain over the raw bytes *before* decoding, so a
            // flipped byte is reported as corruption, not a decode error.
            chain = fnv1a(chain, &bytes[record_start..record_start + body_len]);
            let mut body = Dec {
                buf: &bytes[record_start..record_start + body_len],
                n: 1,
            };
            let seq = body.u64().expect("length checked");
            let mut tail = Dec {
                buf: bytes,
                n: record_start + body_len,
            };
            let stored_chain = tail.u64().expect("length checked");
            if stored_chain != chain {
                return Err(err(&format!(
                    "hash chain mismatch at seq {expect_seq}: stored {stored_chain:#018x}, computed {chain:#018x}"
                )));
            }
            if seq != expect_seq {
                return Err(err(&format!(
                    "sequence numbers not monotone: expected {expect_seq}, found {seq}"
                )));
            }
            let ev = decode_payload(tag, &mut body)
                .map_err(|e| err(&format!("corrupt record at seq {expect_seq}: {e}")))?;
            events.push(ev);
            d.n = record_start + body_len + 8;
        }
    }

    /// The run identity recorded in the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The decoded event stream, in occurrence order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// The simulated end time the engine passed to
    /// [`SimObserver::on_end`] when the run was recorded.
    pub fn end_time(&self) -> SimTime {
        self.end_time
    }

    /// The verified content fingerprint (the final chain value).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The recorded run's control-plane byte total (router-side accounting
    /// that never travels the event stream; persisted in the trailer).
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes
    }

    /// Re-folds `observers` over the recorded stream, mimicking the live
    /// delivery contract: ordered batches followed by exactly one
    /// [`SimObserver::on_end`] at the recorded end time, carrying the
    /// recorded run's final statistics. Observer outputs are bitwise
    /// identical to live observation because batch boundaries carry no
    /// information.
    pub fn replay(&self, observers: &mut [Box<dyn SimObserver>]) {
        for chunk in self.events.chunks(REPLAY_BATCH) {
            for obs in observers.iter_mut() {
                obs.on_events(chunk);
            }
        }
        let final_stats = self.replay_stats().snapshot();
        for obs in observers.iter_mut() {
            obs.on_end(self.end_time, &final_stats);
        }
    }

    /// Folds the recorded stream through [`SimStats::apply`] — the same
    /// fold the engine applies inline — and restores `control_bytes` from
    /// the trailer, reproducing the live run's statistics bitwise on every
    /// field.
    pub fn replay_stats(&self) -> SimStats {
        let mut stats = SimStats::new(self.meta.n_messages as usize);
        for ev in &self.events {
            stats.apply(ev);
        }
        stats.control_bytes = self.control_bytes;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            cell_key: "scenario=paper:n=4|workload=paper|protocol=epidemic|seed=7".into(),
            seed: 7,
            horizon: 1_000.0,
            n_nodes: 4,
            n_messages: 3,
            labels: vec![
                ("series".into(), "epidemic @ paper".into()),
                ("scenario".into(), "paper:n=4".into()),
            ],
        }
    }

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::Generated {
                at: SimTime::secs(1.0),
                msg: MessageId(0),
                src: NodeId(0),
            },
            SimEvent::ContactStart {
                at: SimTime::secs(2.5),
                pair: NodePair::new(NodeId(0), NodeId(1)),
            },
            SimEvent::Forwarded {
                at: SimTime::secs(3.0),
                msg: MessageId(0),
                from: NodeId(0),
                to: NodeId(1),
                duplicate: false,
            },
            SimEvent::Refused {
                at: SimTime::secs(3.5),
                msg: MessageId(1),
                from: NodeId(1),
                to: NodeId(0),
            },
            SimEvent::Delivered {
                at: SimTime::secs(4.0),
                msg: MessageId(0),
                from: NodeId(1),
                to: NodeId(2),
                created: SimTime::secs(1.0),
                hops: 2,
                first: true,
            },
            SimEvent::Dropped {
                at: SimTime::secs(5.0),
                msg: MessageId(1),
                node: NodeId(0),
                reason: DropReason::BufferFull,
            },
            SimEvent::Aborted {
                at: SimTime::secs(6.0),
                msg: MessageId(2),
                from: NodeId(2),
                to: NodeId(3),
            },
            SimEvent::ContactEnd {
                at: SimTime::secs(7.0),
                pair: NodePair::new(NodeId(0), NodeId(1)),
            },
            SimEvent::Tick {
                at: SimTime::secs(8.0),
                buffered_bytes: 4_096,
                buffered_msgs: 3,
            },
        ]
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dtn_eventlog_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{tag}_{}.trace", std::process::id()))
    }

    /// Pinned control-byte total for the sample artifact (rides in the
    /// trailer, not the stream).
    const CONTROL: u64 = 4_242;

    fn end_stats() -> StatsSnapshot {
        StatsSnapshot {
            control_bytes: CONTROL,
            ..StatsSnapshot::default()
        }
    }

    fn write_sample(tag: &str) -> PathBuf {
        let path = temp_path(tag);
        let mut w = EventLogWriter::create(&path, &meta()).expect("create");
        // Deliver across two batches to show boundaries don't matter.
        let events = sample_events();
        w.on_events(&events[..4]);
        w.on_events(&events[4..]);
        w.on_end(SimTime::secs(1_000.0), &end_stats());
        w.status().expect("clean write");
        path
    }

    #[test]
    fn round_trip_is_lossless() {
        let path = write_sample("round_trip");
        let r = TraceReader::open(&path).expect("valid artifact");
        assert_eq!(r.meta(), &meta());
        assert_eq!(r.events(), &sample_events()[..]);
        assert_eq!(r.end_time(), SimTime::secs(1_000.0));
        let stats = r.replay_stats();
        assert_eq!(stats.created, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.control_bytes, CONTROL, "restored from the trailer");
        assert_eq!(r.control_bytes(), CONTROL);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rewrite_is_byte_identical() {
        let a = write_sample("rewrite_a");
        let b = write_sample("rewrite_b");
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn empty_log_round_trips() {
        let path = temp_path("empty");
        let mut w = EventLogWriter::create(&path, &meta()).expect("create");
        w.on_end(SimTime::ZERO, &StatsSnapshot::default());
        w.status().expect("clean write");
        let r = TraceReader::open(&path).expect("valid artifact");
        assert!(r.events().is_empty());
        assert_eq!(r.meta().seed, 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flipped_byte_names_offending_seq() {
        let path = write_sample("corrupt");
        let clean = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let header_len = TRACE_MAGIC.len() + encode_header(&meta()).len();
        // Record 0 is Generated: 1 + 8 + 16 payload + 8 chain = 33 bytes.
        // Flip a payload byte of record 1 (starts at header_len + 33).
        let mut bytes = clean.clone();
        bytes[header_len + 33 + 12] ^= 0x40;
        let e = TraceReader::from_bytes(&bytes, "t").unwrap_err();
        assert!(e.contains("hash chain mismatch at seq 1"), "got: {e}");
        // Flipping a later record leaves earlier seqs verifiable.
        let mut bytes = clean;
        let len = bytes.len();
        bytes[len - 30] ^= 0x01;
        let e = TraceReader::from_bytes(&bytes, "t").unwrap_err();
        assert!(
            e.contains("mismatch") || e.contains("trailer"),
            "tail corruption detected: {e}"
        );
    }

    #[test]
    fn truncation_is_loud() {
        let path = write_sample("trunc");
        let clean = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let cut = &clean[..clean.len() - 9];
        let e = TraceReader::from_bytes(cut, "t").unwrap_err();
        assert!(e.contains("truncated"), "got: {e}");
    }

    #[test]
    fn bad_magic_and_version_are_schema_errors() {
        let e = TraceReader::from_bytes(b"garbage not a trace", "t").unwrap_err();
        assert!(e.contains("not a TRACE artifact"), "got: {e}");
        let e = TraceReader::from_bytes(b"TRACE/9.9\nmore", "t").unwrap_err();
        assert!(e.contains("unsupported trace version"), "got: {e}");
    }

    #[test]
    fn trailer_count_mismatch_detected() {
        let path = write_sample("count");
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // The trailer count is 8 bytes after the 0xFF tag, 32 bytes from
        // the end: 0xFF + count(8) + end(8) + control(8) + fingerprint(8)
        // = 33.
        let len = bytes.len();
        bytes[len - 32] = bytes[len - 32].wrapping_add(1);
        let e = TraceReader::from_bytes(&bytes, "t").unwrap_err();
        // Count is chained, so this trips the fingerprint or count check.
        assert!(
            e.contains("record count") || e.contains("fingerprint"),
            "got: {e}"
        );
    }
}
