//! Dense integer identifiers for nodes and messages.
//!
//! Both identifiers are dense `u32` indices: `NodeId(k)` is the `k`-th node of
//! the scenario and `MessageId(k)` the `k`-th generated message, so both can
//! index flat vectors without hashing.

use std::fmt;

/// Identifier of a node (a bus / mobile device) in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a message, dense in creation order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u32);

impl MessageId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An unordered node pair, normalised so `a < b`.
///
/// Used as the key for links and contact bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodePair {
    /// The smaller node id.
    pub a: NodeId,
    /// The larger node id.
    pub b: NodeId,
}

impl NodePair {
    /// Builds a normalised pair from two distinct node ids.
    ///
    /// # Panics
    /// Panics if `x == y`.
    #[inline]
    pub fn new(x: NodeId, y: NodeId) -> Self {
        assert!(x != y, "a node cannot form a pair with itself");
        if x.0 < y.0 {
            NodePair { a: x, b: y }
        } else {
            NodePair { a: y, b: x }
        }
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Debug-panics if `x` is not an endpoint of the pair.
    #[inline]
    pub fn other(self, x: NodeId) -> NodeId {
        debug_assert!(x == self.a || x == self.b);
        if x == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Whether `x` is one of the two endpoints.
    #[inline]
    pub fn contains(self, x: NodeId) -> bool {
        x == self.a || x == self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_normalises() {
        let p = NodePair::new(NodeId(7), NodeId(3));
        assert_eq!(p.a, NodeId(3));
        assert_eq!(p.b, NodeId(7));
        assert_eq!(p, NodePair::new(NodeId(3), NodeId(7)));
    }

    #[test]
    fn pair_other_and_contains() {
        let p = NodePair::new(NodeId(1), NodeId(2));
        assert_eq!(p.other(NodeId(1)), NodeId(2));
        assert_eq!(p.other(NodeId(2)), NodeId(1));
        assert!(p.contains(NodeId(1)));
        assert!(!p.contains(NodeId(9)));
    }

    #[test]
    #[should_panic]
    fn self_pair_rejected() {
        let _ = NodePair::new(NodeId(4), NodeId(4));
    }

    #[test]
    fn ids_index() {
        assert_eq!(NodeId(5).idx(), 5);
        assert_eq!(MessageId(9).idx(), 9);
        assert_eq!(format!("{}", NodeId(2)), "n2");
        assert_eq!(format!("{}", MessageId(3)), "m3");
    }
}
