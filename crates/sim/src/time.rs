//! Simulation time.
//!
//! Time is a monotone, finite `f64` number of seconds since the start of the
//! simulation. A newtype keeps it from being confused with durations or other
//! scalar quantities, and provides the total ordering the event queue needs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the simulation epoch.
///
/// `SimTime` is totally ordered (via [`f64::total_cmp`]); constructors
/// debug-assert that the value is finite so `NaN` never enters the event
/// queue.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from a number of seconds since the epoch.
    ///
    /// # Panics
    /// Debug-panics if `secs` is not finite.
    #[inline]
    pub fn secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite(), "SimTime must be finite, got {secs}");
        SimTime(secs)
    }

    /// Seconds since the simulation epoch.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `max(self - other, 0)` in seconds; the elapsed time since `other`.
    #[inline]
    pub fn since(self, other: SimTime) -> f64 {
        (self.0 - other.0).max(0.0)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime::secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let a = SimTime::secs(1.0);
        let b = SimTime::secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::ZERO, SimTime::secs(0.0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::secs(10.0) + 5.0;
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!(t - SimTime::secs(3.0), 12.0);
        assert_eq!(SimTime::secs(3.0).since(t), 0.0, "since() clamps at zero");
        assert_eq!(t.since(SimTime::secs(3.0)), 12.0);
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += 2.5;
        t += 2.5;
        assert_eq!(t.as_secs(), 5.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::secs(1.23456)), "1.235");
        assert_eq!(format!("{:?}", SimTime::secs(2.0)), "2.000s");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = SimTime::secs(f64::NAN);
    }
}
