//! # dtn-sim — a deterministic event-driven DTN simulator
//!
//! This crate is the simulation substrate for the reproduction of
//! *"On Using Contact Expectation for Routing in Delay Tolerant Networks"*
//! (Chen & Lou, ICPP 2011). It plays the role the ONE simulator plays in the
//! paper: nodes with finite buffers meet intermittently, routing protocols
//! exchange control state and messages during contacts, and delivery ratio /
//! latency / goodput are collected.
//!
//! The crate is split along the paper's layering:
//!
//! * [`trace`] — contact traces, the interface to mobility models;
//! * [`source`] — the streaming contact supply ([`ContactSource`]):
//!   contact events pulled in windows instead of a whole-horizon trace;
//! * [`router`] — the protocol callback API ([`Router`]);
//! * [`engine`] — the discrete-event engine ([`Simulation`]);
//! * [`observe`] — the observation layer: [`SimEvent`] stream,
//!   [`SimObserver`] probes (time series, latency histograms), and the
//!   off-thread drain mode ([`DrainMode`]);
//! * [`ring`] — the bounded lock-free SPSC ring under the off-thread drain;
//! * [`eventlog`] — durable TRACE/1.0 event-log artifacts
//!   ([`EventLogWriter`]) and re-simulation-free replay ([`TraceReader`]);
//! * [`buffer`], [`message`], [`stats`], [`event`], [`time`], [`ids`] —
//!   supporting building blocks.
//!
//! ## Quick example
//!
//! ```
//! use dtn_sim::prelude::*;
//!
//! // A toy protocol: forward only directly to the destination.
//! struct Direct;
//! impl Router for Direct {
//!     fn label(&self) -> &'static str { "direct" }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//!     fn pick_transfer(&mut self, ctx: &mut ContactCtx) -> Option<TransferPlan> {
//!         ctx.buf.iter()
//!             .find(|e| e.msg.dst == ctx.peer && !ctx.sent.contains(&e.msg.id))
//!             .map(|e| TransferPlan::forward(e.msg.id))
//!     }
//! }
//!
//! // n0 meets n1 at t=10 for 5 seconds.
//! let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 15.0)]);
//! let workload = vec![MessageSpec {
//!     create_at: SimTime::secs(1.0),
//!     src: NodeId(0), dst: NodeId(1), size: 1000, ttl: 50.0,
//! }];
//! let sim = Simulation::new(&trace, workload, SimConfig::paper(0), |_, _| Box::new(Direct));
//! let stats = sim.run();
//! assert_eq!(stats.delivered, 1);
//! assert_eq!(stats.delivery_ratio(), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod engine;
pub mod event;
pub mod eventlog;
pub mod ids;
pub mod message;
pub mod observe;
pub mod report;
pub mod ring;
pub mod router;
pub mod source;
pub mod stats;
pub mod time;
pub mod trace;

pub use buffer::{Buffer, BufferEntry, DropReason};
pub use engine::{SimConfig, Simulation};
pub use eventlog::{EventLogWriter, TraceMeta, TraceReader};
pub use ids::{MessageId, NodeId, NodePair};
pub use message::{Message, MessageArena, MessageSpec, TrafficConfig};
pub use observe::{
    DrainMode, LatencyHistogram, LatencyHistogramProbe, SimEvent, SimObserver, TimeSeries,
    TimeSeriesProbe, TsSample,
};
pub use router::{ContactCtx, NodeCtx, Router, SentSet, TransferAction, TransferPlan};
pub use source::{ContactEvent, ContactSource, TraceReplaySource};
pub use stats::{MetricPoint, SimStats, StatsSnapshot};
pub use time::SimTime;
pub use trace::{Contact, ContactTrace, TraceError, TraceStats};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::buffer::{Buffer, BufferEntry, DropReason};
    pub use crate::engine::{SimConfig, Simulation};
    pub use crate::ids::{MessageId, NodeId, NodePair};
    pub use crate::message::{Message, MessageSpec, TrafficConfig};
    pub use crate::router::{ContactCtx, NodeCtx, Router, SentSet, TransferAction, TransferPlan};
    pub use crate::source::{ContactEvent, ContactSource, TraceReplaySource};
    pub use crate::stats::{MetricPoint, SimStats, StatsSnapshot};
    pub use crate::time::SimTime;
    pub use crate::trace::{Contact, ContactTrace, TraceStats};
}
