//! The observer-refactor contract, property-tested:
//!
//! 1. **`SimStats` is the default observer.** An external `SimStats` replica
//!    fed only from the [`SimEvent`] stream is *bitwise* identical to the
//!    engine's own statistics — counters, float accumulators and the
//!    per-message delivery log alike.
//! 2. **Probes are pure observation.** Attaching observers (time-series
//!    probe, latency histogram, raw event log) never changes a run's
//!    `SimStats` relative to the unobserved run.
//! 3. **The event stream is self-consistent** with the stats it reproduces
//!    (relay/delivery/drop counts line up), and the time-series probe's
//!    final sample agrees with the end-of-run counters.

use dtn_sim::observe::{EventLog, LatencyHistogramProbe, SimEvent, TimeSeriesProbe};
use dtn_sim::prelude::*;
use proptest::prelude::*;
use std::any::Any;

/// A quota-flooding router: copies every offerable message, splitting its
/// copy budget — enough traffic to exercise relays, duplicates, refusals,
/// TTL drops and buffer evictions.
struct Flood {
    quota: u32,
}

impl Router for Flood {
    fn label(&self) -> &'static str {
        "flood"
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn initial_copies(&self, _msg: &Message) -> u32 {
        self.quota
    }
    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        ctx.control_bytes(16);
        let entry = ctx.buf.iter().find(|e| ctx.can_offer(e.msg.id))?;
        if entry.msg.dst == ctx.peer {
            Some(TransferPlan::forward(entry.msg.id))
        } else if entry.copies > 1 {
            Some(TransferPlan::split(entry.msg.id, entry.copies / 2))
        } else {
            Some(TransferPlan::copy(entry.msg.id))
        }
    }
}

/// A deterministic pseudo-random scenario: `n` nodes, repeated short
/// contacts, a workload stressing TTLs and small buffers.
fn scenario(n: u32, contacts_raw: &[(u32, u32, u32, u32)]) -> (ContactTrace, Vec<MessageSpec>) {
    let mut cursor = std::collections::HashMap::new();
    let mut contacts = Vec::new();
    for &(a, b, gap, dur) in contacts_raw {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        let start: f64 = *cursor.get(&key).unwrap_or(&0.0) + f64::from(gap % 37) + 1.0;
        let end = start + f64::from(dur % 19) + 0.5;
        cursor.insert(key, end);
        contacts.push(Contact::new(key.0, key.1, start, end));
    }
    let horizon = contacts
        .iter()
        .map(|c| c.end.as_secs())
        .fold(60.0, f64::max)
        + 10.0;
    let trace = ContactTrace::new(n, horizon, contacts);
    let mut workload = Vec::new();
    for i in 0..n.max(2) * 3 {
        let src = i % n;
        let dst = (i + 1 + i / n) % n;
        if src == dst {
            continue;
        }
        workload.push(MessageSpec {
            create_at: SimTime::secs(f64::from(i) * horizon / f64::from(n * 4)),
            src: NodeId(src),
            dst: NodeId(dst),
            size: 900,
            ttl: horizon * 0.6,
        });
    }
    (trace, workload)
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        // Tiny buffers force evictions and refusals.
        buffer_capacity: 4_000,
        ..SimConfig::paper(seed)
    }
}

/// Pathological probe cadences cannot reach the event loop: below
/// [`dtn_sim::engine::MIN_SAMPLE_INTERVAL`] attachment is rejected loudly
/// (a sub-resolution `dt` could flood — or below the clock's float
/// resolution, never advance — the queue), while the minimum itself runs
/// and terminates normally.
#[test]
fn subresolution_probe_cadence_is_rejected_and_min_cadence_runs() {
    let (trace, workload) = scenario(4, &[(0, 1, 5, 10), (1, 2, 5, 10), (2, 3, 5, 10)]);
    let factory = |_, _| Box::new(Flood { quota: 2 }) as Box<dyn Router>;

    let mut sim = Simulation::new(&trace, workload.clone(), cfg(1), factory);
    let attach = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.add_observer(Box::new(TimeSeriesProbe::new(1e-13)));
    }));
    assert!(attach.is_err(), "sub-millisecond cadence must be rejected");

    let plain = Simulation::new(&trace, workload.clone(), cfg(1), factory).run();
    let mut sim = Simulation::new(&trace, workload.clone(), cfg(1), factory);
    sim.add_observer(Box::new(TimeSeriesProbe::new(
        dtn_sim::engine::MIN_SAMPLE_INTERVAL,
    )));
    let (stats, observers) = sim.run_observed();
    assert_eq!(plain.snapshot(), stats.snapshot());
    let ts = observers[0]
        .as_any()
        .downcast_ref::<TimeSeriesProbe>()
        .unwrap()
        .series();
    assert!(
        (ts.samples.last().unwrap().t - trace.duration).abs() < 1e-9,
        "curve still closes at the horizon"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stats_replica_from_event_stream_is_bitwise_identical(
        n in 3u32..8,
        seed in 0u64..1000,
        contacts in proptest::collection::vec((0u32..8, 0u32..8, 0u32..200, 1u32..60), 4..60),
    ) {
        let (trace, workload) = scenario(n, &contacts);
        let factory = |_, _| Box::new(Flood { quota: 4 }) as Box<dyn Router>;

        // Reference: plain run, no observers.
        let plain = Simulation::new(&trace, workload.clone(), cfg(seed), factory).run();

        // Observed run: a SimStats replica driven purely by the event
        // stream, plus probes and an event log riding along.
        let mut sim = Simulation::new(&trace, workload.clone(), cfg(seed), factory);
        sim.add_observer(Box::new(SimStats::new(workload.len())));
        sim.add_observer(Box::new(TimeSeriesProbe::new(7.0)));
        sim.add_observer(Box::new(LatencyHistogramProbe::new()));
        sim.add_observer(Box::new(EventLog::default()));
        let (observed, observers) = sim.run_observed();

        // (2) Probes never change the run.
        prop_assert_eq!(plain.snapshot(), observed.snapshot(),
            "attaching observers changed the statistics");
        prop_assert_eq!(&plain.delivered_at, &observed.delivered_at);
        // Router-side control accounting is also untouched.
        prop_assert_eq!(plain.control_bytes, observed.control_bytes);

        // (1) The replica reproduces everything — control bytes (which
        // routers account directly, outside the event stream) are adopted
        // from the engine's final snapshot at on_end.
        let replica = observers[0].as_any().downcast_ref::<SimStats>().unwrap();
        prop_assert_eq!(replica.snapshot(), observed.snapshot(),
            "event-stream replica diverged from the engine's stats");
        prop_assert_eq!(replica.latency_sum.to_bits(), observed.latency_sum.to_bits(),
            "float accumulation order must match exactly");
        prop_assert_eq!(&replica.delivered_at, &observed.delivered_at);

        // (3) Stream self-consistency.
        let log = &observers[3].as_any().downcast_ref::<EventLog>().unwrap().events;
        let count = |f: &dyn Fn(&SimEvent) -> bool| log.iter().filter(|e| f(e)).count() as u64;
        prop_assert_eq!(count(&|e| matches!(e, SimEvent::Generated { .. })), observed.created);
        prop_assert_eq!(
            count(&|e| matches!(e,
                SimEvent::Forwarded { .. } | SimEvent::Refused { .. } | SimEvent::Delivered { .. })),
            observed.relayed
        );
        prop_assert_eq!(
            count(&|e| matches!(e, SimEvent::Delivered { first: true, .. })),
            observed.delivered
        );
        prop_assert_eq!(count(&|e| matches!(e, SimEvent::Aborted { .. })), observed.aborted);
        prop_assert_eq!(
            count(&|e| matches!(e, SimEvent::ContactStart { .. })),
            count(&|e| matches!(e, SimEvent::ContactEnd { .. })),
            "every contact that starts must end"
        );
        // Events arrive in non-decreasing time order.
        for w in log.windows(2) {
            prop_assert!(w[0].at() <= w[1].at(), "event stream went backwards in time");
        }

        // The time-series curve ends at the horizon with the final counters.
        let ts = observers[1].as_any().downcast_ref::<TimeSeriesProbe>().unwrap().series();
        let last = ts.samples.last().unwrap();
        prop_assert_eq!(last.delivered, observed.delivered);
        prop_assert_eq!(last.created, observed.created);
        prop_assert!((last.t - trace.duration).abs() < 1e-9,
            "curve must close at the horizon");
        for w in ts.samples.windows(2) {
            prop_assert!(w[0].delivered <= w[1].delivered, "cumulative counters decreased");
        }

        // The latency histogram counts exactly the deliveries.
        let hist = observers[2].as_any().downcast_ref::<LatencyHistogramProbe>().unwrap().histogram();
        prop_assert_eq!(hist.count, observed.delivered);
        prop_assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
        prop_assert!(hist.p50 <= hist.p95 && hist.p95 <= hist.p99 && hist.p99 <= hist.max);
    }
}
