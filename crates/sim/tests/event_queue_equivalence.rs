//! Differential property tests: the calendar [`EventQueue`] against the
//! `BinaryHeap` reference [`HeapEventQueue`]. Both must pop identical
//! `(time, kind)` sequences under arbitrary push/peek/pop interleavings,
//! including equal-time FIFO order within each sequence band.

use dtn_sim::event::{EventKind, EventQueue, HeapEventQueue};
use dtn_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Arbitrary interleavings of band pushes, peeks, and pops agree between
    /// the calendar queue and the heap, then both drain identically.
    #[test]
    fn calendar_and_heap_pop_identically(
        ops in proptest::collection::vec((0u32..4, 0u32..2000), 1..300)
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut i = 0u32;
        for (op, t) in ops {
            // Non-integral, clustered times exercise bucket boundaries.
            let time = SimTime::secs(f64::from(t) * 0.31);
            match op {
                0 => {
                    cal.push(time, EventKind::MessageCreate { spec_idx: i });
                    heap.push(time, EventKind::MessageCreate { spec_idx: i });
                    i += 1;
                }
                1 => {
                    let pair = NodePair::new(NodeId(0), NodeId(1 + (i % 7)));
                    cal.push_contact(time, EventKind::ContactUp { pair });
                    heap.push_contact(time, EventKind::ContactUp { pair });
                    i += 1;
                }
                2 => prop_assert_eq!(cal.peek_time(), heap.peek_time()),
                _ => prop_assert_eq!(cal.pop(), heap.pop()),
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.is_empty(), heap.is_empty());
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// At one shared timestamp, both queues pop the contact band first, each
    /// band in FIFO push order, regardless of push interleaving.
    #[test]
    fn equal_time_bands_pop_fifo(
        contact_first in proptest::collection::vec(any::<bool>(), 1..40)
    ) {
        let t = SimTime::secs(42.5);
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut contacts = Vec::new();
        let mut others = Vec::new();
        for (i, is_contact) in contact_first.iter().enumerate() {
            let i = i as u32;
            if *is_contact {
                let kind = EventKind::ContactUp {
                    pair: NodePair::new(NodeId(0), NodeId(i + 1)),
                };
                cal.push_contact(t, kind);
                heap.push_contact(t, kind);
                contacts.push(kind);
            } else {
                let kind = EventKind::MessageCreate { spec_idx: i };
                cal.push(t, kind);
                heap.push(t, kind);
                others.push(kind);
            }
        }
        for expect in contacts.into_iter().chain(others) {
            let (ct, ck) = cal.pop().expect("calendar has the event");
            let (ht, hk) = heap.pop().expect("heap has the event");
            prop_assert_eq!(ct, t);
            prop_assert_eq!(ht, t);
            prop_assert_eq!(ck, expect);
            prop_assert_eq!(hk, expect);
        }
        prop_assert!(cal.pop().is_none());
        prop_assert!(heap.pop().is_none());
    }
}
