//! Engine edge cases: aborted transfers, refused receptions, mid-flight
//! expiry, zero-capacity corners, tick scheduling and bandwidth accounting.

use dtn_sim::prelude::*;
use std::any::Any;

/// A router that floods everything (epidemic semantics) — test fixture.
struct Flood;
impl Router for Flood {
    fn label(&self) -> &'static str {
        "flood"
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        ctx.buf
            .iter()
            .find(|e| e.msg.dst == ctx.peer && !ctx.sent.contains(&e.msg.id))
            .map(|e| TransferPlan::copy(e.msg.id))
            .or_else(|| {
                ctx.buf
                    .iter()
                    .find(|e| ctx.can_offer(e.msg.id))
                    .map(|e| TransferPlan::copy(e.msg.id))
            })
    }
}

fn flood_factory(_: NodeId, _: u32) -> Box<dyn Router> {
    Box::new(Flood)
}

fn msg(src: u32, dst: u32, create: f64, size: u32, ttl: f64) -> MessageSpec {
    MessageSpec {
        create_at: SimTime::secs(create),
        src: NodeId(src),
        dst: NodeId(dst),
        size,
        ttl,
    }
}

/// A contact too short for the transfer aborts it; a later long contact
/// succeeds.
#[test]
fn short_contact_aborts_transfer() {
    // 1 MB message at 250 KB/s needs 4 s; first contact lasts 1 s.
    let trace = ContactTrace::new(
        2,
        100.0,
        vec![
            Contact::new(0, 1, 10.0, 11.0),
            Contact::new(0, 1, 50.0, 60.0),
        ],
    );
    let wl = vec![msg(0, 1, 1.0, 1_000_000, 95.0)];
    let mut cfg = SimConfig::paper(0);
    cfg.buffer_capacity = 2_000_000;
    let stats = Simulation::new(&trace, wl, cfg, flood_factory).run();
    assert_eq!(stats.aborted, 1, "first attempt must abort");
    assert_eq!(stats.delivered, 1, "second contact is long enough");
    assert_eq!(stats.relayed, 1);
    // Delivery lands at 50 + 4 s; created at 1.
    assert!((stats.avg_latency() - 53.0).abs() < 1e-6);
}

/// A message that never fits the receiver's buffer is refused, not lost at
/// the sender.
#[test]
fn oversized_message_is_refused_by_receiver() {
    let trace = ContactTrace::new(3, 100.0, vec![Contact::new(0, 1, 10.0, 50.0)]);
    // Message destined to node 2 (so it must be *stored*, not delivered,
    // at node 1) and bigger than node 1's whole buffer.
    let wl = vec![msg(0, 2, 1.0, 900_000, 95.0)];
    let mut cfg = SimConfig::paper(0);
    cfg.buffer_capacity = 500_000;
    // Give the source room via a custom arrangement: source buffers are the
    // same size, so the creation itself must fail too. Verify that path:
    let stats = Simulation::new(&trace, wl.clone(), cfg, flood_factory).run();
    assert_eq!(stats.created, 1);
    assert_eq!(stats.drops_buffer, 1, "creation over capacity is dropped");
    assert_eq!(stats.relayed, 0);

    // Now with a buffer that fits exactly one copy at the source: the relay
    // to node 1 succeeds (same capacity) — refusal needs asymmetry, which
    // the engine models per-node via make_room failing only when the
    // incoming exceeds *capacity*; equal capacities accept here.
    let mut cfg2 = SimConfig::paper(0);
    cfg2.buffer_capacity = 1_000_000;
    let stats2 = Simulation::new(&trace, wl, cfg2, flood_factory).run();
    assert_eq!(stats2.drops_buffer, 0);
    assert_eq!(stats2.relayed, 1);
}

/// TTL expires while the message is in flight: the transfer is wasted, the
/// receiver gets nothing.
#[test]
fn expiry_mid_flight_wastes_transfer() {
    // Transfer takes 4 s; the message expires 1 s into it.
    let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 20.0)]);
    let wl = vec![msg(0, 1, 1.0, 1_000_000, 10.0)]; // expires at t=11
    let mut cfg = SimConfig::paper(0);
    cfg.buffer_capacity = 2_000_000;
    cfg.ttl_sweep = 0.5;
    let stats = Simulation::new(&trace, wl, cfg, flood_factory).run();
    assert_eq!(stats.delivered, 0);
    assert_eq!(stats.drops_ttl, 1, "swept at the source");
    assert_eq!(stats.aborted, 1, "in-flight transfer voided");
}

/// Link setup latency delays deliveries accordingly.
#[test]
fn link_setup_adds_latency() {
    let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 20.0)]);
    let wl = vec![msg(0, 1, 1.0, 25_000, 90.0)];
    let mut cfg = SimConfig::paper(0);
    cfg.link_setup = 2.0;
    let stats = Simulation::new(&trace, wl, cfg, flood_factory).run();
    assert_eq!(stats.delivered, 1);
    // 10 (contact) + 2 (setup) + 0.1 (25 KB at 250 KB/s) − 1 (created).
    assert!(
        (stats.avg_latency() - 11.1).abs() < 1e-6,
        "{}",
        stats.avg_latency()
    );
}

/// Messages created before any contact are delivered through later contacts
/// of the same pair (link epochs don't leak across contacts).
#[test]
fn link_epochs_do_not_leak_across_contacts() {
    let trace = ContactTrace::new(
        2,
        300.0,
        vec![
            Contact::new(0, 1, 10.0, 12.0),
            Contact::new(0, 1, 100.0, 102.0),
            Contact::new(0, 1, 200.0, 202.0),
        ],
    );
    // Three messages created between contacts.
    let wl = vec![
        msg(0, 1, 5.0, 25_000, 290.0),
        msg(0, 1, 50.0, 25_000, 240.0),
        msg(0, 1, 150.0, 25_000, 140.0),
    ];
    let stats = Simulation::new(&trace, wl, SimConfig::paper(0), flood_factory).run();
    assert_eq!(stats.delivered, 3);
    assert_eq!(stats.aborted, 0);
}

/// Router ticks fire at the configured cadence.
#[test]
fn router_ticks_fire() {
    struct Ticker {
        count: std::rc::Rc<std::cell::Cell<u32>>,
    }
    impl Router for Ticker {
        fn label(&self) -> &'static str {
            "ticker"
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn tick_interval(&self) -> Option<f64> {
            Some(10.0)
        }
        fn on_tick(&mut self, _ctx: &mut NodeCtx<'_>) {
            self.count.set(self.count.get() + 1);
        }
    }
    let count = std::rc::Rc::new(std::cell::Cell::new(0));
    let trace = ContactTrace::new(2, 100.0, vec![]);
    let c2 = std::rc::Rc::clone(&count);
    let mut sim = Simulation::new(&trace, vec![], SimConfig::paper(0), move |id, _| {
        if id == NodeId(0) {
            Box::new(Ticker {
                count: std::rc::Rc::clone(&c2),
            })
        } else {
            Box::new(Flood)
        }
    });
    sim.run_to_end();
    // Ticks at 10, 20, ..., 90 (no tick at or after the 100 s horizon).
    assert_eq!(count.get(), 9);
}

/// Bandwidth serialises transfers: three messages over one 2 s contact at
/// 250 KB/s move at most 500 KB.
#[test]
fn bandwidth_limits_throughput() {
    let trace = ContactTrace::new(2, 100.0, vec![Contact::new(0, 1, 10.0, 12.0)]);
    let wl = vec![
        msg(0, 1, 1.0, 200_000, 90.0),
        msg(0, 1, 2.0, 200_000, 90.0),
        msg(0, 1, 3.0, 200_000, 90.0),
    ];
    let stats = Simulation::new(&trace, wl, SimConfig::paper(0), flood_factory).run();
    // 200 KB needs 0.8 s; the 2 s window fits two completions, the third
    // aborts at contact end.
    assert_eq!(stats.delivered, 2);
    assert_eq!(stats.aborted, 1);
}

/// A trace failing validation panics with the offending contact's index,
/// so bad inputs are diagnosable.
#[test]
#[should_panic(expected = "contact #1")]
fn invalid_trace_panic_names_contact_index() {
    // Second contact extends past the 20 s horizon.
    let trace = ContactTrace::new(
        2,
        20.0,
        vec![Contact::new(0, 1, 1.0, 2.0), Contact::new(0, 1, 5.0, 30.0)],
    );
    let _ = Simulation::new(&trace, vec![], SimConfig::paper(0), flood_factory);
}

/// Concurrently active links each get their own slot, and slots recycled by
/// later contacts don't inherit the previous contact's sent-set.
#[test]
fn concurrent_links_and_slot_recycling() {
    let trace = ContactTrace::new(
        4,
        100.0,
        vec![
            Contact::new(0, 1, 10.0, 20.0),
            Contact::new(2, 3, 12.0, 22.0), // concurrent with (0,1)
            Contact::new(1, 2, 30.0, 40.0), // reuses a freed slot
            Contact::new(0, 1, 35.0, 45.0), // concurrent again, different epoch
        ],
    );
    // 0 → 2 must travel 0 → 1 (first contact) then 1 → 2 (recycled slot).
    let wl = vec![msg(0, 2, 1.0, 25_000, 90.0)];
    let stats = Simulation::new(&trace, wl, SimConfig::paper(0), flood_factory).run();
    assert_eq!(stats.delivered, 1);
    assert_eq!(stats.relayed, 2, "two hops: 0→1 and 1→2");
    assert_eq!(stats.aborted, 0);
}

/// An empty trace (no contacts at all) runs to completion with zero
/// deliveries and proper TTL accounting.
#[test]
fn no_contacts_no_deliveries() {
    let trace = ContactTrace::new(4, 2_000.0, vec![]);
    let wl = vec![msg(0, 1, 1.0, 25_000, 100.0), msg(2, 3, 5.0, 25_000, 100.0)];
    let stats = Simulation::new(&trace, wl, SimConfig::paper(0), flood_factory).run();
    assert_eq!(stats.created, 2);
    assert_eq!(stats.delivered, 0);
    assert_eq!(stats.relayed, 0);
    assert_eq!(stats.drops_ttl, 2, "both messages expire unserved");
}

/// A router that proposes a fixed, possibly out-of-bounds `Split { give }`
/// for whatever it holds — the fixture for the plan-validation panics.
struct BadSplitter {
    give: u32,
}
impl Router for BadSplitter {
    fn label(&self) -> &'static str {
        "bad-splitter"
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn initial_copies(&self, _msg: &Message) -> u32 {
        4
    }
    fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
        ctx.buf
            .iter()
            .find(|e| ctx.can_offer(e.msg.id))
            .map(|e| TransferPlan::split(e.msg.id, self.give))
    }
}

fn bad_split_sim(give: u32) -> SimStats {
    let trace = ContactTrace::new(3, 100.0, vec![Contact::new(0, 1, 10.0, 50.0)]);
    // Destination 2 is never met, so the split to node 1 is a real relay,
    // not a delivery short-circuit.
    let wl = vec![msg(0, 2, 1.0, 25_000, 90.0)];
    Simulation::new(&trace, wl, SimConfig::paper(0), |_, _| {
        Box::new(BadSplitter { give })
    })
    .run()
}

/// `Split { give: 0 }` is a router bug and must fail loudly instead of being
/// silently bumped to one copy.
#[test]
#[should_panic(expected = "Split { give: 0 }")]
fn zero_copy_split_panics() {
    let _ = bad_split_sim(0);
}

/// A split handing over more copies than the sender holds must fail loudly
/// instead of silently corrupting copy conservation.
#[test]
#[should_panic(expected = "holds only 4 copies")]
fn oversized_split_panics() {
    let _ = bad_split_sim(9);
}

/// The boundary case stays valid: giving exactly the held copy count is a
/// legal (forward-everything) split — no panic, and the copies move.
#[test]
fn full_split_is_legal() {
    let stats = bad_split_sim(4);
    assert!(stats.relayed >= 1, "the full split must transfer");
    assert_eq!(stats.delivered, 0, "destination is never met");
}
