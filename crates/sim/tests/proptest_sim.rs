//! Property-based tests of the simulator's core data structures.

use dtn_sim::event::{EventKind, EventQueue};
use dtn_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// The event queue pops in (time, insertion-order) order — i.e. it is a
    /// stable priority queue.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u32..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::secs(f64::from(*t)), EventKind::MessageCreate { spec_idx: i as u32 });
        }
        // Reference: stable sort by time.
        let mut expect: Vec<(u32, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|(t, _)| *t);
        for (t, idx) in expect {
            let (pt, kind) = q.pop().expect("queue length matches");
            prop_assert_eq!(pt, SimTime::secs(f64::from(t)));
            match kind {
                EventKind::MessageCreate { spec_idx } => prop_assert_eq!(spec_idx as usize, idx),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        prop_assert!(q.pop().is_none());
    }

    /// Buffer byte accounting matches a model under arbitrary
    /// insert/remove interleavings.
    #[test]
    fn buffer_accounting_matches_model(ops in proptest::collection::vec((any::<bool>(), 0u32..30, 1u32..500), 1..200)) {
        let capacity = 2_000u64;
        let mut buf = Buffer::new(capacity);
        let mut model: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (insert, id, size) in ops {
            if insert {
                let entry = BufferEntry {
                    msg: Message {
                        id: MessageId(id),
                        src: NodeId(0),
                        dst: NodeId(1),
                        size,
                        created: SimTime::ZERO,
                        ttl: 1e9,
                    },
                    copies: 1,
                    received_at: SimTime::ZERO,
                    hops: 0,
                };
                let used: u64 = model.values().map(|&s| u64::from(s)).sum();
                let should_fit = used + u64::from(size) <= capacity && !model.contains_key(&id);
                match buf.insert(entry) {
                    Ok(()) => {
                        prop_assert!(should_fit, "insert succeeded but model says no room/dup");
                        model.insert(id, size);
                    }
                    Err(_) => prop_assert!(!should_fit, "insert failed but model says ok"),
                }
            } else {
                let got = buf.remove(MessageId(id));
                let expect = model.remove(&id);
                prop_assert_eq!(got.map(|e| e.msg.size), expect);
            }
            let used: u64 = model.values().map(|&s| u64::from(s)).sum();
            prop_assert_eq!(buf.used(), used);
            prop_assert_eq!(buf.len(), model.len());
            prop_assert!(buf.used() <= buf.capacity());
        }
    }

    /// Trace text serialisation round-trips arbitrary valid traces.
    #[test]
    fn trace_text_round_trips(raw in proptest::collection::vec((0u32..6, 0u32..6, 1u32..100, 1u32..50), 0..50)) {
        let mut cursor = std::collections::HashMap::new();
        let mut contacts = Vec::new();
        for (a, b, gap, dur) in raw {
            if a == b { continue; }
            let key = (a.min(b), a.max(b));
            let start: f64 = *cursor.get(&key).unwrap_or(&0.0) + f64::from(gap) * 0.5;
            let end = start + f64::from(dur) * 0.25;
            cursor.insert(key, end);
            contacts.push(Contact::new(key.0, key.1, start, end));
        }
        let horizon = contacts.iter().map(|c| c.end.as_secs()).fold(0.0, f64::max) + 1.0;
        let trace = ContactTrace::new(6, horizon, contacts);
        prop_assert!(trace.validate().is_ok());
        let parsed = ContactTrace::from_text(&trace.to_text()).unwrap();
        prop_assert_eq!(parsed.n_nodes, trace.n_nodes);
        prop_assert_eq!(parsed.contacts.len(), trace.contacts.len());
        for (x, y) in parsed.contacts.iter().zip(&trace.contacts) {
            prop_assert_eq!(x.pair, y.pair);
            prop_assert!((x.start.as_secs() - y.start.as_secs()).abs() < 1e-9);
            prop_assert!((x.end.as_secs() - y.end.as_secs()).abs() < 1e-9);
        }
    }

    /// SimTime ordering agrees with f64 ordering on finite values.
    #[test]
    fn simtime_order_matches_f64(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let (ta, tb) = (SimTime::secs(a), SimTime::secs(b));
        prop_assert_eq!(ta.cmp(&tb), a.partial_cmp(&b).unwrap());
        prop_assert_eq!(ta.max(tb).as_secs(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_secs(), a.min(b));
        prop_assert!(ta.since(tb) >= 0.0);
    }

    /// The traffic generator always produces a sane workload.
    #[test]
    fn traffic_generator_is_sane(n in 2u32..50, seed in any::<u64>()) {
        let cfg = TrafficConfig::paper(2_000.0);
        let wl = cfg.generate(n, seed);
        let mut prev = 0.0;
        for m in &wl {
            prop_assert!(m.src != m.dst);
            prop_assert!(m.src.0 < n && m.dst.0 < n);
            prop_assert!(m.create_at.as_secs() < 2_000.0);
            prop_assert!(m.create_at.as_secs() >= prev);
            prev = m.create_at.as_secs();
        }
    }
}
