//! Stress and soak tests for the SPSC ring and the off-thread observer
//! drain built on it: wrap-around at tiny capacities, backpressure with a
//! producer outrunning its consumer, panic propagation in both directions
//! (no hang, no lost item), drain-vs-inline bitwise equivalence at the
//! engine level, and a `#[ignore]`-gated 60 s soak run for the scheduled
//! CI `soak` job.

use dtn_sim::observe::DrainMode;
use dtn_sim::prelude::*;
use dtn_sim::ring;
use dtn_sim::{LatencyHistogramProbe, SimEvent, SimObserver, TimeSeriesProbe};
use std::time::{Duration, Instant};

/// Tiny capacities force constant wrap-around: every slot is reused many
/// times, yet FIFO order and completeness hold for a million items.
#[test]
fn wrap_around_under_tiny_capacity() {
    for capacity in [1usize, 2, 3] {
        let (mut tx, mut rx) = ring::channel::<u64>(capacity);
        const N: u64 = 1_000_000;
        let consumer = std::thread::spawn(move || {
            let mut expect = 0u64;
            while let Some(v) = rx.pop() {
                assert_eq!(v, expect, "capacity {capacity}: out of order");
                expect += 1;
            }
            expect
        });
        for v in 0..N {
            tx.push(v).expect("consumer alive");
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), N, "capacity {capacity}");
    }
}

/// A producer outrunning a deliberately slow consumer is throttled by the
/// full ring (backpressure), and still no item is lost or reordered.
#[test]
fn backpressure_throttles_fast_producer() {
    let (mut tx, mut rx) = ring::channel::<u32>(4);
    const N: u32 = 2_000;
    let consumer = std::thread::spawn(move || {
        let mut got = Vec::new();
        while let Some(v) = rx.pop() {
            if v % 64 == 0 {
                // Stall periodically so the ring is full most of the time.
                std::thread::sleep(Duration::from_micros(200));
            }
            got.push(v);
        }
        got
    });
    let t0 = Instant::now();
    for v in 0..N {
        tx.push(v).expect("consumer alive");
    }
    let produce_time = t0.elapsed();
    drop(tx);
    let got = consumer.join().unwrap();
    assert_eq!(got, (0..N).collect::<Vec<_>>());
    // ~31 stalls of 200 µs must have back-propagated into push: an
    // unbounded queue would finish producing in microseconds.
    assert!(
        produce_time > Duration::from_millis(2),
        "producer never blocked: {produce_time:?}"
    );
}

/// A consumer dying mid-stream (its thread panics and the `Consumer` is
/// dropped during unwind) must not hang the producer: `push` starts
/// returning the rejected item instead.
#[test]
fn dead_consumer_unblocks_producer() {
    let (mut tx, mut rx) = ring::channel::<u32>(2);
    let consumer = std::thread::spawn(move || {
        let v = rx.pop().unwrap();
        panic!("consumer exploded on {v}");
    });
    tx.push(0).expect("consumer alive at start");
    assert!(consumer.join().is_err(), "consumer must have panicked");
    // The ring is now dead: within a bounded number of pushes (at most the
    // capacity can still be accepted into free slots... it cannot — `dead`
    // is checked first), pushes bounce immediately.
    assert_eq!(tx.push(1), Err(1));
    assert_eq!(tx.push(2), Err(2));
}

/// A producer dying mid-stream (dropped during unwind) closes the ring:
/// the consumer drains exactly the items pushed before the death — none
/// lost, none invented — and then sees `None` instead of hanging.
#[test]
fn producer_panic_loses_no_records() {
    let (tx, mut rx) = ring::channel::<u32>(8);
    let producer = std::thread::spawn(move || {
        let mut tx = tx;
        for v in 0..5 {
            tx.push(v).expect("consumer alive");
        }
        panic!("producer exploded after 5 pushes");
    });
    let mut got = Vec::new();
    while let Some(v) = rx.pop() {
        got.push(v);
    }
    assert_eq!(got, vec![0, 1, 2, 3, 4], "items pushed before the panic");
    assert!(producer.join().is_err(), "producer must have panicked");
}

/// Builds a small simulation with real forwarding work: a ring of repeating
/// meetings over 8 nodes, flooding protocol, a handful of messages.
fn build_sim(observed: bool, drain: Option<usize>) -> Simulation {
    struct Flood;
    impl Router for Flood {
        fn label(&self) -> &'static str {
            "flood"
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn pick_transfer(&mut self, ctx: &mut ContactCtx<'_>) -> Option<TransferPlan> {
            let sent = ctx.sent;
            ctx.buf
                .iter()
                .find(|e| {
                    !sent.contains(&e.msg.id)
                        && (e.msg.dst == ctx.peer || !ctx.peer_buf.contains(e.msg.id))
                })
                .map(|e| TransferPlan::copy(e.msg.id))
        }
    }

    let mut contacts = Vec::new();
    for round in 0..20u32 {
        let t0 = f64::from(round) * 60.0;
        for i in 0..8u32 {
            let start = t0 + f64::from(i) * 3.0;
            contacts.push(Contact::new(i, (i + 1) % 8, start, start + 10.0));
        }
    }
    let trace = ContactTrace::new(8, 1_200.0, contacts);
    let workload: Vec<MessageSpec> = (0..16u32)
        .map(|k| MessageSpec {
            create_at: SimTime::secs(f64::from(k) * 9.0 + 1.0),
            src: NodeId(k % 8),
            dst: NodeId((k + 3) % 8),
            size: 1_000,
            ttl: 900.0,
        })
        .collect();
    let mut sim = Simulation::new(&trace, workload, SimConfig::paper(0), |_, _| {
        Box::new(Flood)
    });
    if observed {
        sim.add_observer(Box::new(TimeSeriesProbe::new(60.0)));
        sim.add_observer(Box::new(LatencyHistogramProbe::new()));
    }
    if let Some(capacity) = drain {
        sim.set_drain_mode(DrainMode::Ring { capacity });
    }
    sim
}

/// Engine-level drain equivalence: for capacities down to the rendezvous
/// case, a ring-drained run returns bitwise-identical stats and probe
/// states to inline dispatch, with observers restored in attachment order.
#[test]
fn ring_drain_matches_inline_dispatch() {
    let (inline_stats, inline_obs) = build_sim(true, None).run_observed();
    for capacity in [1usize, 2, 64] {
        let (stats, obs) = build_sim(true, Some(capacity)).run_observed();
        assert_eq!(
            stats.snapshot(),
            inline_stats.snapshot(),
            "capacity {capacity}: stats diverged"
        );
        assert_eq!(obs.len(), inline_obs.len());
        let ts = obs[0].as_any().downcast_ref::<TimeSeriesProbe>().unwrap();
        let inline_ts = inline_obs[0]
            .as_any()
            .downcast_ref::<TimeSeriesProbe>()
            .unwrap();
        assert_eq!(
            ts.series(),
            inline_ts.series(),
            "capacity {capacity}: probe curve diverged"
        );
        let lat = obs[1]
            .as_any()
            .downcast_ref::<LatencyHistogramProbe>()
            .unwrap();
        let inline_lat = inline_obs[1]
            .as_any()
            .downcast_ref::<LatencyHistogramProbe>()
            .unwrap();
        assert_eq!(
            lat.histogram(),
            inline_lat.histogram(),
            "capacity {capacity}: histogram diverged"
        );
    }
}

/// The TRACE/1.0 hash chain survives the drain thread: recording the same
/// run to the same path inline and ring-drained yields byte-identical
/// artifacts — records, chain values, trailer and fingerprint included —
/// because the drain preserves batch order and the end-of-run barrier
/// guarantees the trailer is written before `run_observed` returns.
#[test]
fn ring_drain_writes_an_identical_trace_artifact() {
    use dtn_sim::{EventLogWriter, TraceMeta};
    let dir = std::env::temp_dir().join(format!("dtn_ring_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.trace");
    let record = |drain: Option<usize>| {
        let meta = TraceMeta {
            cell_key: "ring-test-cell".into(),
            seed: 0,
            horizon: 1_200.0,
            n_nodes: 8,
            n_messages: 16,
            labels: Vec::new(),
        };
        let mut sim = build_sim(true, drain);
        sim.add_observer(Box::new(EventLogWriter::create(&path, &meta).unwrap()));
        sim.run_observed();
        std::fs::read(&path).unwrap()
    };
    let inline_bytes = record(None);
    // Capacity 1 maximizes producer/consumer interleaving on the artifact.
    let ring_bytes = record(Some(1));
    assert_eq!(inline_bytes, ring_bytes, "artifact bytes diverged");
    std::fs::remove_dir_all(&dir).ok();
}

/// An observer panicking on the drain thread must re-surface on the
/// simulation thread as a panic — never a hang, never a silently
/// truncated run.
#[test]
fn drain_side_observer_panic_propagates() {
    struct Grenade {
        batches: u32,
    }
    impl SimObserver for Grenade {
        fn on_events(&mut self, _batch: &[SimEvent]) {
            self.batches += 1;
            if self.batches == 2 {
                panic!("observer exploded on batch 2");
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let result = std::panic::catch_unwind(|| {
        // Capacity 1 guarantees the engine is still publishing when the
        // drain dies, exercising the mid-run rejection path.
        let mut sim = build_sim(false, Some(1));
        sim.add_observer(Box::new(Grenade { batches: 0 }));
        sim.run_observed()
    });
    let payload = match result {
        Ok(_) => panic!("the drain-side panic must propagate"),
        Err(p) => p,
    };
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "observer exploded on batch 2");
}

/// 60 s soak for the scheduled CI `soak` job (`cargo test -p dtn-sim
/// --test ring --release -- --ignored`): tiny-capacity rings hammered
/// continuously, checking order, completeness and close/dead transitions
/// the whole time.
#[test]
#[ignore = "60 s soak; run via the scheduled CI soak job"]
fn soak_spsc_ring_for_a_minute() {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut round = 0u64;
    while Instant::now() < deadline {
        let capacity = 1 + (round as usize % 4);
        let items = 50_000 + (round % 7) * 9_973;
        let (mut tx, mut rx) = ring::channel::<u64>(capacity);
        let consumer = std::thread::spawn(move || {
            let mut expect = 0u64;
            while let Some(v) = rx.pop() {
                assert_eq!(v, expect, "round {round}: out of order");
                expect += 1;
            }
            expect
        });
        for v in 0..items {
            tx.push(v).expect("consumer alive");
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), items, "round {round}: item count");
        round += 1;
    }
    assert!(round > 0, "soak never completed a round");
}
