//! The lock-free sweep fabric: a work-stealing executor for `(spec, seed)`
//! cell jobs.
//!
//! [`run_matrix_records`](crate::runner::run_matrix_records) used to hand
//! cells to workers through a single `AtomicUsize` ticket counter and
//! collect results into per-spec `Mutex<Vec<_>>` slots. Both are
//! coordinator bottlenecks at million-cell scale: every worker contends on
//! one cache line for the ticket, and every completion takes a lock. The
//! fabric replaces them with the classic work-stealing shape:
//!
//! * The job list is an **immutable, pre-filled array** — jobs are never
//!   produced mid-run, only consumed. This is the property that makes the
//!   deque protocol below sufficient: emptiness is monotone, so a thief
//!   that sweeps every deque once and finds them all empty can retire.
//! * Each worker owns a **bounded deque over a contiguous block** of job
//!   indices (a Chase–Lev deque degenerated to a fixed array — no growth,
//!   no wrap). The owner pops from the bottom; thieves steal from the top.
//!   Owner and thief only meet on the last element, where a single CAS on
//!   `top` arbitrates.
//! * Results come back as worker-local `Vec<(job_index, T)>`s, merged and
//!   sorted by job index after the scope joins — **no shared result
//!   collection at all**, and the caller sees deterministic job order no
//!   matter which worker ran which cell.
//!
//! Determinism: each job is a pure function of its index (a cell run is a
//! pure function of `(spec, seed)`), so stealing reorders *execution* but
//! not *results*. A worker panic propagates after the scope joins (the
//! original payload is resumed), so no record is silently lost.

use std::sync::atomic::{AtomicIsize, Ordering};

/// One worker's deque: a window `[top, bottom)` over the shared job-index
/// space. The owner treats `bottom` as private-ish (it is atomic only so
/// thieves can read it); `top` is the contended end.
struct CellDeque {
    /// Next index a thief would take. Only ever increased, by CAS.
    top: AtomicIsize,
    /// One past the next index the owner would take. Decreased by the
    /// owner, restored on conflict.
    bottom: AtomicIsize,
}

impl CellDeque {
    fn new(start: usize, end: usize) -> Self {
        CellDeque {
            top: AtomicIsize::new(start as isize),
            bottom: AtomicIsize::new(end as isize),
        }
    }

    /// Owner-side take from the bottom. `None` once the block is exhausted.
    ///
    /// This is the Chase–Lev owner protocol on a fixed array: reserve by
    /// decrementing `bottom`, then check whether a thief got there first.
    /// On the last element, owner and thief race — a CAS on `top` decides,
    /// and `bottom` is restored either way so the deque ends canonical
    /// (`top == bottom`).
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.fetch_sub(1, Ordering::SeqCst) - 1;
        let t = self.top.load(Ordering::SeqCst);
        if t < b {
            // More than one element remained: the reservation is safely ours.
            return Some(b as usize);
        }
        let won = t == b
            && self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
        // Empty or contended-last-element: restore bottom to its value
        // before the reservation (on the last element `b + 1 == t + 1`, so
        // the deque ends canonical either way).
        self.bottom.store(b + 1, Ordering::SeqCst);
        won.then_some(b as usize)
    }

    /// Thief-side take from the top. `None` if the deque looks empty or the
    /// steal loses a race (the caller just moves on to the next victim).
    fn steal(&self) -> Option<usize> {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
            .then_some(t as usize)
    }

    /// Whether a thief sweeping for termination can skip this deque.
    fn is_empty(&self) -> bool {
        self.top.load(Ordering::SeqCst) >= self.bottom.load(Ordering::SeqCst)
    }
}

/// Runs `f(0), f(1), …, f(n_jobs - 1)` across `workers` threads with
/// work stealing, and returns the results **in job order** — exactly what a
/// sequential `(0..n_jobs).map(f).collect()` returns, whatever the thread
/// count.
///
/// The job space is split into `workers` contiguous blocks (front-loaded
/// remainder, so blocks differ by at most one job); each worker drains its
/// own block bottom-up, then steals from the top of the others. With
/// `workers <= 1` the fabric is bypassed entirely and the jobs run inline
/// on the calling thread.
///
/// # Panics
/// If any job panics, the panic payload is re-raised on the calling thread
/// after all workers have joined — results are never partially returned.
pub fn run_indexed<T, F>(n_jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n_jobs <= 1 {
        return (0..n_jobs).map(f).collect();
    }
    let workers = workers.min(n_jobs);

    // Contiguous blocks: the first `extra` workers get one more job.
    let base = n_jobs / workers;
    let extra = n_jobs % workers;
    let mut deques = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        deques.push(CellDeque::new(start, start + len));
        start += len;
    }

    let mut out: Vec<(usize, T)> = Vec::with_capacity(n_jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let deques = &deques;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    // Phase 1: drain the own block.
                    while let Some(j) = deques[me].pop() {
                        local.push((j, f(j)));
                    }
                    // Phase 2: steal until a full sweep finds every deque
                    // empty. Jobs are never added, so emptiness is monotone
                    // and one clean sweep proves termination.
                    loop {
                        let mut all_empty = true;
                        for k in 1..deques.len() {
                            let victim = &deques[(me + k) % deques.len()];
                            while let Some(j) = victim.steal() {
                                all_empty = false;
                                local.push((j, f(j)));
                            }
                            if !victim.is_empty() {
                                all_empty = false;
                            }
                        }
                        if all_empty {
                            break;
                        }
                    }
                    local
                })
            })
            .collect();
        let mut panic = None;
        for h in handles {
            match h.join() {
                Ok(local) => out.extend(local),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
    debug_assert_eq!(out.len(), n_jobs);
    out.sort_unstable_by_key(|&(j, _)| j);
    out.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_sequential_map_for_every_worker_count() {
        for n_jobs in [0usize, 1, 2, 7, 64, 1000] {
            let expect: Vec<usize> = (0..n_jobs).map(|j| j * 3 + 1).collect();
            for workers in [1usize, 2, 4, 8, 13] {
                let got = run_indexed(n_jobs, workers, |j| j * 3 + 1);
                assert_eq!(got, expect, "n_jobs={n_jobs} workers={workers}");
            }
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        const N: usize = 500;
        let counts: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(N, 8, |j| {
            counts[j].fetch_add(1, Ordering::SeqCst);
        });
        for (j, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {j}");
        }
    }

    #[test]
    fn stealing_is_exercised_under_skewed_load() {
        // Make the first block's jobs slow: the other workers must steal to
        // finish in any reasonable time, and results must still be ordered.
        const N: usize = 64;
        let got = run_indexed(N, 8, |j| {
            if j < N / 8 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            j
        });
        assert_eq!(got, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(32, 4, |j| {
                if j == 17 {
                    panic!("job 17 exploded");
                }
                j
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job 17 exploded");
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_indexed(3, 16, |j| j), vec![0, 1, 2]);
    }
}
