//! `dtnstore` — maintenance for the persistent content-addressed result
//! store (see `dtn_bench::store`).
//!
//! ```text
//! dtnstore <stats|verify|gc --max-bytes N> [--store DIR]
//! ```
//!
//! * `stats`  — entry count and payload bytes.
//! * `verify` — re-admit every entry through the full `reportcheck`
//!   validation plus the layout invariant (each entry must live at the path
//!   its record's cell key hashes to); exits nonzero when any entry fails.
//!   A failing entry is harmless at sweep time — admission makes it a miss,
//!   recomputed and republished — but `verify` names it now.
//! * `gc`     — evict least-recently-accessed entries until the payload is
//!   at most `--max-bytes` (atime, falling back to mtime).

use dtn_bench::{CellStore, DEFAULT_STORE_ROOT};
use std::path::Path;

const USAGE: &str = "usage: dtnstore <command> [--store DIR]

  stats                 entry count and payload bytes
  verify                validate every entry (reportcheck admission + layout);
                        exit 1 when any entry fails
  gc --max-bytes N      evict least-recently-accessed entries until the
                        payload is at most N bytes

  --store DIR           store root (default results/store)";

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if argv.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let command = argv.remove(0);

    let mut root = DEFAULT_STORE_ROOT.to_string();
    let mut max_bytes: Option<u64> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--store" => root = val("--store"),
            "--max-bytes" => match val("--max-bytes").parse() {
                Ok(v) => max_bytes = Some(v),
                Err(e) => {
                    eprintln!("--max-bytes: {e}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let store = match CellStore::open(Path::new(&root)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    match command.as_str() {
        "stats" => {
            let s = store.stats();
            println!(
                "{}: {} entr{}, {} bytes",
                store.root().display(),
                s.entries,
                if s.entries == 1 { "y" } else { "ies" },
                s.bytes
            );
        }
        "verify" => {
            let failures = store.verify();
            let total = store.stats().entries;
            if failures.is_empty() {
                println!(
                    "{}: {total} entr{} OK",
                    store.root().display(),
                    if total == 1 { "y" } else { "ies" }
                );
            } else {
                for (path, reason) in &failures {
                    eprintln!("FAIL {}: {reason}", path.display());
                }
                eprintln!("{} of {total} entries failed verification", failures.len());
                std::process::exit(1);
            }
        }
        "gc" => {
            let Some(max) = max_bytes else {
                eprintln!("gc needs --max-bytes N\n{USAGE}");
                std::process::exit(2);
            };
            let out = store.gc(max);
            println!(
                "{}: evicted {} entr{} ({} bytes), {} bytes remain",
                store.root().display(),
                out.evicted,
                if out.evicted == 1 { "y" } else { "ies" },
                out.freed_bytes,
                out.remaining_bytes
            );
        }
        other => {
            eprintln!("unknown command {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
