//! One-shot sanity run: every protocol on a single paper scenario, with raw
//! counters — the quickest way to eyeball that the stack behaves.
//!
//! ```text
//! cargo run -p bench --release --bin smoke -- [n_nodes] [seed]
//! ```

use dtn_bench::{run_spec, Protocol, ProtocolKind, RunSpec, ScenarioCache};
use std::time::Instant;

fn main() {
    let mut argv = std::env::args().skip(1);
    let n: u32 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed: u64 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let t0 = Instant::now();
    let cache = ScenarioCache::new();
    let ps = cache.get(n, seed);
    let ts = ps.scenario.trace.stats();
    eprintln!(
        "scenario n={n} seed={seed}: {} contacts (mean dur {:.2}s, mean intercontact {:.0}s), \
         {} messages, built in {:?}",
        ts.contacts,
        ts.mean_duration,
        ts.mean_intercontact,
        ps.workload.len(),
        t0.elapsed()
    );

    let all = [
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::Ebr,
        ProtocolKind::MaxProp,
        ProtocolKind::SprayAndWait,
        ProtocolKind::SprayAndFocus,
        ProtocolKind::Epidemic,
        ProtocolKind::Prophet,
        ProtocolKind::Direct,
        ProtocolKind::FirstContact,
    ];
    for kind in all {
        let spec = RunSpec::new(kind.name(), n, Protocol::new(kind));
        let t = Instant::now();
        let stats = run_spec(&cache, &spec, seed);
        println!(
            "{:<14} dr={:.3} lat={:>6.1} gp={:.4} relayed={:>6} dup={:>4} aborted={:>5} \
             drops(buf/ttl/proto)={}/{}/{} ctrl={:>8}KB  [{:.2?}]",
            kind.name(),
            stats.delivery_ratio(),
            stats.avg_latency(),
            stats.goodput(),
            stats.relayed,
            stats.duplicate_deliveries,
            stats.aborted,
            stats.drops_buffer,
            stats.drops_ttl,
            stats.drops_protocol,
            stats.control_bytes / 1024,
            t.elapsed()
        );
    }
}
