//! One-shot sanity run: every protocol on a single scenario, with raw
//! counters — the quickest way to eyeball that the stack behaves.
//!
//! ```text
//! cargo run -p bench --release --bin smoke -- [n_nodes] [seed] \
//!     [--scenario paper|rwp|trace:<path>] \
//!     [--workload paper|hotspot|bursty] [--duration SECS] \
//!     [--out json:PATH|csv:PATH|md:PATH ...]
//! ```
//!
//! Each protocol's run is captured as a report record, so `--out` emits the
//! whole pass through the shared pipeline (single-seed cells).

use dtn_bench::report::{CommonArgs, OutputSpec, ReportSpec, RunRecord};
use dtn_bench::{
    resolve_store, run_spec_observed, ProbeSpec, ProtocolKind, ProtocolSpec, RunSpec,
    ScenarioCache, ScenarioSpec, WorkloadSpec,
};
use std::time::Instant;

fn main() {
    let mut n: u32 = 40;
    let mut seed: u64 = 1;
    let mut scenario_arg = String::from("paper");
    let mut workload = WorkloadSpec::PaperUniform;
    let mut duration: Option<f64> = None;
    let mut probes: Vec<ProbeSpec> = Vec::new();
    let mut outs: Vec<OutputSpec> = Vec::new();
    let mut run_threads: Option<u32> = None;
    let mut ring_drain: Option<usize> = None;
    let mut store_dir: Option<String> = None;
    let mut no_store = false;
    let mut positional = 0;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        let die = |e: String| -> ! {
            eprintln!("{e}");
            std::process::exit(2);
        };
        match a.as_str() {
            "--scenario" => scenario_arg = val("--scenario"),
            "--workload" => {
                workload = WorkloadSpec::parse(&val("--workload")).unwrap_or_else(|e| die(e))
            }
            "--duration" => {
                duration = Some(
                    val("--duration")
                        .parse()
                        .unwrap_or_else(|e| die(format!("--duration: {e}"))),
                )
            }
            "--probe" => probes.push(ProbeSpec::parse(&val("--probe")).unwrap_or_else(|e| die(e))),
            "--out" => outs.push(OutputSpec::parse(&val("--out")).unwrap_or_else(|e| die(e))),
            "--run-threads" => {
                run_threads = Some(
                    val("--run-threads")
                        .parse()
                        .unwrap_or_else(|e| die(format!("--run-threads: {e}"))),
                )
            }
            "--drain" => {
                ring_drain = CommonArgs::parse_drain(&val("--drain")).unwrap_or_else(|e| die(e))
            }
            "--store" => store_dir = Some(val("--store")),
            "--no-store" => no_store = true,
            "--help" | "-h" => {
                println!(
                    "usage: smoke [n_nodes] [seed] [--scenario paper|rwp|trace:<path>] \
                     [--workload paper|hotspot|bursty] [--duration SECS] \
                     [--probe timeseries[:dt=SECS]|latency ...] \
                     [--run-threads N] [--drain inline|ring[:CAP]] \
                     [--store DIR|--no-store] \
                     [--out json:PATH|csv:PATH|md:PATH ...]"
                );
                return;
            }
            other => {
                let parsed = match positional {
                    0 => other.parse().map(|v| n = v).map_err(|e| format!("{e}")),
                    1 => other.parse().map(|v| seed = v).map_err(|e| format!("{e}")),
                    _ => Err(format!("unexpected argument {other}")),
                };
                if let Err(e) = parsed {
                    die(format!("bad argument {other}: {e}"));
                }
                positional += 1;
            }
        }
    }

    let scenario = ScenarioSpec::parse(&scenario_arg, n).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let t0 = Instant::now();
    let cache = ScenarioCache::new();
    let ps = match cache.try_get_spec(&scenario, &workload, seed, duration) {
        Ok(ps) => ps,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let ts = ps.scenario.trace.stats();
    eprintln!(
        "scenario {scenario} workload {workload} seed={seed}: {} contacts \
         (mean dur {:.2}s, mean intercontact {:.0}s), {} messages, built in {:?}",
        ts.contacts,
        ts.mean_duration,
        ts.mean_intercontact,
        ps.workload.len(),
        t0.elapsed()
    );

    let store = resolve_store(store_dir.as_deref(), no_store);
    // Event-log probes record a side-effect artifact, so those runs bypass
    // the store in both directions (same rule as the matrix runner).
    let storable = !probes
        .iter()
        .any(|p| matches!(p, ProbeSpec::EventLog { .. }));
    let mut report = ReportSpec::new(format!(
        "Smoke: every protocol on {scenario} ({workload} workload, seed {seed})"
    ));
    for kind in ProtocolKind::ALL {
        let proto = ProtocolSpec::paper(kind);
        let mut spec = RunSpec::on(kind.name(), scenario.clone(), proto.clone())
            .with_workload(workload.clone())
            .with_probes(probes.clone());
        if let Some(d) = duration {
            spec = spec.with_duration(d);
        }
        if let Some(t) = run_threads {
            spec = spec.with_run_threads(t);
        }
        if let Some(c) = ring_drain {
            spec = spec.with_ring_drain(c);
        }
        let served = if storable {
            store
                .as_ref()
                .and_then(|s| s.serve(&spec.cell_key(seed).encoded(), seed))
        } else {
            None
        };
        let cached = served.is_some();
        let t = Instant::now();
        let (record, stats) = match served {
            Some(record) => {
                let stats = record.stats;
                (record, stats)
            }
            None => {
                let (run_ps, out) = run_spec_observed(&cache, &spec, seed);
                let record = RunRecord::capture_output(
                    &spec,
                    &run_ps,
                    seed,
                    &out,
                    t.elapsed().as_secs_f64(),
                );
                if storable {
                    if let Some(store) = &store {
                        if let Err(e) = store.publish(&record) {
                            eprintln!("warning: store publish failed: {e}");
                        }
                    }
                }
                (record, out.stats.snapshot())
            }
        };
        let wall = t.elapsed();
        report.push(record);
        // Each row names the *resolved* spec in the `--protocol` grammar, so
        // any line of the log is a reproducible dtnrun invocation.
        println!(
            "{:<14} dr={:.3} lat={:>6.1} gp={:.4} relayed={:>6} dup={:>4} aborted={:>5} \
             drops(buf/ttl/proto)={}/{}/{} ctrl={:>8}KB  [{:.2?}]{}",
            proto,
            stats.delivery_ratio(),
            stats.avg_latency(),
            stats.goodput(),
            stats.relayed,
            stats.duplicate_deliveries,
            stats.aborted,
            stats.drops_buffer,
            stats.drops_ttl,
            stats.drops_protocol,
            stats.control_bytes / 1024,
            wall,
            if cached { " (served from store)" } else { "" }
        );
    }
    if !report.write_all(&outs) {
        std::process::exit(1);
    }
}
