//! One-shot sanity run: every protocol on a single paper scenario, with raw
//! counters — the quickest way to eyeball that the stack behaves.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin smoke -- [n_nodes] [seed]
//! ```

use dtn_bench::{PaperScenario, Protocol, ProtocolKind};
use dtn_sim::{SimConfig, Simulation};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut argv = std::env::args().skip(1);
    let n: u32 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed: u64 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let t0 = Instant::now();
    let ps = PaperScenario::build(n, seed);
    let ts = ps.scenario.trace.stats();
    eprintln!(
        "scenario n={n} seed={seed}: {} contacts (mean dur {:.2}s, mean intercontact {:.0}s), \
         {} messages, built in {:?}",
        ts.contacts,
        ts.mean_duration,
        ts.mean_intercontact,
        ps.workload.len(),
        t0.elapsed()
    );

    let communities = Arc::new(ce_core::CommunityMap::new(ps.scenario.communities.clone()));
    let all = [
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::Ebr,
        ProtocolKind::MaxProp,
        ProtocolKind::SprayAndWait,
        ProtocolKind::SprayAndFocus,
        ProtocolKind::Epidemic,
        ProtocolKind::Prophet,
        ProtocolKind::Direct,
        ProtocolKind::FirstContact,
    ];
    for kind in all {
        let proto = Protocol::new(kind).with_communities(Arc::clone(&communities));
        let t = Instant::now();
        let stats = Simulation::new(
            &ps.scenario.trace,
            ps.workload.as_ref().clone(),
            SimConfig::paper(seed),
            |id, nn| proto.make_router(id, nn),
        )
        .run();
        println!(
            "{:<14} dr={:.3} lat={:>6.1} gp={:.4} relayed={:>6} dup={:>4} aborted={:>5} \
             drops(buf/ttl/proto)={}/{}/{} ctrl={:>8}KB  [{:.2?}]",
            kind.name(),
            stats.delivery_ratio(),
            stats.avg_latency(),
            stats.goodput(),
            stats.relayed,
            stats.duplicate_deliveries,
            stats.aborted,
            stats.drops_buffer,
            stats.drops_ttl,
            stats.drops_protocol,
            stats.control_bytes / 1024,
            t.elapsed()
        );
    }
}
