//! `dtndiff` — drift classifier between two runs of the pipeline.
//!
//! ```text
//! dtndiff A.trace B.trace          # compare two TRACE/1.0 artifacts
//! dtndiff --reports A.json B.json  # compare two report/bench JSON docs
//! ```
//!
//! Every divergence is classified (see `dtn_bench::report::diff`):
//!
//! * exit 0 — no drift: the two sides describe the same physics,
//! * exit 1 — seed-level drift: same cells, different stats/streams,
//! * exit 2 — cell-level drift: cells added or removed,
//! * exit 3 — schema-level drift: format or version mismatch,
//! * exit 64 — usage error or unreadable/corrupt input.
//!
//! Wall-clock fields (`wall_s*`) and artifact paths never gate; they are
//! printed as `info:` lines only. Cells are matched on semantic identity —
//! `+probe=eventlog:…` components are stripped, so a live run that carried
//! the recorder compares equal to its own replay.

use dtn_bench::report::{diff_reports, diff_traces, DiffOutcome};
use std::path::Path;

const USAGE: &str = "usage: dtndiff A.trace B.trace
       dtndiff --reports A.json B.json

exit codes: 0 no drift, 1 seed-level, 2 cell-level, 3 schema-level,
            64 usage error or unreadable input";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let (reports, paths): (bool, &[String]) = match args.first().map(String::as_str) {
        Some("--reports") => (true, &args[1..]),
        _ => (false, &args[..]),
    };
    let [a, b] = paths else {
        eprintln!("{USAGE}");
        std::process::exit(64);
    };

    let outcome = if reports {
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("dtndiff: cannot read {p}: {e}");
                std::process::exit(64);
            })
        };
        diff_reports(&read(a), &read(b))
    } else {
        match diff_traces(Path::new(a), Path::new(b)) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("dtndiff: {e}");
                std::process::exit(64);
            }
        }
    };

    report(a, b, &outcome);
    std::process::exit(outcome.exit_code());
}

fn report(a: &str, b: &str, out: &DiffOutcome) {
    for line in &out.info {
        println!("info: {line}");
    }
    for drift in &out.drifts {
        println!("{drift}");
    }
    if out.is_clean() {
        println!("dtndiff: no drift between {a} and {b}");
    } else {
        println!(
            "dtndiff: {} divergence(s) between {a} and {b} (exit {})",
            out.drifts.len(),
            out.exit_code()
        );
    }
}
