//! Figure 4 — effect of the quota λ ∈ {6, 8, 10, 12} on CR, three panels
//! (delivery ratio / latency / goodput) vs. number of nodes.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig4 -- [--full|--quick] [--seeds K]
//! ```

use dtn_bench::report::{print_series_table, settings_table, CommonArgs};
use dtn_bench::{
    run_matrix_records_stored, ProtocolKind, ProtocolSpec, ReportSpec, RunSpec, ScenarioCache,
    Series,
};

const LAMBDAS: [u32; 4] = [6, 8, 10, 12];

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.print_settings {
        println!("{}", settings_table());
        return;
    }
    let mut specs = Vec::new();
    for &lambda in &LAMBDAS {
        for &n in &args.node_counts {
            specs.push(args.configure(RunSpec::on(
                format!("Lambda = {lambda}"),
                args.scenario_for(n),
                ProtocolSpec::paper(ProtocolKind::Cr).with_lambda(lambda),
            )));
        }
    }
    let cfg = args.sweep_config();
    eprintln!(
        "fig4 (CR): {} lambdas x {} node counts x {} seeds",
        LAMBDAS.len(),
        args.node_counts.len(),
        args.seeds
    );
    let store = args.open_store();
    let mut report = ReportSpec::new("Figure 4: effects of lambda on CR");
    report.records = run_matrix_records_stored(&ScenarioCache::new(), &specs, cfg, store.as_ref());

    // The paper's three-panel view: the positional one-point-per-spec
    // reduction (lambda-major spec order). Not cells() — a trace scenario
    // ignores the node count, so its sweep points merge into one cell.
    let points = report.points(cfg.effective_seeds() as usize);
    let per = args.node_counts.len();
    let series: Vec<Series> = LAMBDAS
        .iter()
        .enumerate()
        .map(|(li, lambda)| Series {
            label: format!("Lambda = {lambda}"),
            points: args
                .node_counts
                .iter()
                .copied()
                .zip(points[li * per..(li + 1) * per].iter().copied())
                .collect(),
        })
        .collect();
    print!(
        "{}",
        print_series_table(&report.title, &args.node_counts, &series)
    );
    eprintln!();
    if !report.write_all(&args.outs_or(&["csv:results/fig4.csv"])) {
        std::process::exit(1);
    }
}
