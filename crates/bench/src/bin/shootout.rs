//! `shootout` — every protocol across scenario families in one
//! deterministic sweep matrix.
//!
//! The paper's figures compare protocols on a single scenario (the bus-city);
//! the shootout puts scenario *families* side-by-side as series: paper
//! bus-city, random waypoint, and (optionally) a replayed trace, each crossed
//! with the selected protocols and node counts. One matrix call drives
//! the whole grid, so the thread count never changes the output and every
//! protocol sees the identical contact process per family.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin shootout -- \
//!     [--seeds K] [--nodes a,b,c] [--duration SECS] \
//!     [--protocols eer,cr,...] [--workload paper|hotspot|bursty] \
//!     [--threads N] [--run-threads N] [--drain inline|ring[:CAP]] \
//!     [--trace <path>] [--out json:PATH|csv:PATH|md:PATH ...]
//! ```
//!
//! `--protocols` takes full protocol specs in the `--protocol` grammar, so
//! tuned variants of one protocol can race each other:
//! `--protocols eer:lambda=4,eer:lambda=16,prophet:beta=0.25` (a comma
//! starts a new spec when it is followed by a protocol name; `key=value`
//! segments continue the previous spec). Unknown names list the registry.
//!
//! All output flows through the report pipeline: by default the report is
//! written as `results/shootout.json` + `results/shootout.csv` (`--out`
//! overrides), and a `BENCH_shootout.json` trajectory — per-cell headline
//! means plus runner wall-clock — is always emitted so performance is
//! comparable across code revisions (`reportcheck` validates both).
//!
//! Defaults stay laptop-sized: 2 node counts × 2 seeds on a 2 000 s horizon,
//! plus two *large-n supply cells* — epidemic on the city family at
//! n=1 000 and n=10 000, short horizon, streamed so the contact trace is
//! never materialized — that pin contact-supply throughput in the BENCH
//! trajectory (`--no-large-n` skips them).

use dtn_bench::report::{write_text, CommonArgs, OutputSpec, ReportSpec};
use dtn_bench::{
    resolve_store, run_matrix_records_stored, run_stream, ProbeSpec, ProtocolKind, ProtocolSpec,
    RunRecord, RunSpec, ScenarioCache, ScenarioSpec, SweepConfig, WorkloadSpec,
};
use std::path::Path;

struct Args {
    seeds: u32,
    node_counts: Vec<u32>,
    duration: f64,
    protocols: Vec<ProtocolSpec>,
    workload: WorkloadSpec,
    trace: Option<String>,
    probes: Vec<ProbeSpec>,
    outs: Vec<OutputSpec>,
    large_n: bool,
    threads: Option<usize>,
    run_threads: Option<u32>,
    ring_drain: Option<usize>,
    store: Option<String>,
    no_store: bool,
}

/// Splits a `--protocols` list into individual spec strings. The separator
/// is a comma, but a comma also separates `key=value` parameters *inside* a
/// spec — so a segment continues the previous spec when it is a parameter
/// (contains `=` with no `name:` prefix before it) and starts a new spec
/// otherwise: `eer:lambda=4,ttl=600,cr` is two specs.
fn split_spec_list(s: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for seg in s.split(',') {
        let is_param = match (seg.find('='), seg.find(':')) {
            (Some(eq), Some(colon)) => colon > eq,
            (Some(_), None) => true,
            _ => false,
        };
        match out.last_mut() {
            Some(prev) if is_param => {
                prev.push(',');
                prev.push_str(seg);
            }
            _ => out.push(seg.to_string()),
        }
    }
    out
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut out = Args {
        seeds: 2,
        node_counts: vec![40, 80],
        duration: 2_000.0,
        protocols: [
            ProtocolKind::Eer,
            ProtocolKind::Cr,
            ProtocolKind::Ebr,
            ProtocolKind::SprayAndWait,
            ProtocolKind::Epidemic,
            ProtocolKind::Prophet,
        ]
        .into_iter()
        .map(ProtocolSpec::paper)
        .collect(),
        workload: WorkloadSpec::PaperUniform,
        trace: None,
        probes: Vec::new(),
        outs: Vec::new(),
        large_n: true,
        threads: None,
        run_threads: None,
        ring_drain: None,
        store: None,
        no_store: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--seeds" => out.seeds = val("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--nodes" => {
                out.node_counts = val("--nodes")?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--nodes: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--duration" => {
                out.duration = val("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--protocols" => {
                out.protocols = split_spec_list(&val("--protocols")?)
                    .iter()
                    .map(|s| ProtocolSpec::parse(s))
                    .collect::<Result<_, _>>()?
            }
            "--workload" => out.workload = WorkloadSpec::parse(&val("--workload")?)?,
            "--trace" => {
                let p = val("--trace")?;
                // Fail on typos here, not in a worker thread mid-matrix.
                std::fs::metadata(&p).map_err(|e| format!("cannot read {p}: {e}"))?;
                out.trace = Some(p);
            }
            "--probe" => out.probes.push(ProbeSpec::parse(&val("--probe")?)?),
            "--out" => out.outs.push(OutputSpec::parse(&val("--out")?)?),
            "--no-large-n" => out.large_n = false,
            "--threads" => {
                out.threads = Some(
                    val("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--run-threads" => {
                out.run_threads = Some(
                    val("--run-threads")?
                        .parse()
                        .map_err(|e| format!("--run-threads: {e}"))?,
                )
            }
            "--drain" => out.ring_drain = CommonArgs::parse_drain(&val("--drain")?)?,
            "--store" => out.store = Some(val("--store")?),
            "--no-store" => out.no_store = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.node_counts.is_empty() || out.protocols.is_empty() {
        return Err("need at least one node count and one protocol".into());
    }
    if out.outs.is_empty() {
        out.outs = vec![
            OutputSpec::parse("json:results/shootout.json").expect("builtin"),
            OutputSpec::parse("csv:results/shootout.csv").expect("builtin"),
        ];
    }
    Ok(Some(out))
}

fn main() {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!(
                "usage: shootout [--seeds K] [--nodes a,b,c] [--duration SECS] \
                 [--protocols eer,cr,...] [--workload paper|hotspot|bursty] [--trace <path>] \
                 [--probe timeseries[:dt=SECS]|latency ...] \
                 [--threads N] [--run-threads N] [--drain inline|ring[:CAP]] \
                 [--store DIR|--no-store] \
                 [--out json:PATH|csv:PATH|md:PATH ...] [--no-large-n]\n\
                 \n\
                 --protocols takes full specs (eer:lambda=4,eer:lambda=16,prophet:beta=0.25);\n\
                 a comma starts a new spec when followed by a protocol name.\n\
                 --out routes the report (default: json+csv under results/); the\n\
                 BENCH_shootout.json perf trajectory is always written.\n\
                 --no-large-n skips the streaming city n=1000/n=10000 supply cells."
            );
            return;
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // Scenario families to cross with the protocols. A trace family runs at
    // the recording's native horizon and node count, so it contributes one
    // point per protocol rather than one per node count.
    struct Cell {
        scenario: ScenarioSpec,
        duration: Option<f64>,
    }
    let generated = |f: fn(u32) -> ScenarioSpec| -> Vec<Cell> {
        args.node_counts
            .iter()
            .map(|&n| Cell {
                scenario: f(n),
                duration: Some(args.duration),
            })
            .collect()
    };
    let mut families: Vec<(&str, Vec<Cell>)> = vec![
        ("paper", generated(ScenarioSpec::paper)),
        ("rwp", generated(ScenarioSpec::rwp)),
    ];
    if let Some(path) = &args.trace {
        families.push((
            "trace",
            vec![Cell {
                scenario: ScenarioSpec::trace_path(path),
                duration: None,
            }],
        ));
    }

    let mut specs = Vec::new();
    for proto in &args.protocols {
        for (family, cells) in &families {
            for cell in cells {
                // Labels carry the resolved spec, so two tuned variants of
                // one protocol fold into distinct series.
                let label = format!("{proto} @ {family}");
                let mut spec = RunSpec::on(label, cell.scenario.clone(), proto.clone())
                    .with_workload(args.workload.clone())
                    .with_probes(args.probes.clone());
                if let Some(d) = cell.duration {
                    spec = spec.with_duration(d);
                }
                if let Some(t) = args.run_threads {
                    spec = spec.with_run_threads(t);
                }
                if let Some(c) = args.ring_drain {
                    spec = spec.with_ring_drain(c);
                }
                specs.push(spec);
            }
        }
    }

    let mut cfg = SweepConfig {
        seeds: args.seeds,
        ..SweepConfig::default()
    };
    if let Some(t) = args.threads {
        cfg.threads = t;
    }
    eprintln!(
        "shootout: {} protocols x {} families over {:?} nodes x {} seeds ({} cells)",
        args.protocols.len(),
        families.len(),
        args.node_counts,
        cfg.effective_seeds(),
        specs.len()
    );
    let store = resolve_store(args.store.as_deref(), args.no_store);
    let mut records = run_matrix_records_stored(&ScenarioCache::new(), &specs, cfg, store.as_ref());

    // Large-n supply cells: one flooding protocol on the city family at
    // n=1 000 and n=10 000, run through the streaming path (the contact
    // trace is never materialized) on a short horizon so the default
    // shootout stays laptop-sized. They land in the same record list — the
    // cell key is identical to a materialized run of the same spec — so the
    // BENCH trajectory tracks contact-supply throughput across revisions.
    if args.large_n {
        let epidemic = ProtocolSpec::paper(ProtocolKind::Epidemic);
        // The n=10⁵ cell runs the sharded scan (8 workers); the smaller
        // cells stay single-threaded, so the trajectory carries both modes.
        for (n, horizon, threads) in [
            (1_000u32, 600.0, 1u32),
            (10_000, 120.0, 1),
            (100_000, 60.0, 8),
        ] {
            let label = if threads > 1 {
                format!("{epidemic} @ city-large (sharded x{threads})")
            } else {
                format!("{epidemic} @ city-large")
            };
            let spec = RunSpec::on(
                label,
                ScenarioSpec::city(n, ScenarioSpec::districts_for(n)),
                epidemic.clone(),
            )
            .with_workload(args.workload.clone())
            .with_duration(horizon)
            .with_run_threads(threads);
            for seed in 1..=u64::from(cfg.effective_seeds()) {
                // A streamed run of a generated scenario shares its cell key
                // with a materialized run, so the store memoizes it like any
                // other cell.
                if let Some(store) = &store {
                    let cell = spec.cell_key(seed).encoded();
                    if let Some(record) = store.serve(&cell, seed) {
                        eprintln!("  city n={n} @ {horizon:.0} s seed {seed}: served from store");
                        records.push(record);
                        continue;
                    }
                }
                let t0 = std::time::Instant::now();
                match run_stream(&spec, seed) {
                    Ok(run) => {
                        eprintln!(
                            "  city n={n} @ {horizon:.0} s seed {seed} ({threads} threads): streamed in {:.2} s",
                            t0.elapsed().as_secs_f64()
                        );
                        let record = RunRecord::capture_stream(
                            &spec,
                            run.n_nodes,
                            run.duration,
                            seed,
                            &run.output,
                            t0.elapsed().as_secs_f64(),
                        );
                        if let Some(store) = &store {
                            if let Err(e) = store.publish(&record) {
                                eprintln!("warning: store publish failed: {e}");
                            }
                        }
                        records.push(record);
                    }
                    Err(e) => {
                        eprintln!("large-n cell n={n} failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }

    let mut report = ReportSpec::new(format!(
        "Protocol shootout across scenario families ({} workload, {:.0} s horizon)",
        args.workload, args.duration
    ));
    report.records = records;

    print!("{}", report.render_table());
    eprintln!();
    let all_written = report.write_all(&args.outs);

    // The perf trajectory rides along unconditionally: cells + wall-clock,
    // comparable run-over-run.
    let bench_path = Path::new("BENCH_shootout.json");
    match write_text(bench_path, &report.to_bench_json_string("shootout")) {
        Ok(()) => eprintln!("wrote {}", bench_path.display()),
        Err(e) => {
            eprintln!("trajectory write failed: {e}");
            std::process::exit(1);
        }
    }
    if !all_written {
        std::process::exit(1);
    }
}
