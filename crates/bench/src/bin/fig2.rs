//! Figure 2 — protocol comparison: EER, CR, EBR, MaxProp, Spray-and-Wait,
//! Spray-and-Focus vs. number of nodes (λ = 10), three panels
//! (delivery ratio / latency / goodput).
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig2 -- [--full|--quick] [--seeds K]
//! ```

use dtn_bench::report::{print_series_table, settings_table, CommonArgs};
use dtn_bench::{
    run_matrix_records, ProtocolKind, ProtocolSpec, ReportSpec, RunSpec, ScenarioCache, Series,
    SweepConfig,
};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.print_settings {
        println!("{}", settings_table());
        return;
    }
    let mut specs = Vec::new();
    for kind in ProtocolKind::FIG2 {
        for &n in &args.node_counts {
            let mut spec = RunSpec::on(
                kind.name().to_string(),
                args.scenario_for(n),
                ProtocolSpec::paper(kind).with_lambda(10),
            )
            .with_workload(args.workload.clone());
            if let Some(d) = args.duration {
                spec = spec.with_duration(d);
            }
            specs.push(spec);
        }
    }
    let cfg = SweepConfig {
        seeds: args.seeds,
        ..SweepConfig::default()
    };
    eprintln!(
        "fig2: {} protocols x {} node counts x {} seeds",
        ProtocolKind::FIG2.len(),
        args.node_counts.len(),
        args.seeds
    );
    let mut report = ReportSpec::new("Figure 2: performance comparison (lambda = 10)");
    report.records = run_matrix_records(&ScenarioCache::new(), &specs, cfg);

    // The paper's three-panel view: the positional one-point-per-spec
    // reduction (protocol-major spec order). Not cells() — a trace scenario
    // ignores the node count, so its sweep points merge into one cell.
    let points = report.points(cfg.effective_seeds() as usize);
    let per = args.node_counts.len();
    let series: Vec<Series> = ProtocolKind::FIG2
        .iter()
        .enumerate()
        .map(|(pi, kind)| Series {
            label: kind.name().to_string(),
            points: args
                .node_counts
                .iter()
                .copied()
                .zip(points[pi * per..(pi + 1) * per].iter().copied())
                .collect(),
        })
        .collect();
    print!(
        "{}",
        print_series_table(&report.title, &args.node_counts, &series)
    );
    eprintln!();
    if !report.write_all(&args.outs_or(&["csv:results/fig2.csv"])) {
        std::process::exit(1);
    }
}
