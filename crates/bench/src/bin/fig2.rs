//! Figure 2 — protocol comparison: EER, CR, EBR, MaxProp, Spray-and-Wait,
//! Spray-and-Focus vs. number of nodes (λ = 10), three panels
//! (delivery ratio / latency / goodput) — plus real delivery-over-time
//! curves from the *same* runs.
//!
//! Every cell carries a time-series probe (default cadence: 1/40 of the
//! resolved horizon; override with `--probe timeseries:dt=SECS` — other
//! `--probe` flags, e.g. `latency`, add observers without disabling the
//! curves), so a single invocation yields both the paper's end-of-run
//! panels and a delivery-ratio-over-time curve per cell, with no
//! per-x-value re-runs.
//! The curves land in `results/fig2_curves.csv`
//! (`series,n_nodes,t,delivery_ratio,overhead_ratio`).
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig2 -- [--full|--quick] [--seeds K]
//! ```

use dtn_bench::report::{print_series_table, settings_table, write_text, CommonArgs};
use dtn_bench::{
    run_matrix_records_stored, ProbeSpec, ProtocolKind, ProtocolSpec, ReportSpec, RunSpec,
    ScenarioCache, Series,
};
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.print_settings {
        println!("{}", settings_table());
        return;
    }
    // Curve mode is always on: the same single run per cell that feeds the
    // end-of-run panels also produces the delivery-over-time curve, so a
    // time-series probe is appended unless the user already configured one
    // (extra `--probe` flags add observers, they don't disable the curves).
    // The default cadence gives ~40 samples over the *resolved* horizon —
    // for trace replay that is the recording's, known only after loading it.
    let cache = ScenarioCache::new();
    let mut probes = args.probes.clone();
    if !probes
        .iter()
        .any(|p| matches!(p, ProbeSpec::TimeSeries { .. }))
    {
        let scenario = args.scenario_for(args.node_counts[0]);
        let horizon = args.duration.or(scenario.default_duration());
        let horizon = horizon.unwrap_or_else(|| {
            // The sweep shares this cache, so the build is not wasted.
            match cache.try_get_spec(&scenario, &args.workload, 1, None) {
                Ok(ps) => ps.scenario.trace.duration,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        });
        probes.push(ProbeSpec::TimeSeries {
            dt: (horizon / 40.0).max(1.0),
        });
    }
    let mut specs = Vec::new();
    for kind in ProtocolKind::FIG2 {
        for &n in &args.node_counts {
            // `configure` applies the shared flags; the curve-mode default
            // probe set (possibly augmented above) then overrides `--probe`.
            let spec = args
                .configure(RunSpec::on(
                    kind.name().to_string(),
                    args.scenario_for(n),
                    ProtocolSpec::paper(kind).with_lambda(10),
                ))
                .with_probes(probes.clone());
            specs.push(spec);
        }
    }
    let cfg = args.sweep_config();
    eprintln!(
        "fig2: {} protocols x {} node counts x {} seeds",
        ProtocolKind::FIG2.len(),
        args.node_counts.len(),
        args.seeds
    );
    let store = args.open_store();
    let mut report = ReportSpec::new("Figure 2: performance comparison (lambda = 10)");
    report.records = run_matrix_records_stored(&cache, &specs, cfg, store.as_ref());

    // The paper's three-panel view: the positional one-point-per-spec
    // reduction (protocol-major spec order). Not cells() — a trace scenario
    // ignores the node count, so its sweep points merge into one cell.
    let points = report.points(cfg.effective_seeds() as usize);
    let per = args.node_counts.len();
    let series: Vec<Series> = ProtocolKind::FIG2
        .iter()
        .enumerate()
        .map(|(pi, kind)| Series {
            label: kind.name().to_string(),
            points: args
                .node_counts
                .iter()
                .copied()
                .zip(points[pi * per..(pi + 1) * per].iter().copied())
                .collect(),
        })
        .collect();
    print!(
        "{}",
        print_series_table(&report.title, &args.node_counts, &series)
    );
    eprintln!();

    // Delivery-over-time curves, aggregated across seeds per cell — derived
    // from the runs above, not from re-running anything.
    let mut curves = String::from("series,n_nodes,t,delivery_ratio,overhead_ratio\n");
    let mut curve_cells = 0usize;
    for cell in report.cells() {
        let Some(ts) = &cell.timeseries else { continue };
        curve_cells += 1;
        for p in &ts.points {
            let _ = writeln!(
                curves,
                "{},{},{},{:.6},{:.6}",
                cell.series, cell.n_nodes, p.t, p.delivery_ratio.mean, p.overhead_ratio.mean
            );
        }
    }
    let curves_path = Path::new("results/fig2_curves.csv");
    if curve_cells > 0 {
        match write_text(curves_path, &curves) {
            Ok(()) => eprintln!(
                "wrote {} ({curve_cells} delivery-over-time curves from single runs)",
                curves_path.display()
            ),
            Err(e) => {
                eprintln!("curve output failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if !report.write_all(&args.outs_or(&["csv:results/fig2.csv"])) {
        std::process::exit(1);
    }
}
