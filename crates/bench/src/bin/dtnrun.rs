//! `dtnrun` — run any protocol on a generated scenario or an archived
//! contact trace, with a full report (headline metrics, latency percentiles,
//! delivery-progress curve).
//!
//! ```text
//! cargo run --release -p bench --bin dtnrun -- \
//!     --protocol eer [--nodes 40] [--seed 1] [--duration 10000] \
//!     [--lambda 10] [--alpha 0.28] [--trace file.trace] [--buffer BYTES] \
//!     [--progress-step 1000]
//! ```
//!
//! With `--trace`, the contact process is loaded from the plain-text trace
//! format (see `dtn_sim::trace`) instead of being generated — the path for
//! replaying real-world contact datasets. Either way the run goes through
//! the shared runner layer (`RunSpec → SimStats`).

use dtn_bench::{run_on, PaperScenario, Protocol, ProtocolKind, RunSpec, ScenarioCache};
use dtn_sim::report::{delivery_progress, latencies, percentile};
use dtn_sim::ContactTrace;

struct Args {
    protocol: ProtocolKind,
    nodes: u32,
    seed: u64,
    /// `None` = the paper's 10 000 s horizon; only valid without `--trace`.
    duration: Option<f64>,
    lambda: u32,
    alpha: Option<f64>,
    trace: Option<String>,
    buffer: Option<u64>,
    progress_step: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        protocol: ProtocolKind::Eer,
        nodes: 40,
        seed: 1,
        duration: None,
        lambda: 10,
        alpha: None,
        trace: None,
        buffer: None,
        progress_step: 1_000.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--protocol" => {
                let v = val("--protocol")?;
                out.protocol = ProtocolKind::parse(&v).ok_or(format!("unknown protocol {v}"))?;
            }
            "--nodes" => out.nodes = val("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => out.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                out.duration = Some(val("--duration")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--lambda" => out.lambda = val("--lambda")?.parse().map_err(|e| format!("{e}"))?,
            "--alpha" => out.alpha = Some(val("--alpha")?.parse().map_err(|e| format!("{e}"))?),
            "--trace" => out.trace = Some(val("--trace")?),
            "--buffer" => out.buffer = Some(val("--buffer")?.parse().map_err(|e| format!("{e}"))?),
            "--progress-step" => {
                out.progress_step = val("--progress-step")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => return Err("see module docs (dtnrun.rs) for usage".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // Obtain the experiment input: a replayed trace, or the generated paper
    // scenario (memoised through the shared cache either way).
    let ps: PaperScenario = match &args.trace {
        Some(path) => {
            if args.duration.is_some() {
                eprintln!("--duration cannot be combined with --trace: a replayed trace runs at its recorded horizon");
                std::process::exit(2);
            }
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let trace = ContactTrace::from_text(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            });
            // No ground truth in a raw trace: communities are detected online
            // by `from_trace`.
            PaperScenario::from_trace(trace, args.seed)
        }
        None => ScenarioCache::new().get_with_duration(args.nodes, args.seed, args.duration),
    };
    let n = ps.n_nodes;
    let duration = ps.scenario.trace.duration;
    let created_at: Vec<f64> = ps.workload.iter().map(|m| m.create_at.as_secs()).collect();

    let ts = ps.scenario.trace.stats();
    println!(
        "scenario: {n} nodes, {:.0} s, {} contacts (mean duration {:.2} s), {} messages",
        duration,
        ts.contacts,
        ts.mean_duration,
        ps.workload.len()
    );

    let mut proto = Protocol::new(args.protocol).with_lambda(args.lambda);
    if let Some(a) = args.alpha {
        proto = proto.with_alpha(a);
    }

    let mut spec = RunSpec::new(args.protocol.name(), n, proto);
    if let Some(b) = args.buffer {
        spec = spec.with_buffer(b);
    }

    let t0 = std::time::Instant::now();
    let stats = run_on(&ps, &spec, args.seed);
    let wall = t0.elapsed();

    println!("\n=== {} ===", args.protocol.name());
    println!("delivery ratio   {:.4}", stats.delivery_ratio());
    println!("latency (mean)   {:.1} s", stats.avg_latency());
    let lats = latencies(&stats, &created_at);
    for p in [50.0, 90.0, 99.0] {
        if let Some(v) = percentile(lats.clone(), p) {
            println!("latency (p{p:.0})    {v:.1} s");
        }
    }
    println!("goodput          {:.4}", stats.goodput());
    println!("overhead ratio   {:.2}", stats.overhead_ratio());
    println!("relayed          {}", stats.relayed);
    println!("aborted          {}", stats.aborted);
    println!(
        "drops            buffer {} / ttl {} / protocol {}",
        stats.drops_buffer, stats.drops_ttl, stats.drops_protocol
    );
    println!(
        "control traffic  {:.2} MB",
        stats.control_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("wall time        {wall:.2?}");

    println!(
        "\ndelivery progress (cumulative, every {:.0} s):",
        args.progress_step
    );
    let prog = delivery_progress(&stats, duration, args.progress_step);
    for (k, v) in prog.iter().enumerate() {
        if k % 2 == 0 {
            println!("  t={:>7.0}  delivered={v}", k as f64 * args.progress_step);
        }
    }
}
