//! `dtnrun` — run any protocol on any scenario family (generated or a
//! replayed contact trace), with a full report (headline metrics, latency
//! percentiles, delivery-progress curve).
//!
//! See `dtnrun --help` (the [`USAGE`] string) for the flag reference.
//! `--protocol` takes the full spec grammar (`eer:lambda=8,ttl=3600`; see
//! `dtn_bench::protocols`), so any tuning the registry knows is one flag
//! away. `--trace file.trace` is shorthand for `--scenario trace:file.trace`;
//! either way the contact process is loaded from the plain-text trace format
//! (see `dtn_sim::trace`) instead of being generated — the path for
//! replaying real-world contact datasets. Every run goes through the shared
//! runner layer (`RunSpec → SimStats`), and the run header prints the
//! *resolved* protocol spec so every log line is a reproducible command.

use dtn_bench::report::{CommonArgs, OutputSpec, ReportSpec, RunRecord};
use dtn_bench::{
    replay_artifact, resolve_store, run_on_observed, run_stream, ProbeSpec, ProtocolSpec,
    RunOutput, RunSpec, ScenarioCache, ScenarioSpec, WorkloadSpec,
};
use dtn_sim::report::{delivery_progress, latencies, percentile};

const USAGE: &str = "usage: dtnrun [flags]

  --protocol SPEC      protocol under test, with optional parameters
                       (default eer); the grammar is
                         name[:key=value[,key=value...]]
                       e.g. eer:lambda=8,ttl=3600  prophet:beta=0.25
  --scenario FAMILY    paper | rwp | trace:<path>   (default paper)
  --workload KIND      paper | hotspot[:<k>] | bursty[:<on>:<off>]  (default paper)
  --nodes N            node count for generated scenarios (default 40)
  --seed S             mobility/traffic seed (default 1)
  --duration SECS      horizon override; invalid with trace replay
  --lambda K           copy quota shorthand (same as :lambda=K)
  --alpha A            EER/CR horizon shorthand (same as :alpha=A)
  --trace PATH         shorthand for --scenario trace:PATH
  --buffer BYTES       per-node buffer capacity (default 1 MB)
  --stream             stream contacts on demand instead of materializing
                       the whole trace (bit-identical results; the default
                       for generated scenarios with >= 2000 nodes)
  --no-stream          force the materialized-trace path
  --run-threads N      worker threads for the sharded contact scan on the
                       streaming path (default auto: up to 8 for generated
                       scenarios with >= 10000 nodes, else 1); results are
                       bit-identical for every value
  --drain MODE         observer dispatch: inline (default) or ring[:CAP] to
                       fold probes on a companion thread through a bounded
                       ring of CAP batches (default 16); results are
                       bit-identical either way
  --progress-step SECS delivery-progress bucket (default 1000)
  --probe SPEC         attach an observer to the run (repeatable):
                         timeseries[:dt=SECS]  delivery/overhead/occupancy
                                               curves sampled in-run
                         latency               log2 histogram, exact p50/p95/p99
                         eventlog[:path=PATH]  record every engine event to a
                                               TRACE/1.0 artifact
  --record PATH        sugar for --probe eventlog:path=PATH ({seed} in PATH
                       expands to the run's seed)
  --replay PATH        fold the report out of a recorded TRACE/1.0 artifact
                       instead of running the engine; stats and probe outputs
                       are bitwise identical to the recorded live run (only
                       --probe and --out apply alongside)
  --store DIR          persistent result store root (default results/store);
                       a previously computed run of the same cell is served
                       from disk instead of simulated, new runs are published
  --no-store           disable the result store (always run, never publish)
  --out FORMAT:PATH    emit the run through the report pipeline
                       (json:|csv:|md:, repeatable)
  --help, -h           print this help

examples:
  dtnrun --protocol eer:lambda=8 --scenario rwp --nodes 40
  dtnrun --protocol cr --workload hotspot --duration 2000
  dtnrun --protocol prophet:beta=0.25,gamma=0.99 --scenario trace:contacts.trace
  dtnrun --protocol eer --probe timeseries:dt=60 --out json:results/run.json
  dtnrun --protocol eer --record results/run.trace --out json:results/live.json
  dtnrun --replay results/run.trace --probe latency --out json:results/replay.json";

struct Args {
    protocol: ProtocolSpec,
    scenario: Option<String>,
    workload: WorkloadSpec,
    nodes: u32,
    seed: u64,
    /// `None` = the scenario's default horizon; invalid with trace replay.
    duration: Option<f64>,
    lambda: Option<u32>,
    alpha: Option<f64>,
    buffer: Option<u64>,
    /// `None` = auto (stream generated scenarios at city scale).
    stream: Option<bool>,
    /// `None` = auto (parallel scan at n >= 10^4 on the streaming path).
    run_threads: Option<u32>,
    /// `Some(capacity)` = off-thread observer drain through a bounded ring.
    ring_drain: Option<usize>,
    progress_step: f64,
    probes: Vec<ProbeSpec>,
    outs: Vec<OutputSpec>,
    /// Replay a recorded TRACE/1.0 artifact instead of running the engine.
    replay: Option<String>,
    /// Result-store root override; `None` = the default root.
    store: Option<String>,
    /// Disable the result store entirely.
    no_store: bool,
}

/// `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut out = Args {
        protocol: ProtocolSpec::parse("eer").expect("default spec"),
        scenario: None,
        workload: WorkloadSpec::PaperUniform,
        nodes: 40,
        seed: 1,
        duration: None,
        lambda: None,
        alpha: None,
        buffer: None,
        stream: None,
        run_threads: None,
        ring_drain: None,
        progress_step: 1_000.0,
        probes: Vec::new(),
        outs: Vec::new(),
        replay: None,
        store: None,
        no_store: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--protocol" => out.protocol = ProtocolSpec::parse(&val("--protocol")?)?,
            "--scenario" => out.scenario = Some(val("--scenario")?),
            "--workload" => out.workload = WorkloadSpec::parse(&val("--workload")?)?,
            "--nodes" => out.nodes = val("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => out.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                out.duration = Some(val("--duration")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--lambda" => out.lambda = Some(val("--lambda")?.parse().map_err(|e| format!("{e}"))?),
            "--alpha" => out.alpha = Some(val("--alpha")?.parse().map_err(|e| format!("{e}"))?),
            "--trace" => out.scenario = Some(format!("trace:{}", val("--trace")?)),
            "--buffer" => out.buffer = Some(val("--buffer")?.parse().map_err(|e| format!("{e}"))?),
            "--stream" => out.stream = Some(true),
            "--run-threads" => {
                out.run_threads = Some(val("--run-threads")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--drain" => out.ring_drain = CommonArgs::parse_drain(&val("--drain")?)?,
            "--no-stream" => out.stream = Some(false),
            "--progress-step" => {
                out.progress_step = val("--progress-step")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--probe" => out.probes.push(ProbeSpec::parse(&val("--probe")?)?),
            "--record" => out.probes.push(ProbeSpec::parse(&format!(
                "eventlog:path={}",
                val("--record")?
            ))?),
            "--replay" => out.replay = Some(val("--replay")?),
            "--store" => out.store = Some(val("--store")?),
            "--no-store" => out.no_store = true,
            "--out" => out.outs.push(OutputSpec::parse(&val("--out")?)?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    // The shorthand flags fold into the spec *through the grammar*, so they
    // get the same parse-time validation as `--protocol` (a zero quota or a
    // quota on epidemic errors here, not deep in router construction), and
    // they only apply when given, so `--protocol eer:lambda=8` is never
    // silently reset to a default.
    let fold = |spec: &ProtocolSpec, key: &str, value: String| -> Result<ProtocolSpec, String> {
        let shown = spec.to_string();
        let sep = if shown.contains(':') { ',' } else { ':' };
        ProtocolSpec::parse(&format!("{shown}{sep}{key}={value}"))
    };
    if let Some(l) = out.lambda {
        out.protocol = fold(&out.protocol, "lambda", l.to_string())?;
    }
    if let Some(a) = out.alpha {
        out.protocol = fold(&out.protocol, "alpha", a.to_string())?;
    }
    Ok(Some(out))
}

fn main() {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &args.replay {
        replay_report(path, &args);
        return;
    }

    let scenario =
        match ScenarioSpec::parse(args.scenario.as_deref().unwrap_or("paper"), args.nodes) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
    if args.duration.is_some() && scenario.default_duration().is_none() {
        eprintln!("--duration cannot be combined with trace replay: a replayed trace runs at its recorded horizon");
        std::process::exit(2);
    }

    // Stream by default at city scale: a generated scenario with thousands
    // of nodes produces a contact trace too large to hold, and the streaming
    // run is bit-identical anyway. `--stream`/`--no-stream` override.
    let streaming = args.stream.unwrap_or_else(|| {
        scenario.default_duration().is_some()
            && scenario.declared_nodes().is_some_and(|n| n >= 2000)
    });

    let mut spec = RunSpec::on(
        args.protocol.kind().name(),
        scenario.clone(),
        args.protocol.clone(),
    )
    .with_workload(args.workload.clone())
    .with_probes(args.probes.clone());
    if let Some(b) = args.buffer {
        spec = spec.with_buffer(b);
    }
    if let Some(d) = args.duration {
        // Record the override in the spec so the report's cell key carries
        // the true horizon (run_on asserts it matches the built scenario).
        spec = spec.with_duration(d);
    }
    if let Some(t) = args.run_threads {
        spec = spec.with_run_threads(t);
    }
    if let Some(c) = args.ring_drain {
        spec = spec.with_ring_drain(c);
    }

    // A run recording an event log is never served from (or published to)
    // the store: the side-effect artifact is the point of the run.
    let store = resolve_store(args.store.as_deref(), args.no_store);
    let storable = !spec
        .effective_probes()
        .iter()
        .any(|p| matches!(p, ProbeSpec::EventLog { .. }));
    if storable {
        if let Some(store) = &store {
            if let Some(record) = store.serve(&spec.cell_key(args.seed).encoded(), args.seed) {
                served_report(&spec, record, &args);
                return;
            }
        }
    }

    let (n, duration, out, wall, record): (u32, f64, RunOutput, std::time::Duration, RunRecord);
    if streaming {
        let threads = spec.effective_run_threads();
        let mode = if threads > 1 {
            format!("sharded contact detection ({threads} threads)")
        } else {
            "single-threaded contact detection".to_string()
        };
        println!(
            "protocol {}, scenario {scenario}, workload {}: streaming contact supply (the trace is never materialized), {mode}",
            args.protocol, args.workload
        );
        let t0 = std::time::Instant::now();
        let run = match run_stream(&spec, args.seed) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        wall = t0.elapsed();
        println!(
            "{} nodes, {:.0} s, {} messages",
            run.n_nodes, run.duration, run.n_messages
        );
        n = run.n_nodes;
        duration = run.duration;
        out = run.output;
        record = RunRecord::capture_stream(&spec, n, duration, args.seed, &out, wall.as_secs_f64());
    } else {
        // Resolve the experiment input through the shared cache — generated
        // families and replayed traces take the same path.
        let cache = ScenarioCache::new();
        let ps = match cache.try_get_spec(&scenario, &args.workload, args.seed, args.duration) {
            Ok(ps) => ps,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        n = ps.n_nodes;
        duration = ps.scenario.trace.duration;
        let ts = ps.scenario.trace.stats();
        println!(
            "protocol {}, scenario {scenario}, workload {}: {n} nodes, {:.0} s, {} contacts (mean duration {:.2} s), {} messages",
            args.protocol,
            args.workload,
            duration,
            ts.contacts,
            ts.mean_duration,
            ps.workload.len()
        );
        let t0 = std::time::Instant::now();
        out = run_on_observed(&ps, &spec, args.seed);
        wall = t0.elapsed();
        record = RunRecord::capture_output(&spec, &ps, args.seed, &out, wall.as_secs_f64());
    }
    let stats = &out.stats;
    // Both paths generate the workload from the same spec and seed, so the
    // creation times for latency percentiles can be regenerated here without
    // holding onto either path's scenario.
    let created_at: Vec<f64> = spec
        .workload
        .generate(n, duration, args.seed)
        .iter()
        .map(|m| m.create_at.as_secs())
        .collect();

    println!("\n=== {} ===", args.protocol);
    println!("delivery ratio   {:.4}", stats.delivery_ratio());
    println!("latency (mean)   {:.1} s", stats.avg_latency());
    let lats = latencies(stats, &created_at);
    for p in [50.0, 90.0, 99.0] {
        if let Some(v) = percentile(lats.clone(), p) {
            println!("latency (p{p:.0})    {v:.1} s");
        }
    }
    println!("goodput          {:.4}", stats.goodput());
    println!("overhead ratio   {:.2}", stats.overhead_ratio());
    println!("relayed          {}", stats.relayed);
    println!("aborted          {}", stats.aborted);
    println!(
        "drops            buffer {} / ttl {} / protocol {}",
        stats.drops_buffer, stats.drops_ttl, stats.drops_protocol
    );
    println!(
        "control traffic  {:.2} MB",
        stats.control_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("wall time        {wall:.2?}");

    println!(
        "\ndelivery progress (cumulative, every {:.0} s):",
        args.progress_step
    );
    let prog = delivery_progress(stats, duration, args.progress_step);
    for (k, v) in prog.iter().enumerate() {
        if k % 2 == 0 {
            println!("  t={:>7.0}  delivered={v}", k as f64 * args.progress_step);
        }
    }

    // Probe outputs, sampled *during* the run by the observer pipeline.
    if let Some(ts) = &out.timeseries {
        println!("\ntime series (probe, dt = {:.0} s):", ts.dt);
        let stride = ts.samples.len().div_ceil(20).max(1);
        for s in ts.samples.iter().step_by(stride) {
            println!(
                "  t={:>7.0}  dr={:.4} overhead={:>7.2} buffered={:>6} KB ({} msgs)",
                s.t,
                s.delivery_ratio(),
                s.overhead_ratio(),
                s.buffered_bytes / 1024,
                s.buffered_msgs
            );
        }
    }
    if let Some(hist) = &out.latency {
        println!(
            "\nlatency histogram (probe): n={} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
            hist.count, hist.p50, hist.p95, hist.p99, hist.max
        );
        for (i, &n) in hist.buckets.iter().enumerate() {
            if n > 0 {
                let lo = (1u64 << i) - 1;
                let hi = (1u64 << (i + 1)) - 1;
                println!("  [{lo:>5}, {hi:>5}) s  {n}");
            }
        }
    }

    // The machine-readable view of the same run: one record through the
    // shared report pipeline, carrying the probe outputs.
    if storable {
        if let Some(store) = &store {
            if let Err(e) = store.publish(&record) {
                eprintln!("warning: store publish failed: {e}");
            }
        }
    }
    let mut report = ReportSpec::new(format!("dtnrun: {} on {}", args.protocol, spec.scenario));
    report.push(record);
    if !report.write_all(&args.outs) {
        std::process::exit(1);
    }
}

/// The run was served from the persistent result store: print the
/// record-derived report (stats plus any probe sections that rode along —
/// exact per-message percentiles and the delivery-progress table need the
/// live engine, exactly as in `--replay`) and emit through the pipeline.
fn served_report(spec: &RunSpec, record: RunRecord, args: &Args) {
    println!(
        "protocol {}, scenario {}, workload {}: {} nodes, {:.0} s, seed {} — served from result \
         store in {:.4} s (no simulation; --no-store forces a cold run)",
        args.protocol,
        spec.scenario,
        args.workload,
        record.n_nodes,
        record.duration,
        record.seed,
        record.wall_s
    );

    let stats = &record.stats;
    println!("\n=== {} (served from store) ===", args.protocol);
    println!("delivery ratio   {:.4}", stats.delivery_ratio());
    println!("latency (mean)   {:.1} s", stats.avg_latency());
    println!("goodput          {:.4}", stats.goodput());
    println!("overhead ratio   {:.2}", stats.overhead_ratio());
    println!("relayed          {}", stats.relayed);
    println!("aborted          {}", stats.aborted);
    println!(
        "drops            buffer {} / ttl {} / protocol {}",
        stats.drops_buffer, stats.drops_ttl, stats.drops_protocol
    );
    println!("control traffic  {:.2} MB", stats.control_mb());

    if let Some(ts) = &record.timeseries {
        println!("\ntime series (stored probe, dt = {:.0} s):", ts.dt);
        let stride = ts.samples.len().div_ceil(20).max(1);
        for s in ts.samples.iter().step_by(stride) {
            println!(
                "  t={:>7.0}  dr={:.4} overhead={:>7.2} buffered={:>6} KB ({} msgs)",
                s.t,
                s.delivery_ratio(),
                s.overhead_ratio(),
                s.buffered_bytes / 1024,
                s.buffered_msgs
            );
        }
    }
    if let Some(hist) = &record.latency {
        println!(
            "\nlatency histogram (stored probe): n={} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
            hist.count, hist.p50, hist.p95, hist.p99, hist.max
        );
    }

    let mut report = ReportSpec::new(format!("dtnrun: {} on {}", args.protocol, spec.scenario));
    report.push(record);
    if !report.write_all(&args.outs) {
        std::process::exit(1);
    }
}

/// `--replay PATH`: fold the report out of a recorded artifact — the engine
/// never runs. The workload is not regenerated here, so the sections that
/// need per-message creation times (exact percentiles from `latencies`,
/// the delivery-progress table) come from the probes instead: attach
/// `--probe latency` / `--probe timeseries` to get them, bitwise identical
/// to the recorded live run.
fn replay_report(path: &str, args: &Args) {
    let record = match replay_artifact(std::path::Path::new(path), &args.probes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "replaying {path}: protocol {}, scenario {}, workload {}: {} nodes, {:.0} s, seed {}",
        record.protocol,
        record.scenario,
        record.workload,
        record.n_nodes,
        record.duration,
        record.seed
    );

    let stats = &record.stats;
    println!("\n=== {} (replayed) ===", record.protocol);
    println!("delivery ratio   {:.4}", stats.delivery_ratio());
    println!("latency (mean)   {:.1} s", stats.avg_latency());
    println!("goodput          {:.4}", stats.goodput());
    println!("overhead ratio   {:.2}", stats.overhead_ratio());
    println!("relayed          {}", stats.relayed);
    println!("aborted          {}", stats.aborted);
    println!(
        "drops            buffer {} / ttl {} / protocol {}",
        stats.drops_buffer, stats.drops_ttl, stats.drops_protocol
    );
    println!("control traffic  {:.2} MB", stats.control_mb());

    if let Some(ts) = &record.timeseries {
        println!("\ntime series (replayed probe, dt = {:.0} s):", ts.dt);
        let stride = ts.samples.len().div_ceil(20).max(1);
        for s in ts.samples.iter().step_by(stride) {
            println!(
                "  t={:>7.0}  dr={:.4} overhead={:>7.2} buffered={:>6} KB ({} msgs)",
                s.t,
                s.delivery_ratio(),
                s.overhead_ratio(),
                s.buffered_bytes / 1024,
                s.buffered_msgs
            );
        }
    }
    if let Some(hist) = &record.latency {
        println!(
            "\nlatency histogram (replayed probe): n={} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
            hist.count, hist.p50, hist.p95, hist.p99, hist.max
        );
    }

    let mut report = ReportSpec::new(format!("dtnrun replay: {path}"));
    report.push(record);
    if !report.write_all(&args.outs) {
        std::process::exit(1);
    }
}
