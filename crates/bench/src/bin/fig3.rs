//! Figure 3 — effect of the quota λ ∈ {6, 8, 10, 12} on EER, three panels
//! (delivery ratio / latency / goodput) vs. number of nodes.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig3 -- [--full|--quick] [--seeds K]
//! ```

use dtn_bench::report::{print_series_table, settings_table, write_csv, CommonArgs};
use dtn_bench::{run_matrix, ProtocolKind, ProtocolSpec, RunSpec, Series, SweepConfig};
use std::path::Path;

const LAMBDAS: [u32; 4] = [6, 8, 10, 12];

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.print_settings {
        println!("{}", settings_table());
        return;
    }
    let mut specs = Vec::new();
    for &lambda in &LAMBDAS {
        for &n in &args.node_counts {
            let mut spec = RunSpec::on(
                format!("Lambda = {lambda}"),
                args.scenario_for(n),
                ProtocolSpec::paper(ProtocolKind::Eer).with_lambda(lambda),
            )
            .with_workload(args.workload.clone());
            if let Some(d) = args.duration {
                spec = spec.with_duration(d);
            }
            specs.push(spec);
        }
    }
    let cfg = SweepConfig {
        seeds: args.seeds,
        ..SweepConfig::default()
    };
    eprintln!(
        "fig3 (EER): {} lambdas x {} node counts x {} seeds",
        LAMBDAS.len(),
        args.node_counts.len(),
        args.seeds
    );
    let points = run_matrix(&specs, cfg);
    let per = args.node_counts.len();
    let series: Vec<Series> = LAMBDAS
        .iter()
        .enumerate()
        .map(|(li, lambda)| Series {
            label: format!("Lambda = {lambda}"),
            points: args
                .node_counts
                .iter()
                .copied()
                .zip(points[li * per..(li + 1) * per].iter().copied())
                .collect(),
        })
        .collect();
    print!(
        "{}",
        print_series_table(
            "Figure 3: effects of lambda on EER",
            &args.node_counts,
            &series
        )
    );
    let csv = Path::new("results/fig3.csv");
    match write_csv(csv, &series) {
        Ok(()) => eprintln!("\nwrote {}", csv.display()),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
}
