//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin ablation -- <which> [--seeds K] [--nodes a,b,c] \
//!     [--scenario paper|rwp|trace:<path>] [--workload paper|hotspot|bursty]
//! ```
//!
//! `<which>` ∈:
//!
//! * `alpha`     — EER sensitivity to the horizon parameter α;
//! * `ttl-aware` — TTL-conditioned EEV (EER) vs. rate EV (EBR), the paper's
//!   §I motivating comparison;
//! * `emd`       — Theorem-2 elapsed-time correction vs. plain mean
//!   intervals, and the effect of the forwarding hysteresis;
//! * `window`    — sliding-window length vs. estimator quality;
//! * `cr-state`  — EER's full-matrix gossip vs. CR's community-local gossip
//!   (control-byte overhead, the paper's §IV claim);
//! * `lambda-one` — all quota protocols degraded to a single copy;
//! * `buffer-policy` — drop-oldest vs least-remaining-value eviction under
//!   squeezed (256 KB) buffers, the paper's future-work item 1;
//! * `adaptive-lambda` — fixed vs EEV-adaptive quota, future-work item 3;
//! * `detected-communities` — CR on ground-truth vs online-detected
//!   communities, future-work item 2.

use ce_core::{EerConfig, EmdMode};
use dtn_bench::report::{write_csv, CommonArgs};
use dtn_bench::{run_matrix, Protocol, ProtocolKind, RunSpec, Series, SweepConfig};
use dtn_sim::MetricPoint;
use std::path::Path;

/// CR with ground-truth districts vs. CR with communities learned online by
/// the distributed SIMPLE detector (the paper's future-work item 2). Both
/// variants run through the shared runner as a plain sweep matrix — only the
/// [`CommunitySource`] differs.
fn detected_communities(argv: Vec<String>) {
    use ce_core::{pairwise_agreement, CommunityMap};
    use dtn_bench::{run_matrix_with, CommunitySource, ScenarioCache};

    let mut args = match CommonArgs::parse(argv.into_iter()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.node_counts == vec![40, 80, 120, 160, 200, 240] {
        args.node_counts = vec![80, 160];
    }
    let variants = [
        ("ground truth", CommunitySource::GroundTruth),
        ("detected", CommunitySource::Detected),
    ];
    let cache = ScenarioCache::new();
    let mut specs = Vec::new();
    for (label, source) in &variants {
        for &n in &args.node_counts {
            specs.push(
                RunSpec::on(
                    *label,
                    args.scenario_for(n),
                    Protocol::new(ProtocolKind::Cr),
                )
                .with_workload(args.workload.clone())
                .with_communities(source.clone()),
            );
        }
    }
    let cfg = SweepConfig {
        seeds: args.seeds,
        ..SweepConfig::default()
    };
    let points = run_matrix_with(&cache, &specs, cfg);

    // Truth-vs-detected agreement per node count, from the same cached
    // scenarios — and the same memoised detection passes — the sweep ran on.
    let agreements: Vec<f64> = args
        .node_counts
        .iter()
        .map(|&n| {
            (1..=u64::from(args.seeds))
                .map(|seed| {
                    let ps = cache.get_spec(&args.scenario_for(n), &args.workload, seed, None);
                    let truth = CommunityMap::new(ps.scenario.communities.clone());
                    pairwise_agreement(&truth, &cache.detected_communities(&ps))
                })
                .sum::<f64>()
                / f64::from(args.seeds)
        })
        .collect();

    println!("\nAblation: CR with ground-truth vs detected communities");
    println!(
        "{:<12}{:>6}{:>11}{:>9}{:>9}{:>9}{:>12}",
        "variant", "N", "agreement", "deliv", "latency", "goodput", "ctrl MB"
    );
    let per = args.node_counts.len();
    let mut series: Vec<Series> = Vec::new();
    for (vi, (label, _)) in variants.iter().enumerate() {
        let mut pts = Vec::new();
        for (xi, (&n, &agreement)) in args.node_counts.iter().zip(&agreements).enumerate() {
            let p = points[vi * per + xi];
            println!(
                "{label:<12}{n:>6}{agreement:>11.3}{:>9.3}{:>9.1}{:>9.4}{:>12.2}",
                p.delivery_ratio, p.latency, p.goodput, p.control_mb
            );
            pts.push((n, p));
        }
        series.push(Series {
            label: (*label).into(),
            points: pts,
        });
    }
    let csv = Path::new("results/ablation_detected_communities.csv");
    match write_csv(csv, &series) {
        Ok(()) => eprintln!("\nwrote {}", csv.display()),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!(
            "usage: ablation <alpha|ttl-aware|emd|window|cr-state|lambda-one|buffer-policy|\
             adaptive-lambda|detected-communities> [--seeds K] [--nodes a,b,c] \
             [--scenario paper|rwp|trace:<path>] [--workload paper|hotspot|bursty]"
        );
        std::process::exit(2);
    }
    let which = argv.remove(0);
    if which == "detected-communities" {
        return detected_communities(argv);
    }
    let mut args = match CommonArgs::parse(argv.into_iter()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Ablations default to a single mid-sized point unless overridden.
    if args.node_counts == vec![40, 80, 120, 160, 200, 240] {
        args.node_counts = vec![80, 160];
    }

    let (title, variants): (&str, Vec<(String, Protocol)>) = match which.as_str() {
        "alpha" => (
            "EER sensitivity to alpha",
            [0.1, 0.28, 0.5, 0.75, 1.0]
                .iter()
                .map(|&a| {
                    (
                        format!("alpha = {a}"),
                        Protocol::new(ProtocolKind::Eer).with_alpha(a),
                    )
                })
                .collect(),
        ),
        "ttl-aware" => (
            "TTL-aware expected EV (EER) vs rate EV (EBR)",
            vec![
                (
                    "EER (EEV(t, a*TTL))".into(),
                    Protocol::new(ProtocolKind::Eer),
                ),
                ("EBR (rate EV)".into(), Protocol::new(ProtocolKind::Ebr)),
            ],
        ),
        "emd" => (
            "Theorem-2 EMD vs mean intervals; forwarding hysteresis",
            vec![
                (
                    "T2 + hysteresis (default)".into(),
                    Protocol::new(ProtocolKind::Eer),
                ),
                (
                    "T2, no hysteresis (paper-literal)".into(),
                    Protocol::new(ProtocolKind::Eer).with_eer_config(EerConfig {
                        forward_hysteresis: 0.0,
                        ..EerConfig::default()
                    }),
                ),
                (
                    "mean intervals (MEED-style)".into(),
                    Protocol::new(ProtocolKind::Eer).with_eer_config(EerConfig {
                        emd_mode: EmdMode::MeanInterval,
                        ..EerConfig::default()
                    }),
                ),
            ],
        ),
        "window" => (
            "history sliding-window length",
            [4usize, 8, 16, 32, 64]
                .iter()
                .map(|&w| {
                    (
                        format!("window = {w}"),
                        Protocol::new(ProtocolKind::Eer).with_window(w),
                    )
                })
                .collect(),
        ),
        "cr-state" => (
            "routing-state gossip overhead: EER (full MI) vs CR (intra-community MI)",
            vec![
                ("EER".into(), Protocol::new(ProtocolKind::Eer)),
                ("CR".into(), Protocol::new(ProtocolKind::Cr)),
            ],
        ),
        "buffer-policy" => (
            "buffer management under pressure (256 KB buffers): drop-oldest vs \
             least-remaining-value (future-work extension)",
            vec![
                (
                    "EER drop-oldest".into(),
                    Protocol::new(ProtocolKind::Eer).with_eer_config(EerConfig::default()),
                ),
                (
                    "EER least-remaining-value".into(),
                    Protocol::new(ProtocolKind::Eer).with_eer_config(EerConfig {
                        buffer_policy: ce_core::BufferPolicy::LeastRemainingValue,
                        ..EerConfig::default()
                    }),
                ),
                (
                    "Epidemic (reference)".into(),
                    Protocol::new(ProtocolKind::Epidemic),
                ),
            ],
        ),
        "adaptive-lambda" => (
            "fixed quota vs EEV-adaptive quota (future-work extension)",
            vec![
                (
                    "EER lambda = 10 (fixed)".into(),
                    Protocol::new(ProtocolKind::Eer),
                ),
                (
                    "EER lambda = EEV clamp [4, 16]".into(),
                    Protocol::new(ProtocolKind::Eer).with_eer_config(EerConfig {
                        adaptive_lambda: Some((4, 16)),
                        ..EerConfig::default()
                    }),
                ),
            ],
        ),
        "lambda-one" => (
            "quota protocols at lambda = 1 (single copy)",
            vec![
                (
                    "EER".into(),
                    Protocol::new(ProtocolKind::Eer).with_lambda(1),
                ),
                ("CR".into(), Protocol::new(ProtocolKind::Cr).with_lambda(1)),
                (
                    "SprayAndWait".into(),
                    Protocol::new(ProtocolKind::SprayAndWait).with_lambda(1),
                ),
                (
                    "SprayAndFocus".into(),
                    Protocol::new(ProtocolKind::SprayAndFocus).with_lambda(1),
                ),
            ],
        ),
        other => {
            eprintln!("unknown ablation {other}");
            std::process::exit(2);
        }
    };

    let mut specs = Vec::new();
    for (label, proto) in &variants {
        for &n in &args.node_counts {
            let spec = RunSpec::on(label.clone(), args.scenario_for(n), proto.clone())
                .with_workload(args.workload.clone());
            specs.push(match which.as_str() {
                // Buffer-policy runs squeeze the buffers so eviction happens.
                "buffer-policy" => spec.with_buffer(256 * 1024),
                _ => spec,
            });
        }
    }
    let cfg = SweepConfig {
        seeds: args.seeds,
        ..SweepConfig::default()
    };
    eprintln!(
        "ablation {which}: {} variants x {:?} nodes x {} seeds",
        variants.len(),
        args.node_counts,
        args.seeds
    );
    let points = run_matrix(&specs, cfg);
    let per = args.node_counts.len();

    println!("\nAblation: {title}");
    println!(
        "{:<36}{:>6}{:>9}{:>9}{:>9}{:>10}{:>11}",
        "variant", "N", "deliv", "latency", "goodput", "relayed", "ctrl MB"
    );
    let mut series = Vec::new();
    for (vi, (label, _)) in variants.iter().enumerate() {
        let mut pts: Vec<(u32, MetricPoint)> = Vec::new();
        for (xi, &n) in args.node_counts.iter().enumerate() {
            let p = points[vi * per + xi];
            println!(
                "{label:<36}{n:>6}{:>9.3}{:>9.1}{:>9.4}{:>10.0}{:>11.2}",
                p.delivery_ratio, p.latency, p.goodput, p.relayed, p.control_mb
            );
            pts.push((n, p));
        }
        series.push(Series {
            label: label.clone(),
            points: pts,
        });
    }
    let csv = Path::new("results").join(format!("ablation_{which}.csv"));
    match write_csv(&csv, &series) {
        Ok(()) => eprintln!("\nwrote {}", csv.display()),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
}
