//! Ablation studies for the design choices DESIGN.md calls out — every named
//! ablation is *data*: a grid of `(label, protocol-spec)` pairs in the same
//! `--protocol` grammar the binaries accept, swept through the shared
//! runner. There are no per-ablation protocol branches; adding an ablation
//! is adding rows to [`ABLATIONS`].
//!
//! ```text
//! cargo run -p dtn-bench --release --bin ablation -- <which> [--seeds K] [--nodes a,b,c] \
//!     [--scenario paper|rwp|trace:<path>] [--workload paper|hotspot|bursty] \
//!     [--duration SECS]
//! ```
//!
//! `<which>` ∈:
//!
//! * `alpha`     — EER sensitivity to the horizon parameter α;
//! * `ttl-aware` — TTL-conditioned EEV (EER) vs. rate EV (EBR), the paper's
//!   §I motivating comparison;
//! * `emd`       — Theorem-2 elapsed-time correction vs. plain mean
//!   intervals, and the effect of the forwarding hysteresis;
//! * `window`    — sliding-window length vs. estimator quality;
//! * `cr-state`  — EER's full-matrix gossip vs. CR's community-local gossip
//!   (control-byte overhead, the paper's §IV claim);
//! * `lambda-one` — all quota protocols degraded to a single copy;
//! * `buffer-policy` — drop-oldest vs least-remaining-value eviction under
//!   squeezed (256 KB) buffers, the paper's future-work item 1;
//! * `adaptive-lambda` — fixed vs EEV-adaptive quota, future-work item 3;
//! * `detected-communities` — CR on ground-truth vs online-detected
//!   communities, future-work item 2 (the one ablation whose axis is the
//!   community *source*, not a protocol parameter);
//! * `grid <spec>...` — an ad-hoc ablation: any protocol specs given on the
//!   command line run side-by-side as series, e.g.
//!   `ablation grid eer:lambda=4 eer:lambda=16 prophet:beta=0.25`.

use dtn_bench::report::CommonArgs;
use dtn_bench::{
    run_matrix_records_stored, ProtocolKind, ProtocolSpec, ReportSpec, RunSpec, ScenarioCache,
};

/// One named, data-driven ablation: a title and a grid of
/// `(series label, protocol spec)` pairs in the CLI grammar.
struct Ablation {
    name: &'static str,
    title: &'static str,
    grid: &'static [(&'static str, &'static str)],
}

/// Every named ablation as a `ProtocolSpec` grid. The spec strings are the
/// single source of truth; `ablation_grids_parse` (tests) guards them.
const ABLATIONS: &[Ablation] = &[
    Ablation {
        name: "alpha",
        title: "EER sensitivity to alpha",
        grid: &[
            ("alpha = 0.1", "eer:alpha=0.1"),
            ("alpha = 0.28", "eer:alpha=0.28"),
            ("alpha = 0.5", "eer:alpha=0.5"),
            ("alpha = 0.75", "eer:alpha=0.75"),
            ("alpha = 1", "eer:alpha=1"),
        ],
    },
    Ablation {
        name: "ttl-aware",
        title: "TTL-aware expected EV (EER) vs rate EV (EBR)",
        grid: &[("EER (EEV(t, a*TTL))", "eer"), ("EBR (rate EV)", "ebr")],
    },
    Ablation {
        name: "emd",
        title: "Theorem-2 EMD vs mean intervals; forwarding hysteresis",
        grid: &[
            ("T2 + hysteresis (default)", "eer"),
            ("T2, no hysteresis (paper-literal)", "eer:hysteresis=0"),
            ("mean intervals (MEED-style)", "eer:emd=mean"),
        ],
    },
    Ablation {
        name: "window",
        title: "history sliding-window length",
        grid: &[
            ("window = 4", "eer:window=4"),
            ("window = 8", "eer:window=8"),
            ("window = 16", "eer:window=16"),
            ("window = 32", "eer:window=32"),
            ("window = 64", "eer:window=64"),
        ],
    },
    Ablation {
        name: "cr-state",
        title: "routing-state gossip overhead: EER (full MI) vs CR (intra-community MI)",
        grid: &[("EER", "eer"), ("CR", "cr")],
    },
    Ablation {
        name: "buffer-policy",
        title: "buffer management under pressure (256 KB buffers): drop-oldest vs \
                least-remaining-value (future-work extension)",
        grid: &[
            ("EER drop-oldest", "eer:buffer=262144"),
            ("EER least-remaining-value", "eer:policy=lrv,buffer=262144"),
            ("Epidemic (reference)", "epidemic:buffer=262144"),
        ],
    },
    Ablation {
        name: "adaptive-lambda",
        title: "fixed quota vs EEV-adaptive quota (future-work extension)",
        grid: &[
            ("EER lambda = 10 (fixed)", "eer"),
            ("EER lambda = EEV clamp [4, 16]", "eer:adaptive=4..16"),
        ],
    },
    Ablation {
        name: "lambda-one",
        title: "quota protocols at lambda = 1 (single copy)",
        grid: &[
            ("EER", "eer:lambda=1"),
            ("CR", "cr:lambda=1"),
            ("SprayAndWait", "spraywait:lambda=1"),
            ("SprayAndFocus", "sprayfocus:lambda=1"),
        ],
    },
];

const USAGE: &str = "usage: ablation <alpha|ttl-aware|emd|window|cr-state|lambda-one|\
                     buffer-policy|adaptive-lambda|detected-communities|grid <spec>...> \
                     [--seeds K] [--nodes a,b,c] [--scenario paper|rwp|trace:<path>] \
                     [--workload paper|hotspot|bursty] [--duration SECS] \
                     [--threads N] [--run-threads N] [--drain inline|ring[:CAP]] \
                     [--store DIR|--no-store] \
                     [--out json:PATH|csv:PATH|md:PATH ...]";

/// CR with ground-truth districts vs. CR with communities learned online by
/// the distributed SIMPLE detector (the paper's future-work item 2). Both
/// variants run through the shared runner as a plain sweep matrix — only the
/// `CommunitySource` differs, so this stays a bespoke mode rather than a
/// protocol-spec grid.
fn detected_communities(argv: Vec<String>) {
    use ce_core::{pairwise_agreement, CommunityMap};
    use dtn_bench::CommunitySource;

    let mut args = match CommonArgs::parse(argv.into_iter()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.node_counts == vec![40, 80, 120, 160, 200, 240] {
        args.node_counts = vec![80, 160];
    }
    let variants = [
        ("ground truth", CommunitySource::GroundTruth),
        ("detected", CommunitySource::Detected),
    ];
    let cache = ScenarioCache::new();
    let mut specs = Vec::new();
    for (label, source) in &variants {
        for &n in &args.node_counts {
            specs.push(
                args.configure(RunSpec::on(
                    *label,
                    args.scenario_for(n),
                    ProtocolSpec::paper(ProtocolKind::Cr),
                ))
                .with_communities(source.clone()),
            );
        }
    }
    let cfg = args.sweep_config();
    let store = args.open_store();
    let mut report = ReportSpec::new("Ablation: CR with ground-truth vs detected communities");
    report.records = run_matrix_records_stored(&cache, &specs, cfg, store.as_ref());
    // Positional view, not cells(): a trace scenario ignores the node
    // count, so its per-n sweep points merge into one cell.
    let points = report.points(cfg.effective_seeds() as usize);

    // Truth-vs-detected agreement per node count, from the same cached
    // scenarios — and the same memoised detection passes — the sweep ran on.
    // Averaged over the seeds the sweep *actually* ran (effective_seeds
    // clamps `--seeds 0` to 1), so the column can never divide by zero.
    let seeds_run = cfg.effective_seeds();
    let agreements: Vec<f64> = args
        .node_counts
        .iter()
        .map(|&n| {
            (1..=u64::from(seeds_run))
                .map(|seed| {
                    let ps =
                        cache.get_spec(&args.scenario_for(n), &args.workload, seed, args.duration);
                    let truth = CommunityMap::new(ps.scenario.communities.clone());
                    pairwise_agreement(&truth, &cache.detected_communities(&ps))
                })
                .sum::<f64>()
                / f64::from(seeds_run)
        })
        .collect();

    // The agreement axis is not a per-run metric (it compares two community
    // maps, not a protocol's performance), so this table stays bespoke; the
    // file outputs below still flow through the shared pipeline.
    println!("\n{}", report.title);
    println!(
        "{:<12}{:>6}{:>11}{:>9}{:>9}{:>9}{:>12}",
        "variant", "N", "agreement", "deliv", "latency", "goodput", "ctrl MB"
    );
    let per = args.node_counts.len();
    for (vi, (label, _)) in variants.iter().enumerate() {
        for (xi, (&n, &agreement)) in args.node_counts.iter().zip(&agreements).enumerate() {
            let p = points[vi * per + xi];
            println!(
                "{label:<12}{n:>6}{agreement:>11.3}{:>9.3}{:>9.1}{:>9.4}{:>12.2}",
                p.delivery_ratio, p.latency, p.goodput, p.control_mb
            );
        }
    }
    eprintln!();
    if !report.write_all(&args.outs_or(&["csv:results/ablation_detected_communities.csv"])) {
        std::process::exit(1);
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let which = argv.remove(0);
    if which == "detected-communities" {
        return detected_communities(argv);
    }

    // Resolve the grid: a named ablation's data, or — for `grid` — the
    // specs given on the command line (labelled by their canonical form).
    let (title, grid): (String, Vec<(String, ProtocolSpec)>) = if which == "grid" {
        let mut pairs = Vec::new();
        while let Some(first) = argv.first() {
            if first.starts_with("--") {
                break;
            }
            let raw = argv.remove(0);
            match ProtocolSpec::parse(&raw) {
                Ok(spec) => pairs.push((format!("{spec}"), spec)),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
        if pairs.len() < 2 {
            eprintln!("ablation grid needs at least two protocol specs to compare");
            std::process::exit(2);
        }
        ("ad-hoc protocol grid".to_string(), pairs)
    } else {
        let Some(a) = ABLATIONS.iter().find(|a| a.name == which) else {
            eprintln!("unknown ablation {which}\n{USAGE}");
            std::process::exit(2);
        };
        let pairs = a
            .grid
            .iter()
            .map(|(label, spec)| {
                let spec = ProtocolSpec::parse(spec)
                    .unwrap_or_else(|e| panic!("invalid builtin grid entry `{spec}`: {e}"));
                (label.to_string(), spec)
            })
            .collect();
        (a.title.to_string(), pairs)
    };

    let mut args = match CommonArgs::parse(argv.into_iter()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Ablations default to a single mid-sized point unless overridden.
    if args.node_counts == vec![40, 80, 120, 160, 200, 240] {
        args.node_counts = vec![80, 160];
    }

    let mut specs = Vec::new();
    for (label, proto) in &grid {
        for &n in &args.node_counts {
            specs.push(args.configure(RunSpec::on(
                label.clone(),
                args.scenario_for(n),
                proto.clone(),
            )));
        }
    }
    let cfg = args.sweep_config();
    eprintln!(
        "ablation {which}: {} variants x {:?} nodes x {} seeds",
        grid.len(),
        args.node_counts,
        args.seeds
    );
    let store = args.open_store();
    let mut report = ReportSpec::new(format!("Ablation: {title}"));
    report.records = run_matrix_records_stored(&ScenarioCache::new(), &specs, cfg, store.as_ref());

    print!("{}", report.render_table());
    eprintln!();
    let default_out = format!("csv:results/ablation_{which}.csv");
    if !report.write_all(&args.outs_or(&[&default_out])) {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_bench::ProtocolParams;

    /// Every builtin grid entry must parse — the grids are data, so this is
    /// the compile-time check the old hard-coded branches got for free.
    #[test]
    fn ablation_grids_parse() {
        for a in ABLATIONS {
            assert!(a.grid.len() >= 2, "{}: a grid needs >= 2 variants", a.name);
            for (label, spec) in a.grid {
                let parsed = ProtocolSpec::parse(spec)
                    .unwrap_or_else(|e| panic!("{}: `{spec}` ({label}): {e}", a.name));
                // Round-trip through the canonical form as an extra guard.
                assert_eq!(
                    ProtocolSpec::parse(&format!("{parsed}")).unwrap(),
                    parsed,
                    "{}: `{spec}` does not round-trip",
                    a.name
                );
            }
        }
    }

    /// The spec-driven grids reproduce the former hard-coded constants:
    /// spot-check the entries that used to be Rust expressions.
    #[test]
    fn grids_match_former_constants() {
        let find = |name: &str| ABLATIONS.iter().find(|a| a.name == name).unwrap();
        // buffer-policy squeezed buffers to 256 KB via RunSpec::with_buffer.
        for (_, spec) in find("buffer-policy").grid {
            let s = ProtocolSpec::parse(spec).unwrap();
            assert_eq!(s.buffer, Some(256 * 1024));
        }
        // adaptive-lambda's clamp range was (4, 16).
        let s = ProtocolSpec::parse(find("adaptive-lambda").grid[1].1).unwrap();
        match s.params {
            ProtocolParams::Eer(c) => assert_eq!(c.adaptive_lambda, Some((4, 16))),
            ref other => panic!("wrong params: {other:?}"),
        }
        // lambda-one degraded every quota protocol to a single copy.
        for (_, spec) in find("lambda-one").grid {
            let s = ProtocolSpec::parse(spec).unwrap();
            match s.params {
                ProtocolParams::Eer(c) => assert_eq!(c.lambda, 1),
                ProtocolParams::Cr(c) => assert_eq!(c.lambda, 1),
                ProtocolParams::SprayAndWait { lambda, .. } => assert_eq!(lambda, 1),
                ProtocolParams::SprayAndFocus(c) => assert_eq!(c.lambda, 1),
                ref other => panic!("unexpected family: {other:?}"),
            }
        }
    }
}
