//! `reportcheck` — schema validator for the JSON documents the report
//! pipeline emits (`cen-dtn.report` reports and `cen-dtn.bench`
//! trajectories like `BENCH_shootout.json`) and for TRACE/1.0 event-log
//! artifacts.
//!
//! ```text
//! cargo run -p bench --bin reportcheck -- FILE [FILE...]
//! cargo run -p bench --bin reportcheck -- trace FILE [FILE...]
//! ```
//!
//! For each JSON file it checks the schema name and version, the presence
//! of the per-record / per-cell required fields, that **every** number in
//! the document is finite (the emitters turn NaN/inf into `null`, which
//! fails here), and the probe sections' invariants — time-series counters
//! must be cumulative and agree with the record's end-of-run stats, latency
//! histogram buckets must sum to the delivery count with ordered
//! percentiles.
//!
//! `reportcheck trace FILE` validates a TRACE/1.0 artifact instead: the
//! magic and version, the header, the per-record FNV-1a hash chain, dense
//! monotone sequence numbers, the trailer record count, and the trailing
//! content fingerprint. Every failure names the file and — for chain
//! breaks — the offending sequence number.
//!
//! Exits non-zero on the first invalid file — the CI gate for
//! `shootout --out json:...`, its bench trajectory, and recorded run
//! artifacts.
//!
//! The same validation is the result store's admission rule: every entry
//! under `results/store/` is a one-record `cen-dtn.report` document, so
//! `reportcheck results/store/*/*.json` (or `dtnstore verify`, which adds
//! the layout invariant) audits the warm-sweep cache with this exact code
//! path — an entry this tool rejects is never served.

use dtn_bench::report::validate_document;
use dtn_sim::TraceReader;
use std::path::Path;

const USAGE: &str = "usage: reportcheck FILE [FILE...]
       reportcheck trace FILE [FILE...]";

fn main() {
    let mut files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|f| f == "--help" || f == "-h") {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let traces = files[0] == "trace";
    if traces {
        files.remove(0);
        if files.is_empty() {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    let mut failed = false;
    for file in &files {
        if traces {
            match TraceReader::open(Path::new(file)) {
                Ok(reader) => {
                    let meta = reader.meta();
                    println!(
                        "{file}: OK (TRACE/1.0, cell `{}`, {} records, \
                         {} nodes, end {} s, fingerprint {:#018x})",
                        meta.cell_key,
                        reader.events().len(),
                        meta.n_nodes,
                        reader.end_time().as_secs(),
                        reader.fingerprint()
                    );
                }
                Err(e) => {
                    eprintln!("{file}: INVALID: {e}");
                    failed = true;
                }
            }
            continue;
        }
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_document(&text) {
            Ok(summary) => println!("{file}: OK ({summary})"),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
