//! `reportcheck` — schema validator for the JSON documents the report
//! pipeline emits (`cen-dtn.report` reports and `cen-dtn.bench`
//! trajectories like `BENCH_shootout.json`).
//!
//! ```text
//! cargo run -p bench --bin reportcheck -- FILE [FILE...]
//! ```
//!
//! For each file it checks the schema name and version, the presence of the
//! per-record / per-cell required fields, that **every** number in the
//! document is finite (the emitters turn NaN/inf into `null`, which fails
//! here), and the probe sections' invariants — time-series counters must be
//! cumulative and agree with the record's end-of-run stats, latency
//! histogram buckets must sum to the delivery count with ordered
//! percentiles. Exits non-zero on the first invalid file — the CI gate for
//! `shootout --out json:...` and its bench trajectory.

use dtn_bench::report::validate_document;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|f| f == "--help" || f == "-h") {
        eprintln!("usage: reportcheck FILE [FILE...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_document(&text) {
            Ok(summary) => println!("{file}: OK ({summary})"),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
