//! First-class probe specifications.
//!
//! A [`ProbeSpec`] is a *value* describing an observation attached to a run
//! — which [`dtn_sim::observe`] probe to instantiate and with which
//! parameters — mirroring the `ScenarioSpec`/`WorkloadSpec`/`ProtocolSpec`
//! design: a validated CLI grammar, a canonical `Display`
//! (`parse ∘ Display` is the identity, proptest'd), and an injective
//! [`ProbeSpec::cache_key`] that the runner folds into each cell identity so
//! probed and unprobed variants of one cell never collide in any keyed map.
//!
//! # CLI grammar
//!
//! ```text
//! --probe timeseries            delivery/overhead/occupancy curves, dt = 60 s
//! --probe timeseries:dt=250     the same at a 250 s cadence
//! --probe latency               log₂ latency histogram with exact p50/p95/p99
//! --probe eventlog              record a TRACE/1.0 artifact (results/run.trace)
//! --probe eventlog:path=P       the same at an explicit path; `{seed}` in P
//!                               expands to the run's seed
//! ```
//!
//! The flag is repeatable; each spec attaches one observer to every run of
//! the sweep. Probes are pure observation — the engine guarantees a probed
//! run's [`SimStats`](dtn_sim::SimStats) is bitwise identical to the
//! unprobed run.
//!
//! ```
//! use dtn_bench::ProbeSpec;
//!
//! let p = ProbeSpec::parse("timeseries:dt=250").unwrap();
//! assert_eq!(p, ProbeSpec::TimeSeries { dt: 250.0 });
//! // Display is canonical and round-trips.
//! assert_eq!(ProbeSpec::parse(&p.to_string()).unwrap(), p);
//! // The default cadence prints bare.
//! assert_eq!(ProbeSpec::parse("timeseries").unwrap().to_string(), "timeseries");
//! // Unknown names and keys are parse-time errors listing the valid ones.
//! assert!(ProbeSpec::parse("histogram").unwrap_err().contains("timeseries"));
//! assert!(ProbeSpec::parse("timeseries:rate=2").unwrap_err().contains("dt"));
//! ```

use std::fmt;

/// Default sampling cadence of the time-series probe, in seconds.
pub const DEFAULT_TIMESERIES_DT: f64 = 60.0;

/// Default artifact path of the event-log probe.
pub const DEFAULT_EVENTLOG_PATH: &str = "results/run.trace";

/// One observation attached to a run — the probe-layer sibling of
/// `ScenarioSpec`/`WorkloadSpec`/`ProtocolSpec`.
#[derive(Clone, Debug, PartialEq)]
pub enum ProbeSpec {
    /// Sample delivery-ratio / overhead / buffer-occupancy curves every
    /// `dt` seconds ([`dtn_sim::TimeSeriesProbe`]).
    TimeSeries {
        /// Sampling cadence in seconds (finite, positive).
        dt: f64,
    },
    /// Collect per-delivery latencies into a log₂-bucketed histogram with
    /// exact p50/p95/p99 ([`dtn_sim::LatencyHistogramProbe`]).
    LatencyHist,
    /// Record the full event stream into a TRACE/1.0 artifact
    /// ([`dtn_sim::EventLogWriter`]) for later replay.
    EventLog {
        /// Artifact path. A literal `{seed}` expands to the run's seed at
        /// attach time, so multi-seed sweeps write distinct artifacts.
        path: String,
    },
}

impl ProbeSpec {
    /// Parses the `--probe` grammar: `timeseries[:dt=SECS]` (alias `ts`),
    /// `latency` (alias `hist`) or `eventlog[:path=P]` (alias `record`).
    /// Validation happens here: a non-positive or non-finite cadence, an
    /// unknown key, an empty or directory-shaped artifact path or an
    /// unknown probe name all fail with a message naming the valid forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, params) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        match name.to_ascii_lowercase().as_str() {
            "timeseries" | "ts" => {
                let mut dt = DEFAULT_TIMESERIES_DT;
                if let Some(params) = params {
                    for kv in params.split(',') {
                        let (key, value) = kv.split_once('=').ok_or_else(|| {
                            format!("probe `{s}`: expected key=value, got `{kv}`")
                        })?;
                        match key {
                            "dt" => {
                                dt = value.parse().map_err(|e| format!("probe `{s}`: dt: {e}"))?;
                                // The engine's floor: finer cadences flood
                                // the event queue (far below it, they could
                                // not even advance the clock).
                                if !dt.is_finite() || dt < dtn_sim::engine::MIN_SAMPLE_INTERVAL {
                                    return Err(format!(
                                        "probe `{s}`: dt must be at least {} s of simulated \
                                         time, got {value}",
                                        dtn_sim::engine::MIN_SAMPLE_INTERVAL
                                    ));
                                }
                            }
                            other => {
                                return Err(format!(
                                    "probe `{s}`: unknown key `{other}` (valid: dt)"
                                ))
                            }
                        }
                    }
                }
                Ok(ProbeSpec::TimeSeries { dt })
            }
            "latency" | "hist" => {
                if let Some(params) = params {
                    return Err(format!(
                        "probe `{s}`: the latency histogram takes no parameters \
                         (got `{params}`)"
                    ));
                }
                Ok(ProbeSpec::LatencyHist)
            }
            "eventlog" | "record" => {
                // The whole parameter tail after `path=` is the path
                // verbatim — artifact paths may contain `,` and `=`.
                let path = match params {
                    None => DEFAULT_EVENTLOG_PATH.to_string(),
                    Some(p) => match p.strip_prefix("path=") {
                        Some(rest) if !rest.is_empty() => rest.to_string(),
                        _ => {
                            return Err(format!(
                                "probe `{s}`: expected path=PATH (valid: \
                                 eventlog[:path=PATH])"
                            ))
                        }
                    },
                };
                if path.ends_with('/') {
                    return Err(format!(
                        "probe `{s}`: artifact path `{path}` names a directory"
                    ));
                }
                Ok(ProbeSpec::EventLog { path })
            }
            other => Err(format!(
                "unknown probe `{other}` (valid: timeseries[:dt=SECS], latency, \
                 eventlog[:path=PATH])"
            )),
        }
    }

    /// Injective cache-key component: every parameter encoded, floats by bit
    /// pattern. The runner appends this to a cell's identity, so a probed
    /// cell can never collide with an unprobed (or differently-probed) one.
    pub fn cache_key(&self) -> String {
        match self {
            ProbeSpec::TimeSeries { dt } => format!("timeseries:dt={:016x}", dt.to_bits()),
            ProbeSpec::LatencyHist => "latency".to_string(),
            // The path is percent-escaped so the key never contains the
            // `|` / `+` separators the cell-key encoding reserves (and so
            // distinct paths cannot collide after escaping).
            ProbeSpec::EventLog { path } => {
                let mut out = String::with_capacity(path.len() + 14);
                out.push_str("eventlog:path=");
                for c in path.chars() {
                    match c {
                        '%' | '|' | '+' => {
                            out.push('%');
                            out.push_str(&format!("{:02x}", c as u32));
                        }
                        _ => out.push(c),
                    }
                }
                out
            }
        }
    }

    /// For an event-log probe, the artifact path with `{seed}` expanded to
    /// the run's seed; `None` for pure in-memory probes.
    pub fn artifact_path(&self, seed: u64) -> Option<String> {
        match self {
            ProbeSpec::EventLog { path } => Some(path.replace("{seed}", &seed.to_string())),
            _ => None,
        }
    }
}

impl fmt::Display for ProbeSpec {
    /// The canonical grammar form: name plus non-default parameters.
    /// `parse ∘ Display` is the identity, so every printed spec is a
    /// reproducible `--probe` argument.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeSpec::TimeSeries { dt } => {
                if *dt == DEFAULT_TIMESERIES_DT {
                    write!(f, "timeseries")
                } else {
                    write!(f, "timeseries:dt={dt}")
                }
            }
            ProbeSpec::LatencyHist => write!(f, "latency"),
            ProbeSpec::EventLog { path } => {
                if path == DEFAULT_EVENTLOG_PATH {
                    write!(f, "eventlog")
                } else {
                    write!(f, "eventlog:path={path}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_aliases() {
        assert_eq!(
            ProbeSpec::parse("timeseries").unwrap(),
            ProbeSpec::TimeSeries {
                dt: DEFAULT_TIMESERIES_DT
            }
        );
        assert_eq!(
            ProbeSpec::parse("ts:dt=5").unwrap(),
            ProbeSpec::TimeSeries { dt: 5.0 }
        );
        assert_eq!(ProbeSpec::parse("latency").unwrap(), ProbeSpec::LatencyHist);
        assert_eq!(ProbeSpec::parse("HIST").unwrap(), ProbeSpec::LatencyHist);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(ProbeSpec::parse("timeseries:dt=0").is_err());
        assert!(ProbeSpec::parse("timeseries:dt=-3").is_err());
        // Below the engine's minimum cadence (1 ms of simulated time).
        assert!(ProbeSpec::parse("timeseries:dt=0.0001").is_err());
        assert!(ProbeSpec::parse("timeseries:dt=0.001").is_ok());
        assert!(ProbeSpec::parse("timeseries:dt=nan").is_err());
        assert!(ProbeSpec::parse("timeseries:dt=inf").is_err());
        assert!(ProbeSpec::parse("timeseries:bogus=1").is_err());
        assert!(ProbeSpec::parse("timeseries:dt").is_err());
        assert!(ProbeSpec::parse("latency:k=1").is_err());
        assert!(ProbeSpec::parse("nope").is_err());
    }

    #[test]
    fn display_is_canonical() {
        assert_eq!(ProbeSpec::TimeSeries { dt: 60.0 }.to_string(), "timeseries");
        assert_eq!(
            ProbeSpec::TimeSeries { dt: 250.0 }.to_string(),
            "timeseries:dt=250"
        );
        assert_eq!(ProbeSpec::LatencyHist.to_string(), "latency");
    }

    #[test]
    fn cache_keys_are_injective_over_dt() {
        let a = ProbeSpec::TimeSeries { dt: 60.0 }.cache_key();
        let b = ProbeSpec::TimeSeries { dt: 60.0000001 }.cache_key();
        assert_ne!(a, b, "distinct cadences must key distinctly");
        assert_ne!(a, ProbeSpec::LatencyHist.cache_key());
    }

    #[test]
    fn eventlog_parses_and_round_trips() {
        assert_eq!(
            ProbeSpec::parse("eventlog").unwrap(),
            ProbeSpec::EventLog {
                path: DEFAULT_EVENTLOG_PATH.into()
            }
        );
        let p = ProbeSpec::parse("record:path=results/run_{seed}.trace").unwrap();
        assert_eq!(
            p,
            ProbeSpec::EventLog {
                path: "results/run_{seed}.trace".into()
            }
        );
        // Canonical display round-trips; the default path prints bare.
        assert_eq!(ProbeSpec::parse(&p.to_string()).unwrap(), p);
        assert_eq!(
            ProbeSpec::parse("eventlog").unwrap().to_string(),
            "eventlog"
        );
        // Paths with `=` and `,` survive verbatim.
        let odd = ProbeSpec::parse("eventlog:path=out/a=b,c.trace").unwrap();
        assert_eq!(ProbeSpec::parse(&odd.to_string()).unwrap(), odd);
        // Bad forms are loud.
        assert!(ProbeSpec::parse("eventlog:path=").is_err());
        assert!(ProbeSpec::parse("eventlog:dir=x").is_err());
        assert!(ProbeSpec::parse("eventlog:path=results/").is_err());
    }

    #[test]
    fn eventlog_cache_key_escapes_separators() {
        let p = ProbeSpec::EventLog {
            path: "a|b+c%d.trace".into(),
        };
        let key = p.cache_key();
        assert!(!key[9..].contains('|'), "cell-key separator leaked: {key}");
        assert!(!key[9..].contains('+'), "cell-key separator leaked: {key}");
        assert_eq!(key, "eventlog:path=a%7cb%2bc%25d.trace");
        // Escaping keeps distinct paths distinct.
        let q = ProbeSpec::EventLog {
            path: "a%7cb+c%d.trace".into(),
        };
        assert_ne!(p.cache_key(), q.cache_key());
    }

    #[test]
    fn eventlog_seed_placeholder_expands() {
        let p = ProbeSpec::parse("eventlog:path=r/s{seed}.trace").unwrap();
        assert_eq!(p.artifact_path(42).as_deref(), Some("r/s42.trace"));
        assert_eq!(ProbeSpec::LatencyHist.artifact_path(42), None);
    }
}
