//! Parallel sweep runner.
//!
//! A sweep is a matrix of `(point, seed)` runs. Runs are independent, so the
//! runner fans them out over worker threads with `std::thread::scope` and a
//! shared atomic work index, then reduces per-point results in deterministic
//! order (results are keyed, not raced).

use crate::protocols::Protocol;
use crate::scenario::ScenarioCache;
use ce_core::CommunityMap;
use dtn_sim::{MetricPoint, SimConfig, SimStats, Simulation};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One cell of the sweep matrix.
#[derive(Clone)]
pub struct RunSpec {
    /// Row label (e.g. protocol name or λ value).
    pub series: String,
    /// X value (number of nodes).
    pub n_nodes: u32,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Per-node buffer capacity override in bytes (`None` = paper's 1 MB).
    pub buffer_capacity: Option<u64>,
}

impl RunSpec {
    /// A spec with the paper's default simulation parameters.
    pub fn new(series: impl Into<String>, n_nodes: u32, protocol: Protocol) -> Self {
        RunSpec {
            series: series.into(),
            n_nodes,
            protocol,
            buffer_capacity: None,
        }
    }

    /// Overrides the per-node buffer capacity (bytes).
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer_capacity = Some(bytes);
        self
    }
}

/// Sweep-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Seeds per point (the paper averages 10 runs; default here is 3 for
    /// wall-clock reasons — pass `--full` to the binaries for 10).
    pub seeds: u32,
    /// Worker threads (defaults to available parallelism).
    pub threads: usize,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seeds: 3,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            verbose: true,
        }
    }
}

/// Executes every `(spec, seed)` combination and reduces each spec's runs
/// into a [`MetricPoint`]. Returns points in the order of `specs`.
pub fn run_matrix(specs: &[RunSpec], cfg: SweepConfig) -> Vec<MetricPoint> {
    let cache = ScenarioCache::new();
    let jobs: Vec<(usize, u64)> = (0..specs.len())
        .flat_map(|i| (0..cfg.seeds).map(move |s| (i, u64::from(s) + 1)))
        .collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Vec<(u64, SimStats)>> = {
        let mut slots: Vec<std::sync::Mutex<Vec<(u64, SimStats)>>> = Vec::new();
        slots.resize_with(specs.len(), Default::default);
        std::thread::scope(|scope| {
            for _ in 0..cfg.threads.max(1) {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(spec_idx, seed)) = jobs.get(j) else {
                        break;
                    };
                    let spec = &specs[spec_idx];
                    let stats = run_one(&cache, spec, seed);
                    if cfg.verbose {
                        eprintln!(
                            "  [{}/{}] {} n={} seed={} dr={:.3} lat={:.1} gp={:.4}",
                            j + 1,
                            jobs.len(),
                            spec.series,
                            spec.n_nodes,
                            seed,
                            stats.delivery_ratio(),
                            stats.avg_latency(),
                            stats.goodput()
                        );
                    }
                    slots[spec_idx].lock().unwrap().push((seed, stats));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                let mut v = m.into_inner().unwrap();
                v.sort_by_key(|(seed, _)| *seed);
                v
            })
            .collect()
    };
    results
        .into_iter()
        .map(|runs| {
            let stats: Vec<SimStats> = runs.into_iter().map(|(_, s)| s).collect();
            MetricPoint::from_runs(&stats)
        })
        .collect()
}

/// Runs one `(spec, seed)` cell.
fn run_one(cache: &ScenarioCache, spec: &RunSpec, seed: u64) -> SimStats {
    let ps = cache.get(spec.n_nodes, seed);
    // CR needs the scenario's community ground truth; attach it here so
    // callers don't have to know the seed-specific map.
    let mut protocol = spec.protocol.clone();
    if protocol.communities.is_none() {
        protocol.communities = Some(Arc::new(CommunityMap::new(
            ps.scenario.communities.clone(),
        )));
    }
    let mut cfg = SimConfig::paper(seed);
    if let Some(bytes) = spec.buffer_capacity {
        cfg.buffer_capacity = bytes;
    }
    let sim = Simulation::new(
        &ps.scenario.trace,
        ps.workload.as_ref().clone(),
        cfg,
        |id, n| protocol.make_router(id, n),
    );
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{Protocol, ProtocolKind};

    /// The matrix runner produces one averaged point per spec and is
    /// deterministic across repeats.
    #[test]
    fn matrix_runs_deterministically() {
        let specs = vec![
            RunSpec::new(
                "SprayAndWait",
                10,
                Protocol::new(ProtocolKind::SprayAndWait).with_lambda(4),
            ),
            RunSpec::new("Epidemic", 10, Protocol::new(ProtocolKind::Epidemic)),
        ];
        let cfg = SweepConfig {
            seeds: 2,
            threads: 2,
            verbose: false,
        };
        let a = run_matrix(&specs, cfg);
        let b = run_matrix(&specs, cfg);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.runs, 2);
            assert_eq!(x.delivery_ratio, y.delivery_ratio);
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.goodput, y.goodput);
        }
        // Epidemic floods, so it must relay at least as much as quota spray;
        // delivery can't be lower on identical traces.
        assert!(a[1].delivery_ratio >= a[0].delivery_ratio - 1e-9);
    }
}
