//! The single execution layer every binary, bench and test drives
//! simulations through.
//!
//! The primitive is `RunSpec → SimStats`: [`run_spec`] resolves the spec's
//! scenario through a shared [`ScenarioCache`] and executes one deterministic
//! `(spec, seed)` cell; [`run_on`] is the same execution against an
//! explicitly supplied scenario (trace replay, pre-built inputs). A sweep is
//! a matrix of such cells: [`run_matrix`] fans them out over worker threads
//! with `std::thread::scope` and a shared atomic work index, then reduces
//! per-point results in deterministic order (results are keyed, not raced),
//! so the thread count never changes the output. [`run_matrix_records`] is
//! the same fan-out returning provenance-full
//! [`RunRecord`]s for the report pipeline.
//!
//! ```
//! use dtn_bench::{run_matrix, ProtocolSpec, RunSpec, SweepConfig};
//!
//! // Two protocols on the paper's 8-node bus-city, one seed each.
//! let specs = vec![
//!     RunSpec::new("EER", 8, ProtocolSpec::parse("eer:lambda=4").unwrap())
//!         .with_duration(300.0),
//!     RunSpec::new("Epidemic", 8, ProtocolSpec::parse("epidemic").unwrap())
//!         .with_duration(300.0),
//! ];
//! let cfg = SweepConfig { seeds: 1, threads: 2, verbose: false };
//! let points = run_matrix(&specs, cfg);
//! assert_eq!(points.len(), 2, "one averaged point per spec");
//! assert!(points.iter().all(|p| p.runs == 1));
//! ```

use crate::probes::ProbeSpec;
use crate::protocols::ProtocolSpec;
use crate::report::RunRecord;
use crate::scenario::{BuiltScenario, ScenarioCache, ScenarioKey};
use ce_core::{detect_over_trace, detected_map, CommunityMap, DetectorConfig};
use dtn_mobility::{ScenarioSpec, WorkloadSpec};
use dtn_sim::{
    EventLogWriter, LatencyHistogram, LatencyHistogramProbe, MetricPoint, SimConfig, SimObserver,
    SimStats, Simulation, TimeSeries, TimeSeriesProbe, TraceMeta, TraceReader,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where a run's community map (needed by CR) comes from.
#[derive(Clone, Default)]
pub enum CommunitySource {
    /// The scenario's ground truth (each bus line's home district).
    #[default]
    GroundTruth,
    /// Online detection over the contact trace (the SIMPLE detector).
    Detected,
    /// A fixed, caller-supplied map.
    Fixed(Arc<CommunityMap>),
}

impl CommunitySource {
    /// Materialises the community map for `ps`.
    fn resolve(&self, ps: &BuiltScenario) -> Arc<CommunityMap> {
        match self {
            CommunitySource::GroundTruth => {
                Arc::new(CommunityMap::new(ps.scenario.communities.clone()))
            }
            CommunitySource::Detected => {
                let dets = detect_over_trace(&ps.scenario.trace, DetectorConfig::default());
                Arc::new(detected_map(&dets))
            }
            CommunitySource::Fixed(map) => Arc::clone(map),
        }
    }
}

/// One cell of the sweep matrix.
#[derive(Clone)]
pub struct RunSpec {
    /// Row label (e.g. protocol name or λ value).
    pub series: String,
    /// The contact scenario this cell runs on.
    pub scenario: ScenarioSpec,
    /// The message workload laid over the scenario.
    pub workload: WorkloadSpec,
    /// Protocol under test, as a first-class parameterized spec.
    pub protocol: ProtocolSpec,
    /// Per-node buffer capacity override in bytes (`None` = the protocol
    /// spec's `buffer` knob if set, else the paper's 1 MB).
    pub buffer_capacity: Option<u64>,
    /// Scenario horizon override in seconds (`None` = the scenario's
    /// default — the paper's 10 000 s for generated families, the native
    /// horizon for trace replay).
    pub duration: Option<f64>,
    /// Community map source for protocols that need one (CR).
    pub communities: CommunitySource,
    /// Observers attached to every run of this cell (time-series curves,
    /// latency histograms). Pure observation: probes never change the
    /// run's [`SimStats`]. At most one probe per kind takes effect
    /// ([`RunSpec::effective_probes`]).
    pub probes: Vec<ProbeSpec>,
    /// Worker threads for the sharded contact scan on the streaming path
    /// (`None` = auto: parallel for generated scenarios at n ≥ 10⁴,
    /// single-threaded otherwise — see [`RunSpec::effective_run_threads`]).
    /// Results are bit-identical for every value, so this is *execution*
    /// configuration, deliberately excluded from [`RunSpec::cell_key`].
    pub run_threads: Option<u32>,
    /// Observer drain for the run's engine: `None` folds probes inline on
    /// the simulation thread, `Some(capacity)` drains them on a companion
    /// thread through a bounded ring ([`dtn_sim::DrainMode::Ring`]).
    /// Observer states are bit-identical either way, so — like
    /// [`RunSpec::run_threads`] — this is *execution* configuration,
    /// deliberately excluded from [`RunSpec::cell_key`].
    pub ring_drain: Option<usize>,
}

impl RunSpec {
    /// A paper bus-city cell with the paper's default parameters.
    pub fn new(series: impl Into<String>, n_nodes: u32, protocol: ProtocolSpec) -> Self {
        Self::on(series, ScenarioSpec::paper(n_nodes), protocol)
    }

    /// A cell on an arbitrary scenario family with the paper's uniform
    /// workload.
    pub fn on(series: impl Into<String>, scenario: ScenarioSpec, protocol: ProtocolSpec) -> Self {
        RunSpec {
            series: series.into(),
            scenario,
            workload: WorkloadSpec::PaperUniform,
            protocol,
            buffer_capacity: None,
            duration: None,
            communities: CommunitySource::default(),
            probes: Vec::new(),
            run_threads: None,
            ring_drain: None,
        }
    }

    /// Replaces the scenario family.
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = scenario;
        self
    }

    /// Replaces the message workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the per-node buffer capacity (bytes).
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer_capacity = Some(bytes);
        self
    }

    /// Overrides the scenario horizon (seconds). Honored by [`run_spec`]
    /// (which builds the scenario); [`run_on`] takes its scenario as given
    /// and asserts that this override, if set, matches it.
    pub fn with_duration(mut self, seconds: f64) -> Self {
        self.duration = Some(seconds);
        self
    }

    /// Chooses where the run's community map comes from. Only consulted for
    /// protocols that need one ([`ProtocolSpec::needs_communities`], i.e.
    /// CR).
    pub fn with_communities(mut self, source: CommunitySource) -> Self {
        self.communities = source;
        self
    }

    /// Attaches a probe to every run of this cell.
    pub fn with_probe(mut self, probe: ProbeSpec) -> Self {
        self.probes.push(probe);
        self
    }

    /// Replaces the full probe list.
    pub fn with_probes(mut self, probes: Vec<ProbeSpec>) -> Self {
        self.probes = probes;
        self
    }

    /// Sets the worker-thread count for the sharded contact scan on the
    /// streaming path. Purely an execution knob: results are bit-identical
    /// for every value (see `dtn_mobility::shard`), so it never enters the
    /// cell key.
    pub fn with_run_threads(mut self, threads: u32) -> Self {
        self.run_threads = Some(threads);
        self
    }

    /// Drains this run's observers on a companion thread through a bounded
    /// ring of `capacity` batches (clamped to ≥ 1) instead of folding them
    /// inline. Purely an execution knob: observer states are bit-identical
    /// either way (see [`dtn_sim::DrainMode`]), so it never enters the cell
    /// key.
    pub fn with_ring_drain(mut self, capacity: usize) -> Self {
        self.ring_drain = Some(capacity.max(1));
        self
    }

    /// The thread count [`run_stream`] actually uses: an explicit
    /// [`RunSpec::run_threads`] (clamped to ≥ 1), else automatic — parallel
    /// scan with up to 8 workers for generated scenarios of at least 10⁴
    /// declared nodes (where one step's pair scan dwarfs the merge cost),
    /// single-threaded below that and for trace replay (no scan to shard).
    pub fn effective_run_threads(&self) -> u32 {
        if let Some(t) = self.run_threads {
            return t.max(1);
        }
        let auto_eligible = self.scenario.default_duration().is_some()
            && self.scenario.declared_nodes() >= Some(10_000);
        if auto_eligible {
            std::thread::available_parallelism()
                .map(|p| p.get() as u32)
                .unwrap_or(1)
                .min(8)
        } else {
            1
        }
    }

    /// The probes actually attached to a run: the *first* of each kind. A
    /// record carries at most one time series and one latency histogram, so
    /// later duplicates are ignored rather than silently computed and
    /// dropped; the cell key encodes exactly this effective list.
    pub fn effective_probes(&self) -> Vec<ProbeSpec> {
        let mut out: Vec<ProbeSpec> = Vec::new();
        for p in &self.probes {
            if !out
                .iter()
                .any(|q| std::mem::discriminant(q) == std::mem::discriminant(p))
            {
                out.push(p.clone());
            }
        }
        out
    }

    /// The full cell identity of `(self, seed)`: the scenario key extended
    /// with the protocol's injective encoding plus the run-level qualifiers
    /// (buffer override, community source). Two differently-tuned variants
    /// of one [`ProtocolKind`](crate::ProtocolKind) — `eer:lambda=4` vs
    /// `eer:lambda=16` — always key distinctly.
    pub fn cell_key(&self, seed: u64) -> ScenarioKey {
        let mut p = self.protocol.cache_key();
        if let Some(b) = self.buffer_capacity {
            p.push_str(&format!("+buf={b:x}"));
        }
        match &self.communities {
            CommunitySource::GroundTruth => {}
            CommunitySource::Detected => p.push_str("+comm=detected"),
            // Caller-supplied maps have no canonical content encoding; the
            // tag records that the cell is not ground-truth keyed.
            CommunitySource::Fixed(_) => p.push_str("+comm=fixed"),
        }
        // Probes are part of the cell identity: a probed record carries data
        // an unprobed one does not, so the two must never share a key (the
        // underlying SimStats are identical either way). Keyed on the
        // *effective* list, sorted — attachment order neither changes what a
        // record carries nor may it split one probe set into two cells.
        let mut probe_keys: Vec<String> = self
            .effective_probes()
            .iter()
            .map(ProbeSpec::cache_key)
            .collect();
        probe_keys.sort_unstable();
        for key in probe_keys {
            p.push_str("+probe=");
            p.push_str(&key);
        }
        ScenarioKey::new(&self.scenario, &self.workload, seed, self.duration).with_protocol(p)
    }
}

/// Sweep-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Seeds per point (the paper averages 10 runs; default here is 3 for
    /// wall-clock reasons — pass `--full` to the binaries for 10). Values
    /// below 1 are clamped up to 1 at use.
    pub seeds: u32,
    /// Worker threads (defaults to available parallelism; values below 1 are
    /// clamped up to 1 at use).
    pub threads: usize,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl SweepConfig {
    /// The worker-thread count actually used: at least 1, whatever the
    /// configured value.
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }

    /// The seed count actually used: at least 1, whatever the configured
    /// value. `seeds: 0` would otherwise silently reduce every point to an
    /// all-zero [`MetricPoint`] with `runs: 0`.
    pub fn effective_seeds(&self) -> u32 {
        self.seeds.max(1)
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seeds: 3,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            verbose: true,
        }
    }
}

/// Everything one executed cell produced: the run's [`SimStats`] plus the
/// output of every probe the spec attached (`None` when the corresponding
/// [`ProbeSpec`] was not requested).
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// The run's statistics — identical with or without probes attached.
    pub stats: SimStats,
    /// Sampled delivery/overhead/occupancy curves
    /// ([`ProbeSpec::TimeSeries`]).
    pub timeseries: Option<TimeSeries>,
    /// Latency histogram with exact percentiles
    /// ([`ProbeSpec::LatencyHist`]).
    pub latency: Option<LatencyHistogram>,
    /// Path of the TRACE/1.0 artifact the run recorded
    /// ([`ProbeSpec::EventLog`]), with `{seed}` already expanded.
    pub artifact: Option<String>,
}

/// Executes one `(spec, seed)` cell, resolving the scenario through `cache`.
///
/// This is the deterministic core primitive: the same `(spec, seed)` always
/// produces the same [`SimStats`], whichever thread or binary runs it.
pub fn run_spec(cache: &ScenarioCache, spec: &RunSpec, seed: u64) -> SimStats {
    run_spec_observed(cache, spec, seed).1.stats
}

/// [`run_spec`] returning the resolved [`BuiltScenario`] alongside the full
/// [`RunOutput`], so callers that need the scenario shape (record capture,
/// report headers) do not pay a second cache lookup per cell.
pub fn run_spec_observed(
    cache: &ScenarioCache,
    spec: &RunSpec,
    seed: u64,
) -> (BuiltScenario, RunOutput) {
    let ps = cache.get_spec(&spec.scenario, &spec.workload, seed, spec.duration);
    if spec.protocol.needs_communities() && matches!(spec.communities, CommunitySource::Detected) {
        // Detection replays the whole trace; route it through the cache so
        // every cell (and any agreement metrics) share one pass per scenario.
        let fixed = RunSpec {
            communities: CommunitySource::Fixed(cache.detected_communities(&ps)),
            ..spec.clone()
        };
        let out = run_on_observed(&ps, &fixed, seed);
        return (ps, out);
    }
    let out = run_on_observed(&ps, spec, seed);
    (ps, out)
}

/// Executes `spec` against an explicitly supplied scenario — the path for
/// replayed real-world traces and pre-built inputs. `seed` feeds
/// [`SimConfig::paper`] (router-private randomness) only; the scenario is
/// taken as given — in particular [`RunSpec::duration`] cannot re-shape an
/// already-built scenario (that resolution happens in [`run_spec`]), so a
/// mismatch between the two is a caller bug.
pub fn run_on(ps: &BuiltScenario, spec: &RunSpec, seed: u64) -> SimStats {
    run_on_observed(ps, spec, seed).stats
}

/// [`run_on`] with probe outputs: attaches one observer per
/// [`RunSpec::probes`] entry, runs, and extracts each probe's result.
pub fn run_on_observed(ps: &BuiltScenario, spec: &RunSpec, seed: u64) -> RunOutput {
    assert!(
        spec.duration
            .is_none_or(|d| (d - ps.scenario.trace.duration).abs() < 1e-9),
        "RunSpec duration override ({:?}) does not match the supplied scenario's horizon ({}); \
         resolve the spec through run_spec/ScenarioCache instead",
        spec.duration,
        ps.scenario.trace.duration
    );
    // Community maps are resolved only for protocols that consume one (CR);
    // the ground-truth clone and especially online detection are not free.
    let communities = spec
        .protocol
        .needs_communities()
        .then(|| spec.communities.resolve(ps));
    let workload = spec.resolved_workload(ps.workload.as_ref().clone());
    let n_messages = workload.len();
    let sim = Simulation::new(
        &ps.scenario.trace,
        workload,
        spec.sim_config(seed),
        |id, n| spec.protocol.make_router(id, n, communities.as_ref()),
    );
    observe(
        sim,
        spec,
        seed,
        ps.n_nodes,
        ps.scenario.trace.duration,
        n_messages,
    )
}

/// The result of one streaming `(spec, seed)` cell. No [`BuiltScenario`]
/// exists on this path — the contact trace is never materialized — so the
/// resolved scenario shape rides along explicitly for record capture and
/// report headers.
#[derive(Debug)]
pub struct StreamRun {
    /// Resolved node count.
    pub n_nodes: u32,
    /// Resolved horizon in seconds.
    pub duration: f64,
    /// Number of messages in the generated workload.
    pub n_messages: usize,
    /// The run's statistics and probe outputs.
    pub output: RunOutput,
}

/// Executes one `(spec, seed)` cell through the streaming contact path: the
/// contact process is built as a demand-driven
/// [`dtn_mobility::StreamScenario`] and pulled by the engine window by
/// window, so peak memory stays bounded by the generation window instead of
/// the whole-horizon trace. For generated scenario families the resulting
/// [`SimStats`] are bit-identical to [`run_spec`]; at city scale
/// (`paper:n=100000`) this is the only feasible path.
///
/// [`CommunitySource::Detected`] is rejected: online detection replays a
/// materialized trace, which is exactly what streaming avoids. Ground-truth
/// and fixed maps work unchanged.
pub fn run_stream(spec: &RunSpec, seed: u64) -> Result<StreamRun, String> {
    let stream =
        spec.scenario
            .build_stream_threads(seed, spec.duration, spec.effective_run_threads())?;
    let communities = if spec.protocol.needs_communities() {
        Some(match &spec.communities {
            CommunitySource::GroundTruth => Arc::new(CommunityMap::new(stream.communities.clone())),
            CommunitySource::Fixed(map) => Arc::clone(map),
            CommunitySource::Detected => {
                return Err(
                    "detected communities require a materialized contact trace; \
                     use the non-streaming path or a fixed/ground-truth map"
                        .into(),
                )
            }
        })
    } else {
        None
    };
    let workload = spec.resolved_workload(spec.workload.generate(
        stream.n_nodes,
        stream.duration,
        seed,
    ));
    let n_messages = workload.len();
    let sim = Simulation::from_source(stream.source, workload, spec.sim_config(seed), |id, n| {
        spec.protocol.make_router(id, n, communities.as_ref())
    });
    Ok(StreamRun {
        n_nodes: stream.n_nodes,
        duration: stream.duration,
        n_messages,
        output: observe(sim, spec, seed, stream.n_nodes, stream.duration, n_messages),
    })
}

impl RunSpec {
    /// The paper [`SimConfig`] for `seed` with this cell's buffer override
    /// applied (an explicit [`RunSpec::buffer_capacity`] wins over the
    /// protocol spec's knob).
    fn sim_config(&self, seed: u64) -> SimConfig {
        let mut cfg = SimConfig::paper(seed);
        if let Some(bytes) = self.buffer_capacity.or(self.protocol.buffer) {
            cfg.buffer_capacity = bytes;
        }
        cfg
    }

    /// Applies the protocol spec's TTL override to a generated workload.
    fn resolved_workload(
        &self,
        mut workload: Vec<dtn_sim::MessageSpec>,
    ) -> Vec<dtn_sim::MessageSpec> {
        if let Some(ttl) = self.protocol.ttl {
            for m in &mut workload {
                m.ttl = ttl;
            }
        }
        workload
    }
}

/// Attaches `spec`'s effective probes, runs the simulation and extracts the
/// stats plus each probe's output — shared by the materialized and streaming
/// execution paths.
///
/// Only the effective probe list is attached — the first of each kind;
/// duplicates would be paid for (tick chains, occupancy scans) and then
/// dropped at extraction, since a record carries one output per kind.
///
/// The run-shape parameters (`seed`, `n_nodes`, `duration`, `n_messages`)
/// feed the TRACE/1.0 header when an [`ProbeSpec::EventLog`] probe is
/// attached; both execution paths already hold them.
///
/// # Panics
/// Panics if an event-log artifact cannot be created or written — recording
/// was explicitly requested, so a silently missing artifact would be worse
/// than a dead sweep.
fn observe(
    mut sim: Simulation,
    spec: &RunSpec,
    seed: u64,
    n_nodes: u32,
    duration: f64,
    n_messages: usize,
) -> RunOutput {
    let mut artifact = None;
    for probe in spec.effective_probes() {
        match probe {
            ProbeSpec::TimeSeries { dt } => sim.add_observer(Box::new(TimeSeriesProbe::new(dt))),
            ProbeSpec::LatencyHist => sim.add_observer(Box::new(LatencyHistogramProbe::new())),
            ProbeSpec::EventLog { .. } => {
                let path = probe
                    .artifact_path(seed)
                    .expect("eventlog probe has a path");
                let meta = TraceMeta {
                    cell_key: spec.cell_key(seed).encoded(),
                    seed,
                    horizon: duration,
                    n_nodes,
                    n_messages: n_messages as u64,
                    labels: vec![
                        ("series".to_string(), spec.series.clone()),
                        ("scenario".to_string(), spec.scenario.to_string()),
                        ("workload".to_string(), spec.workload.to_string()),
                        ("protocol".to_string(), spec.protocol.to_string()),
                    ],
                };
                let path_ref = std::path::Path::new(&path);
                crate::report::ensure_parent(path_ref)
                    .unwrap_or_else(|e| panic!("eventlog probe: {e}"));
                let writer = EventLogWriter::create(path_ref, &meta)
                    .unwrap_or_else(|e| panic!("eventlog probe: cannot create {path}: {e}"));
                sim.add_observer(Box::new(writer));
                artifact = Some(path);
            }
        }
    }
    if let Some(capacity) = spec.ring_drain {
        sim.set_drain_mode(dtn_sim::DrainMode::Ring { capacity });
    }
    let (stats, observers) = sim.run_observed();
    let mut out = RunOutput {
        stats,
        timeseries: None,
        latency: None,
        artifact,
    };
    for obs in &observers {
        if out.timeseries.is_none() {
            if let Some(p) = obs.as_any().downcast_ref::<TimeSeriesProbe>() {
                out.timeseries = Some(p.series().clone());
                continue;
            }
        }
        if out.latency.is_none() {
            if let Some(p) = obs.as_any().downcast_ref::<LatencyHistogramProbe>() {
                out.latency = Some(p.histogram().clone());
                continue;
            }
        }
        if let Some(w) = obs.as_any().downcast_ref::<EventLogWriter>() {
            // I/O errors cannot surface through the observer callbacks; the
            // writer latches the first one and this is where it gets loud.
            w.status().unwrap_or_else(|e| panic!("{e}"));
        }
    }
    out
}

/// Executes every `(spec, seed)` combination and reduces each spec's runs
/// into a [`MetricPoint`]. Returns points in the order of `specs`.
pub fn run_matrix(specs: &[RunSpec], cfg: SweepConfig) -> Vec<MetricPoint> {
    run_matrix_with(&ScenarioCache::new(), specs, cfg)
}

/// [`run_matrix`] against a caller-supplied scenario cache, so binaries that
/// also need the raw scenarios (e.g. to compare community maps) build each
/// one exactly once.
pub fn run_matrix_with(
    cache: &ScenarioCache,
    specs: &[RunSpec],
    cfg: SweepConfig,
) -> Vec<MetricPoint> {
    let records = run_matrix_records(cache, specs, cfg);
    records
        .chunks(cfg.effective_seeds() as usize)
        .map(|runs| MetricPoint::from_snapshots(&runs.iter().map(|r| r.stats).collect::<Vec<_>>()))
        .collect()
}

/// The record-producing core of the matrix runner: executes every
/// `(spec, seed)` cell over the worker pool and returns one provenance-full
/// [`RunRecord`] per cell — including measured wall-clock — flat, in
/// deterministic `(spec, seed)` order (`specs.len() × seeds` entries).
///
/// The simulation results are bit-deterministic whatever the thread count;
/// only each record's `wall_s` varies between invocations (it measures the
/// host, not the network).
pub fn run_matrix_records(
    cache: &ScenarioCache,
    specs: &[RunSpec],
    cfg: SweepConfig,
) -> Vec<RunRecord> {
    run_matrix_records_stored(cache, specs, cfg, None)
}

/// [`run_matrix_records`] backed by an optional persistent result store:
/// the job list is first partitioned into hits (served from the store,
/// marked [`RunRecord::cached`]) and misses (scheduled over the worker
/// pool exactly as the cold path would, then published to the store on
/// completion). The returned vector is bitwise identical to a cold run's
/// on every field except `wall_s`/`cached`, in the same deterministic
/// (spec-major, seed-minor) order — hits and misses merge by job index,
/// never by completion order.
///
/// Cells whose effective probe set records an event log are computed and
/// left out of the store in both directions: their side-effect artifact
/// cannot be served from a memo, and serving the record without the
/// artifact would break replay provenance.
pub fn run_matrix_records_stored(
    cache: &ScenarioCache,
    specs: &[RunSpec],
    cfg: SweepConfig,
    store: Option<&crate::store::CellStore>,
) -> Vec<RunRecord> {
    let jobs: Vec<(usize, u64)> = (0..specs.len())
        .flat_map(|i| (0..cfg.effective_seeds()).map(move |s| (i, u64::from(s) + 1)))
        .collect();
    let total = jobs.len();

    // Serve pass: cheap sequential file reads, before any worker spins up.
    let mut slots: Vec<Option<RunRecord>> = vec![None; total];
    let storable: Vec<bool> = jobs
        .iter()
        .map(|&(spec_idx, _)| {
            !specs[spec_idx]
                .effective_probes()
                .iter()
                .any(|p| matches!(p, crate::ProbeSpec::EventLog { .. }))
        })
        .collect();
    if let Some(store) = store {
        for (j, &(spec_idx, seed)) in jobs.iter().enumerate() {
            if storable[j] {
                let cell = specs[spec_idx].cell_key(seed).encoded();
                slots[j] = store.serve(&cell, seed);
            }
        }
    }
    let hits = slots.iter().filter(|s| s.is_some()).count();
    if store.is_some() && cfg.verbose {
        eprintln!(
            "  store: {hits} hit(s), {} miss(es) of {total} cells",
            total - hits
        );
    }

    // Miss pass: the cold scheduling, shrunk to the unserved job indices.
    let miss_jobs: Vec<usize> = (0..total).filter(|&j| slots[j].is_none()).collect();
    // Completions, not tickets: under interleaved workers the progress
    // counter must be monotone — `done/total` never appears to skip or
    // repeat. Hits count as already done so mixed runs still end at total.
    let done = AtomicUsize::new(hits);
    let computed = crate::fabric::run_indexed(miss_jobs.len(), cfg.effective_threads(), |m| {
        let (spec_idx, seed) = jobs[miss_jobs[m]];
        let spec = &specs[spec_idx];
        let t0 = std::time::Instant::now();
        // One resolution per cell: the observed primitive hands back
        // the scenario it already pulled through the cache.
        let (ps, out) = run_spec_observed(cache, spec, seed);
        let wall_s = t0.elapsed().as_secs_f64();
        let record = RunRecord::capture_output(spec, &ps, seed, &out, wall_s);
        let stats = &out.stats;
        if cfg.verbose {
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            // The protocol prints in its canonical grammar form,
            // so every progress line names a reproducible
            // `--protocol` argument.
            eprintln!(
                "  [{}/{}] {} [{}] {} seed={} dr={:.3} lat={:.1} gp={:.4}",
                d,
                total,
                spec.series,
                spec.protocol,
                spec.scenario,
                seed,
                stats.delivery_ratio(),
                stats.avg_latency(),
                stats.goodput()
            );
        }
        record
    });

    // Publish pass, then the deterministic merge by job index.
    for (m, record) in computed.into_iter().enumerate() {
        let j = miss_jobs[m];
        if let Some(store) = store {
            if storable[j] {
                if let Err(e) = store.publish(&record) {
                    eprintln!("warning: store publish failed: {e}");
                }
            }
        }
        slots[j] = Some(record);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job slot filled by serve or compute"))
        .collect()
}

/// Turns a recorded TRACE/1.0 artifact plus a probe set into a normal
/// [`RunRecord`] — the report-side twin of [`run_spec_observed`] that never
/// touches the engine. The reader validates the hash chain, the run's
/// [`SimStats`] are re-folded from the recorded stream and each requested
/// probe is replayed over it; because the probes are pure functions of the
/// stream (and `control_bytes` — the one counter that never travels the
/// stream — is restored from the artifact trailer), the record's stats and
/// probe sections are bitwise identical to the live run's on every field.
///
/// The record's provenance (series/scenario/workload/protocol) comes from
/// the artifact's header labels; its cell identity is rebuilt from the
/// recorded cell key with the *replayed* probe set substituted for the
/// recorded one, so a replay re-folding the live probes (minus the
/// recording probe itself) lands in the same report cell as the live run.
pub fn replay_artifact(path: &std::path::Path, probes: &[ProbeSpec]) -> Result<RunRecord, String> {
    let t0 = std::time::Instant::now();
    let reader = TraceReader::open(path)?;
    let meta = reader.meta();

    // The effective probe list, mirroring live attachment: first of each
    // kind wins.
    let mut effective: Vec<ProbeSpec> = Vec::new();
    for p in probes {
        if !effective
            .iter()
            .any(|q| std::mem::discriminant(q) == std::mem::discriminant(p))
        {
            effective.push(p.clone());
        }
    }
    let mut observers: Vec<Box<dyn SimObserver>> = Vec::new();
    for p in &effective {
        match p {
            ProbeSpec::TimeSeries { dt } => observers.push(Box::new(TimeSeriesProbe::new(*dt))),
            ProbeSpec::LatencyHist => observers.push(Box::new(LatencyHistogramProbe::new())),
            ProbeSpec::EventLog { .. } => {
                return Err(
                    "replay cannot record: the artifact already exists; drop the eventlog probe"
                        .into(),
                )
            }
        }
    }
    reader.replay(&mut observers);
    let stats = reader.replay_stats();
    let mut timeseries = None;
    let mut latency = None;
    for obs in &observers {
        if timeseries.is_none() {
            if let Some(p) = obs.as_any().downcast_ref::<TimeSeriesProbe>() {
                timeseries = Some(p.series().clone());
                continue;
            }
        }
        if latency.is_none() {
            if let Some(p) = obs.as_any().downcast_ref::<LatencyHistogramProbe>() {
                latency = Some(p.histogram().clone());
            }
        }
    }

    let cell = cell_with_probes(&meta.cell_key, &effective);
    let group = cell.replacen(&format!("|seed={}|", meta.seed), "|", 1);
    let label = |k: &str| {
        meta.labels
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    Ok(RunRecord {
        series: label("series"),
        scenario: label("scenario"),
        workload: label("workload"),
        protocol: label("protocol"),
        seed: meta.seed,
        n_nodes: meta.n_nodes,
        duration: meta.horizon,
        cell,
        group,
        stats: stats.snapshot(),
        wall_s: t0.elapsed().as_secs_f64(),
        timeseries,
        latency,
        artifact: Some(path.display().to_string()),
        cached: false,
    })
}

/// Replaces the `+probe=…` components of an encoded cell key with the
/// components for `probes` (sorted, exactly as [`RunSpec::cell_key`]
/// appends them). Probe cache keys escape `+` and `|`, so scanning each
/// component to the next separator is exact.
fn cell_with_probes(recorded: &str, probes: &[ProbeSpec]) -> String {
    let mut base = String::with_capacity(recorded.len());
    let mut rest = recorded;
    while let Some(i) = rest.find("+probe=") {
        base.push_str(&rest[..i]);
        let after = &rest[i + "+probe=".len()..];
        let end = after.find(['+', '|']).unwrap_or(after.len());
        rest = &after[end..];
    }
    base.push_str(rest);
    let mut keys: Vec<String> = probes.iter().map(ProbeSpec::cache_key).collect();
    keys.sort_unstable();
    let insert: String = keys.iter().map(|k| format!("+probe={k}")).collect();
    // Probe components live inside the protocol field, which ends at
    // `|seed=` — insert there (headers always carry a seeded cell key).
    match base.find("|seed=") {
        Some(i) => format!("{}{}{}", &base[..i], insert, &base[i..]),
        None => base + &insert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{ProtocolKind, ProtocolSpec};

    /// The matrix runner produces one averaged point per spec and is
    /// deterministic across repeats.
    #[test]
    fn matrix_runs_deterministically() {
        let specs = vec![
            RunSpec::new(
                "SprayAndWait",
                10,
                ProtocolSpec::paper(ProtocolKind::SprayAndWait).with_lambda(4),
            ),
            RunSpec::new("Epidemic", 10, ProtocolSpec::paper(ProtocolKind::Epidemic)),
        ];
        let cfg = SweepConfig {
            seeds: 2,
            threads: 2,
            verbose: false,
        };
        let a = run_matrix(&specs, cfg);
        let b = run_matrix(&specs, cfg);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.runs, 2);
            assert_eq!(x.delivery_ratio, y.delivery_ratio);
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.goodput, y.goodput);
        }
        // Epidemic floods, so it must relay at least as much as quota spray;
        // delivery can't be lower on identical traces.
        assert!(a[1].delivery_ratio >= a[0].delivery_ratio - 1e-9);
    }

    /// Zero threads is clamped, not a hang or panic.
    #[test]
    fn zero_threads_clamps_to_one() {
        let cfg = SweepConfig {
            seeds: 1,
            threads: 0,
            verbose: false,
        };
        assert_eq!(cfg.effective_threads(), 1);
        let specs = vec![RunSpec::new(
            "Direct",
            8,
            ProtocolSpec::paper(ProtocolKind::Direct),
        )];
        let points = run_matrix(&specs, cfg);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].runs, 1);
    }

    /// `seeds: 0` is clamped, not a silent all-zero result (regression: the
    /// old runner returned `MetricPoint { runs: 0, .. }` for every spec).
    #[test]
    fn zero_seeds_clamps_to_one() {
        let cfg = SweepConfig {
            seeds: 0,
            threads: 1,
            verbose: false,
        };
        assert_eq!(cfg.effective_seeds(), 1);
        let specs = vec![
            RunSpec::new("Direct", 8, ProtocolSpec::paper(ProtocolKind::Direct))
                .with_duration(500.0),
        ];
        let points = run_matrix(&specs, cfg);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].runs, 1, "seeds: 0 must still run one seed");
    }

    /// Duplicate probes of one kind collapse to the first: the cell key and
    /// the attached observers always agree, and the run's data matches what
    /// the key advertises.
    #[test]
    fn duplicate_probes_collapse_to_first_of_each_kind() {
        use crate::probes::ProbeSpec;
        let base = RunSpec::new("Direct", 8, ProtocolSpec::paper(ProtocolKind::Direct))
            .with_duration(400.0);
        let once = base
            .clone()
            .with_probe(ProbeSpec::TimeSeries { dt: 50.0 })
            .with_probe(ProbeSpec::LatencyHist);
        let duplicated = base
            .with_probe(ProbeSpec::TimeSeries { dt: 50.0 })
            .with_probe(ProbeSpec::LatencyHist)
            .with_probe(ProbeSpec::TimeSeries { dt: 999.0 })
            .with_probe(ProbeSpec::LatencyHist);
        assert_eq!(duplicated.effective_probes(), once.effective_probes());
        assert_eq!(duplicated.cell_key(1), once.cell_key(1));
        // Attachment order does not split a probe set into two cells.
        let reordered = RunSpec::new("Direct", 8, ProtocolSpec::paper(ProtocolKind::Direct))
            .with_duration(400.0)
            .with_probe(ProbeSpec::LatencyHist)
            .with_probe(ProbeSpec::TimeSeries { dt: 50.0 });
        assert_eq!(reordered.cell_key(1), once.cell_key(1));

        let cache = ScenarioCache::new();
        let (_, a) = run_spec_observed(&cache, &once, 1);
        let (_, b) = run_spec_observed(&cache, &duplicated, 1);
        assert_eq!(a.stats.snapshot(), b.stats.snapshot());
        assert_eq!(a.timeseries, b.timeseries, "first-of-kind cadence wins");
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.timeseries.unwrap().dt, 50.0);
    }

    /// The thread count is execution configuration, not cell identity: runs
    /// are bit-identical at every value, so specs differing only in
    /// `run_threads` must share a cache key.
    #[test]
    fn run_threads_is_not_a_cell_key_component() {
        let base = RunSpec::on(
            "Epidemic",
            ScenarioSpec::city(24, 4),
            ProtocolSpec::paper(ProtocolKind::Epidemic),
        )
        .with_duration(400.0);
        let threaded = base.clone().with_run_threads(8);
        assert_eq!(threaded.cell_key(1), base.cell_key(1));
        assert_eq!(threaded.effective_run_threads(), 8);
        // The observer drain mode is execution configuration too: a ring
        // drain of any capacity shares the inline run's cache key.
        let drained = base.clone().with_ring_drain(4);
        assert_eq!(drained.cell_key(1), base.cell_key(1));
        assert_eq!(drained.ring_drain, Some(4));
        assert_eq!(base.clone().with_ring_drain(0).ring_drain, Some(1));
        assert_eq!(base.clone().with_run_threads(0).effective_run_threads(), 1);
        // Auto mode: small scenarios stay single-threaded; n ≥ 10⁴ generated
        // scenarios parallelize; trace replay never does.
        assert_eq!(base.effective_run_threads(), 1);
        let big = RunSpec::new("Epidemic", 2, ProtocolSpec::paper(ProtocolKind::Epidemic))
            .with_scenario(ScenarioSpec::parse("paper:n=10000", 2).unwrap());
        assert!(big.effective_run_threads() >= 1);
        let replay = base.with_scenario(ScenarioSpec::trace_path("x.trace"));
        assert_eq!(replay.effective_run_threads(), 1);
    }

    /// A replayed cell lands exactly where a live run with the same probe
    /// set (minus the recording probe) would: the recorded cell key's probe
    /// components are substituted, everything else is preserved.
    #[test]
    fn replayed_cell_substitutes_probe_components() {
        let base =
            || RunSpec::new("EER", 8, ProtocolSpec::paper(ProtocolKind::Eer)).with_duration(400.0);
        let recorded = base()
            .with_probe(ProbeSpec::EventLog {
                path: "r/a.trace".into(),
            })
            .with_probe(ProbeSpec::TimeSeries { dt: 50.0 })
            .with_probe(ProbeSpec::LatencyHist)
            .cell_key(3)
            .encoded();
        let replayed = cell_with_probes(
            &recorded,
            &[ProbeSpec::TimeSeries { dt: 50.0 }, ProbeSpec::LatencyHist],
        );
        let live_without_recorder = base()
            .with_probe(ProbeSpec::TimeSeries { dt: 50.0 })
            .with_probe(ProbeSpec::LatencyHist)
            .cell_key(3)
            .encoded();
        assert_eq!(replayed, live_without_recorder);
        // Substituting the empty set recovers the unprobed cell.
        assert_eq!(
            cell_with_probes(&recorded, &[]),
            base().cell_key(3).encoded()
        );
    }

    /// A duration override flows through the cache into the built scenario.
    #[test]
    fn duration_override_reaches_scenario() {
        let cache = ScenarioCache::new();
        let spec = RunSpec::new("Direct", 8, ProtocolSpec::paper(ProtocolKind::Direct))
            .with_duration(500.0);
        let _ = run_spec(&cache, &spec, 1);
        let ps = cache.get_with_duration(8, 1, Some(500.0));
        assert_eq!(ps.scenario.trace.duration, 500.0);
        assert_eq!(
            cache.len(),
            1,
            "run_spec and get_with_duration share the entry"
        );
    }
}
