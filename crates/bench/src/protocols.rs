//! Protocol registry: maps names to router factories.

use ce_core::{CommunityMap, Cr, CrConfig, Eer, EerConfig};
use dtn_routing::{
    DirectDelivery, Ebr, EbrConfig, Epidemic, FirstContact, MaxProp, Prophet, SprayAndFocus,
    SprayAndWait,
};
use dtn_sim::{NodeId, Router};
use std::sync::Arc;

/// Which protocol family to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Paper's EER (quota λ).
    Eer,
    /// Paper's CR (quota λ).
    Cr,
    /// EBR baseline (quota λ).
    Ebr,
    /// MaxProp baseline.
    MaxProp,
    /// Spray-and-Wait baseline (quota λ).
    SprayAndWait,
    /// Spray-and-Focus baseline (quota λ).
    SprayAndFocus,
    /// Epidemic flooding.
    Epidemic,
    /// PRoPHET.
    Prophet,
    /// Direct delivery.
    Direct,
    /// First contact.
    FirstContact,
}

impl ProtocolKind {
    /// Every protocol the registry knows, paper protocols first.
    pub const ALL: [ProtocolKind; 10] = [
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::Ebr,
        ProtocolKind::MaxProp,
        ProtocolKind::SprayAndWait,
        ProtocolKind::SprayAndFocus,
        ProtocolKind::Epidemic,
        ProtocolKind::Prophet,
        ProtocolKind::Direct,
        ProtocolKind::FirstContact,
    ];

    /// Comma-separated list of every valid protocol name, for CLI error
    /// messages.
    pub fn names() -> String {
        Self::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// All protocols compared in the paper's Figure 2, in its legend order.
    pub const FIG2: [ProtocolKind; 6] = [
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::Ebr,
        ProtocolKind::MaxProp,
        ProtocolKind::SprayAndWait,
        ProtocolKind::SprayAndFocus,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Eer => "EER",
            ProtocolKind::Cr => "CR",
            ProtocolKind::Ebr => "EBR",
            ProtocolKind::MaxProp => "MaxProp",
            ProtocolKind::SprayAndWait => "SprayAndWait",
            ProtocolKind::SprayAndFocus => "SprayAndFocus",
            ProtocolKind::Epidemic => "Epidemic",
            ProtocolKind::Prophet => "PRoPHET",
            ProtocolKind::Direct => "Direct",
            ProtocolKind::FirstContact => "FirstContact",
        }
    }

    /// Parses a (case-insensitive) protocol name.
    pub fn parse(s: &str) -> Option<Self> {
        let k = match s.to_ascii_lowercase().as_str() {
            "eer" => ProtocolKind::Eer,
            "cr" => ProtocolKind::Cr,
            "ebr" => ProtocolKind::Ebr,
            "maxprop" => ProtocolKind::MaxProp,
            "spraywait" | "sprayandwait" | "snw" => ProtocolKind::SprayAndWait,
            "sprayfocus" | "sprayandfocus" | "snf" => ProtocolKind::SprayAndFocus,
            "epidemic" => ProtocolKind::Epidemic,
            "prophet" => ProtocolKind::Prophet,
            "direct" => ProtocolKind::Direct,
            "firstcontact" | "fc" => ProtocolKind::FirstContact,
            _ => return None,
        };
        Some(k)
    }
}

/// A fully specified protocol: kind + quota + (optional) parameter
/// overrides.
#[derive(Clone)]
pub struct Protocol {
    /// Protocol family.
    pub kind: ProtocolKind,
    /// Quota λ for quota protocols (ignored by others).
    pub lambda: u32,
    /// α override for EER/CR (`None` = paper default 0.28).
    pub alpha: Option<f64>,
    /// Sliding-window override for EER/CR.
    pub window: Option<usize>,
    /// Community ground truth (required by CR).
    pub communities: Option<Arc<CommunityMap>>,
    /// Full EER config override (wins over the individual fields).
    pub eer_config: Option<EerConfig>,
}

impl Protocol {
    /// A protocol with the paper's λ = 10 and default parameters.
    pub fn new(kind: ProtocolKind) -> Self {
        Protocol {
            kind,
            lambda: 10,
            alpha: None,
            window: None,
            communities: None,
            eer_config: None,
        }
    }

    /// Overrides the entire EER configuration (EER only).
    pub fn with_eer_config(mut self, cfg: EerConfig) -> Self {
        self.eer_config = Some(cfg);
        self
    }

    /// Sets the quota λ.
    pub fn with_lambda(mut self, lambda: u32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the α horizon parameter (EER/CR only).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Sets the history-window length (EER/CR only).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Supplies the community map (CR only; ignored otherwise).
    pub fn with_communities(mut self, map: Arc<CommunityMap>) -> Self {
        self.communities = Some(map);
        self
    }

    /// Builds the router for node `id` in a network of `n` nodes.
    ///
    /// # Panics
    /// Panics if CR is requested without a community map.
    pub fn make_router(&self, id: NodeId, n: u32) -> Box<dyn Router> {
        match self.kind {
            ProtocolKind::Eer => {
                if let Some(cfg) = self.eer_config {
                    return Box::new(Eer::with_config(id, n, cfg));
                }
                let mut cfg = EerConfig {
                    lambda: self.lambda,
                    ..EerConfig::default()
                };
                if let Some(a) = self.alpha {
                    cfg.alpha = a;
                }
                if let Some(w) = self.window {
                    cfg.window = w;
                }
                Box::new(Eer::with_config(id, n, cfg))
            }
            ProtocolKind::Cr => {
                let map = self
                    .communities
                    .clone()
                    .expect("CR needs a community map (Protocol::with_communities)");
                let mut cfg = CrConfig {
                    lambda: self.lambda,
                    ..CrConfig::default()
                };
                if let Some(a) = self.alpha {
                    cfg.alpha = a;
                }
                if let Some(w) = self.window {
                    cfg.window = w;
                }
                Box::new(Cr::with_config(id, n, map, cfg))
            }
            ProtocolKind::Ebr => Box::new(Ebr::with_config(EbrConfig {
                lambda: self.lambda,
                ..EbrConfig::default()
            })),
            ProtocolKind::MaxProp => Box::new(MaxProp::new(id, n)),
            ProtocolKind::SprayAndWait => Box::new(SprayAndWait::new(self.lambda)),
            ProtocolKind::SprayAndFocus => Box::new(SprayAndFocus::new(self.lambda, n)),
            ProtocolKind::Epidemic => Box::new(Epidemic::new()),
            ProtocolKind::Prophet => Box::new(Prophet::new(id, n)),
            ProtocolKind::Direct => Box::new(DirectDelivery::new()),
            ProtocolKind::FirstContact => Box::new(FirstContact::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ProtocolKind::parse("nope"), None);
        let names = ProtocolKind::names();
        assert!(names.contains("EER") && names.contains("FirstContact"));
    }

    #[test]
    fn factories_build_routers() {
        let map = Arc::new(CommunityMap::new(vec![0, 0, 1, 1]));
        for kind in ProtocolKind::FIG2 {
            let p = Protocol::new(kind).with_communities(Arc::clone(&map));
            let r = p.make_router(NodeId(0), 4);
            assert!(!r.label().is_empty());
            assert_eq!(
                r.initial_copies(&dummy_msg()),
                if matches!(kind, ProtocolKind::MaxProp) {
                    1
                } else {
                    10
                }
            );
        }
    }

    fn dummy_msg() -> dtn_sim::Message {
        dtn_sim::Message {
            id: dtn_sim::MessageId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1,
            created: dtn_sim::SimTime::ZERO,
            ttl: 10.0,
        }
    }

    #[test]
    #[should_panic]
    fn cr_requires_communities() {
        Protocol::new(ProtocolKind::Cr).make_router(NodeId(0), 4);
    }
}
