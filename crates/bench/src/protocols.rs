//! The protocol registry: first-class, parameterized protocol
//! specifications.
//!
//! A [`ProtocolSpec`] is a *value* describing exactly how traffic is routed —
//! the protocol family plus every tunable the family exposes (quota λ,
//! EER/CR estimator knobs, PRoPHET's P₀/β/γ, spray utility parameters, …) —
//! mirroring the scenario subsystem's `ScenarioSpec`/`WorkloadSpec` design.
//! Paper defaults come from [`ProtocolSpec::paper`]; everything else is data,
//! so a sweep matrix can put differently-tuned variants of one protocol side
//! by side as series (`eer:lambda=4` vs `eer:lambda=16` vs
//! `prophet:beta=0.25`).
//!
//! # CLI grammar
//!
//! Specs parse from the `--protocol` grammar
//!
//! ```text
//! <name>[:<key>=<value>[,<key>=<value>...]]
//! ```
//!
//! where `<name>` is a (case-insensitive) protocol name from
//! [`ProtocolKind::parse`] and each `<key>` is one of the family's tunables.
//! Unset keys keep their paper defaults; values are validated at parse time
//! (range checks, unknown keys list the valid ones). Examples:
//!
//! ```text
//! eer                          the paper's EER (λ = 10, α = 0.28)
//! eer:lambda=8,ttl=3600        EER with 8 copies and a 1 h message TTL
//! prophet:beta=0.25,gamma=0.99 tuned PRoPHET
//! spraywait:lambda=4,mode=source   source-spray Spray-and-Wait
//! ```
//!
//! Per-family keys (beyond the common `ttl` seconds / `buffer` bytes
//! overrides, accepted everywhere):
//!
//! | family | keys |
//! |---|---|
//! | `eer` | `lambda`, `alpha`, `window`, `hysteresis` (s), `refresh` (s), `emd` (`t2`\|`mean`), `policy` (`oldest`\|`lrv`), `adaptive` (`MIN..MAX`) |
//! | `cr` | `lambda`, `alpha`, `window`, `hysteresis` (s), `physt` (probability), `refresh` (s), `policy` (`oldest`\|`lrv`) |
//! | `ebr` | `lambda`, `alpha` (EWMA weight), `window` (s) |
//! | `maxprop` | `hops` (protection threshold), `refresh` (s) |
//! | `spraywait` | `lambda`, `mode` (`binary`\|`source`) |
//! | `sprayfocus` | `lambda`, `threshold` (s), `penalty` (s) |
//! | `prophet` | `pinit`, `beta`, `gamma`, `unit` (s) |
//! | `epidemic`, `direct`, `firstcontact` | common keys only |
//!
//! [`ProtocolSpec`]'s `Display` prints the canonical form of this grammar
//! (name plus the non-default parameters), so `parse ∘ Display` is the
//! identity and every printed spec is a reproducible `--protocol` argument.
//! [`ProtocolSpec::cache_key`] is a fully injective encoding (all parameters,
//! floats by bit pattern) used to key sweep cells.
//!
//! ```
//! use dtn_bench::{ProtocolKind, ProtocolSpec};
//!
//! let spec = ProtocolSpec::parse("eer:lambda=8,ttl=3600").unwrap();
//! assert_eq!(spec.kind(), ProtocolKind::Eer);
//! assert_eq!(spec.ttl, Some(3600.0));
//!
//! // Display is canonical: parse ∘ Display is the identity, so any printed
//! // spec is a reproducible `--protocol` argument.
//! assert_eq!(ProtocolSpec::parse(&spec.to_string()).unwrap(), spec);
//!
//! // Validation happens at parse time: unknown keys list the valid ones.
//! let err = ProtocolSpec::parse("eer:bogus=1").unwrap_err();
//! assert!(err.contains("lambda"));
//!
//! // Tuned variants of one family never share a sweep-cell key.
//! let tuned = ProtocolSpec::parse("eer:lambda=16").unwrap();
//! assert_ne!(spec.cache_key(), tuned.cache_key());
//! ```

use ce_core::{BufferPolicy, CommunityMap, Cr, CrConfig, Eer, EerConfig, EmdMode};
use dtn_routing::{
    DirectDelivery, Ebr, EbrConfig, Epidemic, FirstContact, MaxProp, MaxPropConfig, Prophet,
    ProphetConfig, SprayAndFocus, SprayAndWait, SprayFocusConfig,
};
use dtn_sim::{NodeId, Router};
use std::fmt;
use std::sync::Arc;

/// Which protocol family to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Paper's EER (quota λ).
    Eer,
    /// Paper's CR (quota λ).
    Cr,
    /// EBR baseline (quota λ).
    Ebr,
    /// MaxProp baseline.
    MaxProp,
    /// Spray-and-Wait baseline (quota λ).
    SprayAndWait,
    /// Spray-and-Focus baseline (quota λ).
    SprayAndFocus,
    /// Epidemic flooding.
    Epidemic,
    /// PRoPHET.
    Prophet,
    /// Direct delivery.
    Direct,
    /// First contact.
    FirstContact,
}

impl ProtocolKind {
    /// Every protocol the registry knows, paper protocols first.
    pub const ALL: [ProtocolKind; 10] = [
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::Ebr,
        ProtocolKind::MaxProp,
        ProtocolKind::SprayAndWait,
        ProtocolKind::SprayAndFocus,
        ProtocolKind::Epidemic,
        ProtocolKind::Prophet,
        ProtocolKind::Direct,
        ProtocolKind::FirstContact,
    ];

    /// Comma-separated list of every valid protocol name, for CLI error
    /// messages.
    pub fn names() -> String {
        Self::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// All protocols compared in the paper's Figure 2, in its legend order.
    pub const FIG2: [ProtocolKind; 6] = [
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::Ebr,
        ProtocolKind::MaxProp,
        ProtocolKind::SprayAndWait,
        ProtocolKind::SprayAndFocus,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Eer => "EER",
            ProtocolKind::Cr => "CR",
            ProtocolKind::Ebr => "EBR",
            ProtocolKind::MaxProp => "MaxProp",
            ProtocolKind::SprayAndWait => "SprayAndWait",
            ProtocolKind::SprayAndFocus => "SprayAndFocus",
            ProtocolKind::Epidemic => "Epidemic",
            ProtocolKind::Prophet => "PRoPHET",
            ProtocolKind::Direct => "Direct",
            ProtocolKind::FirstContact => "FirstContact",
        }
    }

    /// Canonical lowercase grammar name ([`ProtocolSpec::parse`] /
    /// `Display`).
    pub fn key(self) -> &'static str {
        match self {
            ProtocolKind::Eer => "eer",
            ProtocolKind::Cr => "cr",
            ProtocolKind::Ebr => "ebr",
            ProtocolKind::MaxProp => "maxprop",
            ProtocolKind::SprayAndWait => "spraywait",
            ProtocolKind::SprayAndFocus => "sprayfocus",
            ProtocolKind::Epidemic => "epidemic",
            ProtocolKind::Prophet => "prophet",
            ProtocolKind::Direct => "direct",
            ProtocolKind::FirstContact => "firstcontact",
        }
    }

    /// The parameter keys this family accepts (excluding the common
    /// `ttl`/`buffer` overrides), for error messages.
    pub fn param_keys(self) -> &'static [&'static str] {
        match self {
            ProtocolKind::Eer => &[
                "lambda",
                "alpha",
                "window",
                "hysteresis",
                "refresh",
                "emd",
                "policy",
                "adaptive",
            ],
            ProtocolKind::Cr => &[
                "lambda",
                "alpha",
                "window",
                "hysteresis",
                "physt",
                "refresh",
                "policy",
            ],
            ProtocolKind::Ebr => &["lambda", "alpha", "window"],
            ProtocolKind::MaxProp => &["hops", "refresh"],
            ProtocolKind::SprayAndWait => &["lambda", "mode"],
            ProtocolKind::SprayAndFocus => &["lambda", "threshold", "penalty"],
            ProtocolKind::Prophet => &["pinit", "beta", "gamma", "unit"],
            ProtocolKind::Epidemic | ProtocolKind::Direct | ProtocolKind::FirstContact => &[],
        }
    }

    /// Parses a (case-insensitive) protocol name.
    pub fn parse(s: &str) -> Option<Self> {
        let k = match s.to_ascii_lowercase().as_str() {
            "eer" => ProtocolKind::Eer,
            "cr" => ProtocolKind::Cr,
            "ebr" => ProtocolKind::Ebr,
            "maxprop" => ProtocolKind::MaxProp,
            "spraywait" | "sprayandwait" | "snw" => ProtocolKind::SprayAndWait,
            "sprayfocus" | "sprayandfocus" | "snf" => ProtocolKind::SprayAndFocus,
            "epidemic" => ProtocolKind::Epidemic,
            "prophet" => ProtocolKind::Prophet,
            "direct" => ProtocolKind::Direct,
            "firstcontact" | "fc" => ProtocolKind::FirstContact,
            _ => return None,
        };
        Some(k)
    }
}

/// Per-family protocol parameters: the family's full config struct (or
/// inline fields where the router has no config struct), carried by value.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolParams {
    /// EER parameters.
    Eer(EerConfig),
    /// CR parameters.
    Cr(CrConfig),
    /// EBR parameters.
    Ebr(EbrConfig),
    /// MaxProp parameters.
    MaxProp(MaxPropConfig),
    /// Spray-and-Wait: quota and spray mode (`binary` halves the copies per
    /// encounter; `!binary` is source spray, one copy at a time).
    SprayAndWait {
        /// Quota λ.
        lambda: u32,
        /// Binary (true) vs source (false) spray.
        binary: bool,
    },
    /// Spray-and-Focus parameters.
    SprayAndFocus(SprayFocusConfig),
    /// Epidemic flooding (no parameters).
    Epidemic,
    /// PRoPHET parameters.
    Prophet(ProphetConfig),
    /// Direct delivery (no parameters).
    Direct,
    /// First contact (no parameters).
    FirstContact,
}

impl ProtocolParams {
    /// The paper-default parameters for `kind` (λ = 10 for every quota
    /// protocol, each family's published constants otherwise).
    pub fn paper(kind: ProtocolKind) -> Self {
        match kind {
            ProtocolKind::Eer => ProtocolParams::Eer(EerConfig::default()),
            ProtocolKind::Cr => ProtocolParams::Cr(CrConfig::default()),
            ProtocolKind::Ebr => ProtocolParams::Ebr(EbrConfig::default()),
            ProtocolKind::MaxProp => ProtocolParams::MaxProp(MaxPropConfig::default()),
            ProtocolKind::SprayAndWait => ProtocolParams::SprayAndWait {
                lambda: 10,
                binary: true,
            },
            ProtocolKind::SprayAndFocus => {
                ProtocolParams::SprayAndFocus(SprayFocusConfig::default())
            }
            ProtocolKind::Epidemic => ProtocolParams::Epidemic,
            ProtocolKind::Prophet => ProtocolParams::Prophet(ProphetConfig::default()),
            ProtocolKind::Direct => ProtocolParams::Direct,
            ProtocolKind::FirstContact => ProtocolParams::FirstContact,
        }
    }

    /// The family these parameters belong to.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            ProtocolParams::Eer(_) => ProtocolKind::Eer,
            ProtocolParams::Cr(_) => ProtocolKind::Cr,
            ProtocolParams::Ebr(_) => ProtocolKind::Ebr,
            ProtocolParams::MaxProp(_) => ProtocolKind::MaxProp,
            ProtocolParams::SprayAndWait { .. } => ProtocolKind::SprayAndWait,
            ProtocolParams::SprayAndFocus(_) => ProtocolKind::SprayAndFocus,
            ProtocolParams::Epidemic => ProtocolKind::Epidemic,
            ProtocolParams::Prophet(_) => ProtocolKind::Prophet,
            ProtocolParams::Direct => ProtocolKind::Direct,
            ProtocolParams::FirstContact => ProtocolKind::FirstContact,
        }
    }
}

/// A fully specified protocol: family parameters plus the common per-run
/// knobs (message-TTL and buffer-capacity overrides). Serializable data —
/// see the [module docs](self) for the CLI grammar.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolSpec {
    /// Family parameters.
    pub params: ProtocolParams,
    /// Message-TTL override in seconds (`None` = the workload's TTL, the
    /// paper's 20 min). Applied by the runner to every message of the run.
    pub ttl: Option<f64>,
    /// Per-node buffer-capacity override in bytes (`None` = the paper's
    /// 1 MB). An explicit `RunSpec::with_buffer` wins over this.
    pub buffer: Option<u64>,
}

impl From<ProtocolParams> for ProtocolSpec {
    fn from(params: ProtocolParams) -> Self {
        ProtocolSpec {
            params,
            ttl: None,
            buffer: None,
        }
    }
}

impl ProtocolSpec {
    /// The paper's configuration of `kind`: λ = 10 and each family's
    /// published default parameters, no TTL/buffer overrides.
    pub fn paper(kind: ProtocolKind) -> Self {
        ProtocolParams::paper(kind).into()
    }

    /// An EER spec with explicit parameters.
    pub fn eer(cfg: EerConfig) -> Self {
        ProtocolParams::Eer(cfg).into()
    }

    /// A CR spec with explicit parameters.
    pub fn cr(cfg: CrConfig) -> Self {
        ProtocolParams::Cr(cfg).into()
    }

    /// An EBR spec with explicit parameters.
    pub fn ebr(cfg: EbrConfig) -> Self {
        ProtocolParams::Ebr(cfg).into()
    }

    /// A PRoPHET spec with explicit parameters.
    pub fn prophet(cfg: ProphetConfig) -> Self {
        ProtocolParams::Prophet(cfg).into()
    }

    /// The protocol family.
    pub fn kind(&self) -> ProtocolKind {
        self.params.kind()
    }

    /// Sets the quota λ. Applies to the quota families (EER, CR, EBR,
    /// Spray-and-Wait/-Focus); a no-op for the others, mirroring how those
    /// routers ignore quotas.
    pub fn with_lambda(mut self, lambda: u32) -> Self {
        match &mut self.params {
            ProtocolParams::Eer(c) => c.lambda = lambda,
            ProtocolParams::Cr(c) => c.lambda = lambda,
            ProtocolParams::Ebr(c) => c.lambda = lambda,
            ProtocolParams::SprayAndWait { lambda: l, .. } => *l = lambda,
            ProtocolParams::SprayAndFocus(c) => c.lambda = lambda,
            _ => {}
        }
        self
    }

    /// Sets the α horizon parameter (EER/CR only; a no-op for the others).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        match &mut self.params {
            ProtocolParams::Eer(c) => c.alpha = alpha,
            ProtocolParams::Cr(c) => c.alpha = alpha,
            _ => {}
        }
        self
    }

    /// Sets the history-window length (EER/CR only; a no-op for the others).
    pub fn with_window(mut self, window: usize) -> Self {
        match &mut self.params {
            ProtocolParams::Eer(c) => c.window = window,
            ProtocolParams::Cr(c) => c.window = window,
            _ => {}
        }
        self
    }

    /// Overrides every message's TTL (seconds) for runs of this spec.
    pub fn with_ttl(mut self, seconds: f64) -> Self {
        self.ttl = Some(seconds);
        self
    }

    /// Overrides the per-node buffer capacity (bytes) for runs of this spec.
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer = Some(bytes);
        self
    }

    /// Whether [`ProtocolSpec::make_router`] requires a community map (CR).
    pub fn needs_communities(&self) -> bool {
        matches!(self.params, ProtocolParams::Cr(_))
    }

    /// Parses the CLI grammar `name[:key=value[,key=value...]]` with
    /// parse-time validation. See the [module docs](self) for the grammar and
    /// the per-family keys.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, rest) = match s.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (s, None),
        };
        let kind = ProtocolKind::parse(name).ok_or_else(|| {
            format!(
                "unknown protocol `{name}` (valid: {})",
                ProtocolKind::names()
            )
        })?;
        let mut spec = ProtocolSpec::paper(kind);
        if let Some(rest) = rest {
            if rest.is_empty() {
                return Err(format!(
                    "empty parameter list in `{s}` (expected {name}:key=value,...)"
                ));
            }
            for kv in rest.split(',') {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("bad parameter `{kv}` in `{s}` (expected key=value)"))?;
                spec.set(key.trim(), value.trim())
                    .map_err(|e| format!("{}: {e}", kind.key()))?;
            }
        }
        Ok(spec)
    }

    /// Sets one grammar parameter, validating key and value.
    fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "ttl" => {
                self.ttl = Some(parse_pos_f64("ttl", value)?);
                return Ok(());
            }
            "buffer" => {
                let b: u64 = value.parse().map_err(|e| format!("buffer: {e}"))?;
                if b == 0 {
                    return Err("buffer: must be at least 1 byte".into());
                }
                self.buffer = Some(b);
                return Ok(());
            }
            _ => {}
        }
        let unknown = |kind: ProtocolKind| {
            let keys = kind.param_keys();
            let valid = if keys.is_empty() {
                "only the common keys ttl, buffer".to_string()
            } else {
                format!("{}, ttl, buffer", keys.join(", "))
            };
            Err(format!("unknown parameter `{key}` (valid: {valid})"))
        };
        match &mut self.params {
            ProtocolParams::Eer(c) => match key {
                "lambda" => c.lambda = parse_lambda(value)?,
                "alpha" => c.alpha = parse_pos_f64("alpha", value)?,
                "window" => c.window = parse_window(value)?,
                "hysteresis" => c.forward_hysteresis = parse_nonneg_f64("hysteresis", value)?,
                "refresh" => c.refresh = parse_nonneg_f64("refresh", value)?,
                "emd" => {
                    c.emd_mode = match value {
                        "t2" | "theorem2" => EmdMode::Theorem2,
                        "mean" => EmdMode::MeanInterval,
                        _ => return Err(format!("emd: unknown mode `{value}` (valid: t2, mean)")),
                    }
                }
                "policy" => c.buffer_policy = parse_policy(value)?,
                "adaptive" => {
                    let (lo, hi) = value
                        .split_once("..")
                        .ok_or_else(|| format!("adaptive: expected MIN..MAX, got `{value}`"))?;
                    let lo: u32 = lo.parse().map_err(|e| format!("adaptive min: {e}"))?;
                    let hi: u32 = hi.parse().map_err(|e| format!("adaptive max: {e}"))?;
                    if lo < 1 || hi < lo {
                        return Err(format!("adaptive: need 1 <= MIN <= MAX, got {lo}..{hi}"));
                    }
                    c.adaptive_lambda = Some((lo, hi));
                }
                _ => return unknown(ProtocolKind::Eer),
            },
            ProtocolParams::Cr(c) => match key {
                "lambda" => c.lambda = parse_lambda(value)?,
                "alpha" => c.alpha = parse_pos_f64("alpha", value)?,
                "window" => c.window = parse_window(value)?,
                "hysteresis" => c.forward_hysteresis = parse_nonneg_f64("hysteresis", value)?,
                "physt" => c.probability_hysteresis = parse_nonneg_f64("physt", value)?,
                "refresh" => c.refresh = parse_nonneg_f64("refresh", value)?,
                "policy" => c.buffer_policy = parse_policy(value)?,
                _ => return unknown(ProtocolKind::Cr),
            },
            ProtocolParams::Ebr(c) => match key {
                "lambda" => c.lambda = parse_lambda(value)?,
                "alpha" => {
                    let a = parse_nonneg_f64("alpha", value)?;
                    if a > 1.0 {
                        return Err(format!("alpha: EWMA weight must be in [0, 1], got {a}"));
                    }
                    c.alpha = a;
                }
                "window" => c.window = parse_pos_f64("window", value)?,
                _ => return unknown(ProtocolKind::Ebr),
            },
            ProtocolParams::MaxProp(c) => match key {
                "hops" => c.hop_threshold = value.parse().map_err(|e| format!("hops: {e}"))?,
                "refresh" => c.cost_refresh = parse_nonneg_f64("refresh", value)?,
                _ => return unknown(ProtocolKind::MaxProp),
            },
            ProtocolParams::SprayAndWait { lambda, binary } => match key {
                "lambda" => *lambda = parse_lambda(value)?,
                "mode" => {
                    *binary = match value {
                        "binary" => true,
                        "source" => false,
                        _ => {
                            return Err(format!(
                                "mode: unknown spray mode `{value}` (valid: binary, source)"
                            ))
                        }
                    }
                }
                _ => return unknown(ProtocolKind::SprayAndWait),
            },
            ProtocolParams::SprayAndFocus(c) => match key {
                "lambda" => c.lambda = parse_lambda(value)?,
                "threshold" => c.utility_threshold = parse_nonneg_f64("threshold", value)?,
                "penalty" => c.transitivity_penalty = parse_nonneg_f64("penalty", value)?,
                _ => return unknown(ProtocolKind::SprayAndFocus),
            },
            ProtocolParams::Prophet(c) => match key {
                "pinit" => {
                    let v = parse_pos_f64("pinit", value)?;
                    if v > 1.0 {
                        return Err(format!("pinit: probability must be in (0, 1], got {v}"));
                    }
                    c.p_init = v;
                }
                "beta" => {
                    let v = parse_nonneg_f64("beta", value)?;
                    if v > 1.0 {
                        return Err(format!("beta: must be in [0, 1], got {v}"));
                    }
                    c.beta = v;
                }
                "gamma" => {
                    let v = parse_pos_f64("gamma", value)?;
                    if v > 1.0 {
                        return Err(format!("gamma: aging base must be in (0, 1], got {v}"));
                    }
                    c.gamma = v;
                }
                "unit" => c.time_unit = parse_pos_f64("unit", value)?,
                _ => return unknown(ProtocolKind::Prophet),
            },
            ProtocolParams::Epidemic => return unknown(ProtocolKind::Epidemic),
            ProtocolParams::Direct => return unknown(ProtocolKind::Direct),
            ProtocolParams::FirstContact => return unknown(ProtocolKind::FirstContact),
        }
        Ok(())
    }

    /// The non-default parameters in canonical grammar order (`key=value`
    /// strings) — the payload of `Display`.
    fn non_default_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        match &self.params {
            ProtocolParams::Eer(c) => {
                let d = EerConfig::default();
                push_ne(&mut out, "lambda", c.lambda, d.lambda);
                push_ne(&mut out, "alpha", c.alpha, d.alpha);
                push_ne(&mut out, "window", c.window, d.window);
                push_ne(
                    &mut out,
                    "hysteresis",
                    c.forward_hysteresis,
                    d.forward_hysteresis,
                );
                push_ne(&mut out, "refresh", c.refresh, d.refresh);
                if c.emd_mode != d.emd_mode {
                    out.push("emd=mean".into());
                }
                if c.buffer_policy != d.buffer_policy {
                    out.push("policy=lrv".into());
                }
                if let Some((lo, hi)) = c.adaptive_lambda {
                    out.push(format!("adaptive={lo}..{hi}"));
                }
            }
            ProtocolParams::Cr(c) => {
                let d = CrConfig::default();
                push_ne(&mut out, "lambda", c.lambda, d.lambda);
                push_ne(&mut out, "alpha", c.alpha, d.alpha);
                push_ne(&mut out, "window", c.window, d.window);
                push_ne(
                    &mut out,
                    "hysteresis",
                    c.forward_hysteresis,
                    d.forward_hysteresis,
                );
                push_ne(
                    &mut out,
                    "physt",
                    c.probability_hysteresis,
                    d.probability_hysteresis,
                );
                push_ne(&mut out, "refresh", c.refresh, d.refresh);
                if c.buffer_policy != d.buffer_policy {
                    out.push("policy=lrv".into());
                }
            }
            ProtocolParams::Ebr(c) => {
                let d = EbrConfig::default();
                push_ne(&mut out, "lambda", c.lambda, d.lambda);
                push_ne(&mut out, "alpha", c.alpha, d.alpha);
                push_ne(&mut out, "window", c.window, d.window);
            }
            ProtocolParams::MaxProp(c) => {
                let d = MaxPropConfig::default();
                push_ne(&mut out, "hops", c.hop_threshold, d.hop_threshold);
                push_ne(&mut out, "refresh", c.cost_refresh, d.cost_refresh);
            }
            ProtocolParams::SprayAndWait { lambda, binary } => {
                // No config struct to take defaults from — derive them from
                // the paper params so the literal lives in exactly one place.
                let ProtocolParams::SprayAndWait {
                    lambda: dl,
                    binary: db,
                } = ProtocolParams::paper(ProtocolKind::SprayAndWait)
                else {
                    unreachable!("paper(SprayAndWait) returns SprayAndWait params")
                };
                push_ne(&mut out, "lambda", *lambda, dl);
                if *binary != db {
                    out.push(
                        if *binary {
                            "mode=binary"
                        } else {
                            "mode=source"
                        }
                        .into(),
                    );
                }
            }
            ProtocolParams::SprayAndFocus(c) => {
                let d = SprayFocusConfig::default();
                push_ne(&mut out, "lambda", c.lambda, d.lambda);
                push_ne(
                    &mut out,
                    "threshold",
                    c.utility_threshold,
                    d.utility_threshold,
                );
                push_ne(
                    &mut out,
                    "penalty",
                    c.transitivity_penalty,
                    d.transitivity_penalty,
                );
            }
            ProtocolParams::Prophet(c) => {
                let d = ProphetConfig::default();
                push_ne(&mut out, "pinit", c.p_init, d.p_init);
                push_ne(&mut out, "beta", c.beta, d.beta);
                push_ne(&mut out, "gamma", c.gamma, d.gamma);
                push_ne(&mut out, "unit", c.time_unit, d.time_unit);
            }
            ProtocolParams::Epidemic | ProtocolParams::Direct | ProtocolParams::FirstContact => {}
        }
        if let Some(t) = self.ttl {
            out.push(format!("ttl={t}"));
        }
        if let Some(b) = self.buffer {
            out.push(format!("buffer={b}"));
        }
        out
    }

    /// Canonical, injective encoding of the spec for cache/series keys:
    /// every parameter is encoded (floats by bit pattern), so
    /// differently-tuned variants of one protocol never collide.
    pub fn cache_key(&self) -> String {
        let mut k = String::from(self.kind().key());
        let mut pu = |name: &str, v: u64| {
            k.push_str(&format!(":{name}={v:x}"));
        };
        match &self.params {
            ProtocolParams::Eer(c) => {
                pu("l", u64::from(c.lambda));
                pu("a", c.alpha.to_bits());
                pu("w", c.window as u64);
                pu("h", c.forward_hysteresis.to_bits());
                pu("r", c.refresh.to_bits());
                pu("e", u64::from(c.emd_mode == EmdMode::MeanInterval));
                pu(
                    "p",
                    u64::from(c.buffer_policy == BufferPolicy::LeastRemainingValue),
                );
                match c.adaptive_lambda {
                    None => k.push_str(":ad=none"),
                    Some((lo, hi)) => k.push_str(&format!(":ad={lo:x}..{hi:x}")),
                }
            }
            ProtocolParams::Cr(c) => {
                pu("l", u64::from(c.lambda));
                pu("a", c.alpha.to_bits());
                pu("w", c.window as u64);
                pu("h", c.forward_hysteresis.to_bits());
                pu("ph", c.probability_hysteresis.to_bits());
                pu("r", c.refresh.to_bits());
                pu(
                    "p",
                    u64::from(c.buffer_policy == BufferPolicy::LeastRemainingValue),
                );
            }
            ProtocolParams::Ebr(c) => {
                pu("l", u64::from(c.lambda));
                pu("a", c.alpha.to_bits());
                pu("w", c.window.to_bits());
            }
            ProtocolParams::MaxProp(c) => {
                pu("ht", u64::from(c.hop_threshold));
                pu("r", c.cost_refresh.to_bits());
            }
            ProtocolParams::SprayAndWait { lambda, binary } => {
                pu("l", u64::from(*lambda));
                pu("b", u64::from(*binary));
            }
            ProtocolParams::SprayAndFocus(c) => {
                pu("l", u64::from(c.lambda));
                pu("t", c.utility_threshold.to_bits());
                pu("p", c.transitivity_penalty.to_bits());
            }
            ProtocolParams::Prophet(c) => {
                pu("pi", c.p_init.to_bits());
                pu("be", c.beta.to_bits());
                pu("ga", c.gamma.to_bits());
                pu("u", c.time_unit.to_bits());
            }
            ProtocolParams::Epidemic | ProtocolParams::Direct | ProtocolParams::FirstContact => {}
        }
        match self.ttl {
            None => k.push_str(":ttl=none"),
            Some(t) => k.push_str(&format!(":ttl={:x}", t.to_bits())),
        }
        match self.buffer {
            None => k.push_str(":buf=none"),
            Some(b) => k.push_str(&format!(":buf={b:x}")),
        }
        k
    }

    /// Builds the router for node `id` in a network of `n` nodes.
    /// `communities` supplies the community map for protocols that need one
    /// ([`ProtocolSpec::needs_communities`]); the runner resolves it from the
    /// run's [`CommunitySource`](crate::CommunitySource).
    ///
    /// # Panics
    /// Panics if CR is requested without a community map.
    pub fn make_router(
        &self,
        id: NodeId,
        n: u32,
        communities: Option<&Arc<CommunityMap>>,
    ) -> Box<dyn Router> {
        match &self.params {
            ProtocolParams::Eer(cfg) => Box::new(Eer::with_config(id, n, *cfg)),
            ProtocolParams::Cr(cfg) => {
                let map = communities
                    .cloned()
                    .expect("CR needs a community map (RunSpec::with_communities / make_router)");
                Box::new(Cr::with_config(id, n, map, *cfg))
            }
            ProtocolParams::Ebr(cfg) => Box::new(Ebr::with_config(*cfg)),
            ProtocolParams::MaxProp(cfg) => Box::new(MaxProp::with_config(id, n, *cfg)),
            ProtocolParams::SprayAndWait { lambda, binary } => Box::new(if *binary {
                SprayAndWait::new(*lambda)
            } else {
                SprayAndWait::source_spray(*lambda)
            }),
            ProtocolParams::SprayAndFocus(cfg) => Box::new(SprayAndFocus::with_config(*cfg, n)),
            ProtocolParams::Epidemic => Box::new(Epidemic::new()),
            ProtocolParams::Prophet(cfg) => Box::new(Prophet::with_config(id, n, *cfg)),
            ProtocolParams::Direct => Box::new(DirectDelivery::new()),
            ProtocolParams::FirstContact => Box::new(FirstContact::new()),
        }
    }
}

impl fmt::Display for ProtocolSpec {
    /// Canonical grammar form: the family name plus every non-default
    /// parameter, so the printed spec parses back to an equal value
    /// (`ProtocolSpec::parse ∘ Display` = identity).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind().key())?;
        let params = self.non_default_params();
        if !params.is_empty() {
            write!(f, ":{}", params.join(","))?;
        }
        Ok(())
    }
}

/// Pushes `key=value` when the value differs from the family default.
fn push_ne<T: PartialEq + fmt::Display>(out: &mut Vec<String>, key: &str, v: T, default: T) {
    if v != default {
        out.push(format!("{key}={v}"));
    }
}

fn parse_lambda(value: &str) -> Result<u32, String> {
    let l: u32 = value.parse().map_err(|e| format!("lambda: {e}"))?;
    if l == 0 {
        return Err("lambda: quota must be at least 1".into());
    }
    Ok(l)
}

fn parse_window(value: &str) -> Result<usize, String> {
    let w: usize = value.parse().map_err(|e| format!("window: {e}"))?;
    if w == 0 {
        return Err("window: history window must be at least 1".into());
    }
    Ok(w)
}

fn parse_pos_f64(key: &str, value: &str) -> Result<f64, String> {
    let v: f64 = value.parse().map_err(|e| format!("{key}: {e}"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!(
            "{key}: must be a positive finite number, got {value}"
        ));
    }
    Ok(v)
}

fn parse_nonneg_f64(key: &str, value: &str) -> Result<f64, String> {
    let v: f64 = value.parse().map_err(|e| format!("{key}: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "{key}: must be a non-negative finite number, got {value}"
        ));
    }
    Ok(v)
}

fn parse_policy(value: &str) -> Result<BufferPolicy, String> {
    match value {
        "oldest" => Ok(BufferPolicy::OldestReceived),
        "lrv" => Ok(BufferPolicy::LeastRemainingValue),
        _ => Err(format!(
            "policy: unknown buffer policy `{value}` (valid: oldest, lrv)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.name()), Some(kind));
            assert_eq!(ProtocolKind::parse(kind.key()), Some(kind));
        }
        assert_eq!(ProtocolKind::parse("nope"), None);
        let names = ProtocolKind::names();
        assert!(names.contains("EER") && names.contains("FirstContact"));
    }

    #[test]
    fn factories_build_routers() {
        let map = Arc::new(CommunityMap::new(vec![0, 0, 1, 1]));
        for kind in ProtocolKind::FIG2 {
            let p = ProtocolSpec::paper(kind);
            let r = p.make_router(NodeId(0), 4, Some(&map));
            assert!(!r.label().is_empty());
            assert_eq!(
                r.initial_copies(&dummy_msg()),
                if matches!(kind, ProtocolKind::MaxProp) {
                    1
                } else {
                    10
                }
            );
        }
    }

    fn dummy_msg() -> dtn_sim::Message {
        dtn_sim::Message {
            id: dtn_sim::MessageId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1,
            created: dtn_sim::SimTime::ZERO,
            ttl: 10.0,
        }
    }

    #[test]
    #[should_panic]
    fn cr_requires_communities() {
        ProtocolSpec::paper(ProtocolKind::Cr).make_router(NodeId(0), 4, None);
    }

    #[test]
    fn grammar_parses_and_validates() {
        let s = ProtocolSpec::parse("eer:lambda=8,ttl=3600").unwrap();
        assert_eq!(s.kind(), ProtocolKind::Eer);
        assert_eq!(s.ttl, Some(3600.0));
        match &s.params {
            ProtocolParams::Eer(c) => assert_eq!(c.lambda, 8),
            other => panic!("wrong params: {other:?}"),
        }
        // Case-insensitive names, aliases.
        assert_eq!(
            ProtocolSpec::parse("EER:lambda=8").unwrap(),
            ProtocolSpec::parse("eer:lambda=8").unwrap()
        );
        assert_eq!(
            ProtocolSpec::parse("snw:mode=source").unwrap().params,
            ProtocolParams::SprayAndWait {
                lambda: 10,
                binary: false
            }
        );
        // Validation failures are parse-time errors, not worker panics.
        assert!(ProtocolSpec::parse("bogus").is_err());
        assert!(ProtocolSpec::parse("eer:").is_err());
        assert!(ProtocolSpec::parse("eer:lambda").is_err());
        assert!(ProtocolSpec::parse("eer:lambda=0").is_err());
        assert!(ProtocolSpec::parse("eer:alpha=-1").is_err());
        assert!(ProtocolSpec::parse("eer:frobnicate=3").is_err());
        assert!(ProtocolSpec::parse("epidemic:lambda=3").is_err());
        assert!(ProtocolSpec::parse("prophet:beta=1.5").is_err());
        assert!(ProtocolSpec::parse("ebr:alpha=2").is_err());
        assert!(ProtocolSpec::parse("eer:adaptive=16..4").is_err());
        assert!(ProtocolSpec::parse("eer:ttl=0").is_err());
        assert!(ProtocolSpec::parse("eer:buffer=0").is_err());
        // Unknown-name and unknown-key errors name the valid alternatives.
        let e = ProtocolSpec::parse("nope").unwrap_err();
        assert!(e.contains("EER") && e.contains("FirstContact"), "{e}");
        let e = ProtocolSpec::parse("eer:zz=1").unwrap_err();
        assert!(e.contains("lambda") && e.contains("adaptive"), "{e}");
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for kind in ProtocolKind::ALL {
            let paper = ProtocolSpec::paper(kind);
            assert_eq!(format!("{paper}"), kind.key(), "paper spec is bare name");
            assert_eq!(ProtocolSpec::parse(&format!("{paper}")).unwrap(), paper);
        }
        let tuned = ProtocolSpec::parse("eer:lambda=8,emd=mean,ttl=3600").unwrap();
        let shown = format!("{tuned}");
        assert_eq!(shown, "eer:lambda=8,emd=mean,ttl=3600");
        assert_eq!(ProtocolSpec::parse(&shown).unwrap(), tuned);
    }

    #[test]
    fn cache_keys_separate_tuned_variants() {
        let a = ProtocolSpec::parse("eer:lambda=4").unwrap().cache_key();
        let b = ProtocolSpec::parse("eer:lambda=16").unwrap().cache_key();
        let c = ProtocolSpec::paper(ProtocolKind::Eer).cache_key();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Every kind's paper key is distinct from every other kind's.
        let keys: Vec<String> = ProtocolKind::ALL
            .iter()
            .map(|&k| ProtocolSpec::paper(k).cache_key())
            .collect();
        for (i, x) in keys.iter().enumerate() {
            for y in &keys[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }
}
