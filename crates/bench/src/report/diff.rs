//! Drift classification between two runs of the experiment pipeline.
//!
//! `dtndiff` answers "did revision X change the physics?" with a machine
//! checkable verdict. Two artifacts are compared — either TRACE/1.0 event
//! logs ([`diff_traces`]) or report/bench JSON documents
//! ([`diff_reports`]) — and every divergence is classified:
//!
//! * **seed-level** ([`DriftClass::Seed`]) — the same cells exist on both
//!   sides but their recorded physics differ: stats, probe sections, or
//!   the event stream itself.
//! * **cell-level** ([`DriftClass::Cell`]) — cells were added or removed;
//!   the two sides ran different experiments.
//! * **schema-level** ([`DriftClass::Schema`]) — the documents are not the
//!   same format or version; content comparison may be meaningless.
//!
//! Non-semantic fields are excluded from the verdict: wall-clock
//! (`wall_s`, `wall_s_mean`, `wall_s_max`, `wall_s_total`), the recorded
//! artifact path, and the human series label are reported as informational
//! lines only. Cells are matched on their *semantic* identity — the cell
//! key with any `+probe=eventlog:…` component removed, since where a run's
//! event log was written does not change what the run computed.

use super::json::Json;
use super::record::{ReportSpec, RunRecord, BENCH_SCHEMA, REPORT_SCHEMA};
use dtn_sim::TraceReader;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// How bad a divergence is; ordered by severity of what it implies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftClass {
    /// Same cells, different physics (stats / probe data / event stream).
    Seed,
    /// Cells added or removed: the two sides ran different experiments.
    Cell,
    /// Format or version mismatch: content comparison may be meaningless.
    Schema,
}

impl DriftClass {
    /// Stable lowercase label (`seed` / `cell` / `schema`).
    pub fn label(self) -> &'static str {
        match self {
            DriftClass::Seed => "seed",
            DriftClass::Cell => "cell",
            DriftClass::Schema => "schema",
        }
    }

    /// The `dtndiff` exit code this class maps to (1 / 2 / 3).
    pub fn exit_code(self) -> i32 {
        match self {
            DriftClass::Seed => 1,
            DriftClass::Cell => 2,
            DriftClass::Schema => 3,
        }
    }
}

/// One classified divergence.
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// The drift class.
    pub class: DriftClass,
    /// Human-readable description of what diverged.
    pub detail: String,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drift[{}]: {}", self.class.label(), self.detail)
    }
}

/// The result of a diff: classified drifts plus informational notes
/// (non-semantic differences that never gate).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffOutcome {
    /// Classified divergences; empty means the two sides agree.
    pub drifts: Vec<Drift>,
    /// Non-gating observations (wall-clock deltas, label changes).
    pub info: Vec<String>,
}

impl DiffOutcome {
    /// `true` when no drift of any class was found.
    pub fn is_clean(&self) -> bool {
        self.drifts.is_empty()
    }

    /// The process exit code: `0` when clean, otherwise the exit code of
    /// the most severe drift class present.
    pub fn exit_code(&self) -> i32 {
        self.drifts
            .iter()
            .map(|d| d.class)
            .max()
            .map_or(0, DriftClass::exit_code)
    }

    fn drift(&mut self, class: DriftClass, detail: impl Into<String>) {
        self.drifts.push(Drift {
            class,
            detail: detail.into(),
        });
    }
}

/// The semantic cell identity used for matching: `cell` with every
/// `+probe=eventlog:…` component removed. Recording an event log is pure
/// observation — the artifact path must not split one cell into two.
/// (Other probe components stay: attached probes schedule `Tick` samples,
/// so they do describe the recorded data.)
pub fn semantic_cell(cell: &str) -> String {
    const MARK: &str = "+probe=eventlog:";
    let mut out = String::with_capacity(cell.len());
    let mut rest = cell;
    while let Some(i) = rest.find(MARK) {
        out.push_str(&rest[..i]);
        // Probe cache keys escape `+` and `|`, so the component ends at
        // the next separator.
        let after = &rest[i + 1..]; // keep scanning from just past '+'
        let end = after.find(['+', '|']).map_or(rest.len(), |e| i + 1 + e);
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

/// Diffs two TRACE/1.0 artifacts. Unreadable files are `Err` (I/O);
/// wrong-format or wrong-version files classify as schema drift; invalid
/// (corrupt) artifacts are `Err` naming the failure — a damaged file is
/// not a different run.
pub fn diff_traces(path_a: &Path, path_b: &Path) -> Result<DiffOutcome, String> {
    let mut out = DiffOutcome::default();
    let mut open = |path: &Path, side: &str| -> Result<Option<TraceReader>, String> {
        match TraceReader::open(path) {
            Ok(r) => Ok(Some(r)),
            Err(e)
                if e.contains("not a TRACE artifact")
                    || e.contains("unsupported trace version") =>
            {
                out.drifts.push(Drift {
                    class: DriftClass::Schema,
                    detail: format!("{side}: {e}"),
                });
                Ok(None)
            }
            Err(e) => Err(e),
        }
    };
    let a = open(path_a, "left")?;
    let b = open(path_b, "right")?;
    let (Some(a), Some(b)) = (a, b) else {
        return Ok(out);
    };

    let (ma, mb) = (a.meta(), b.meta());
    let (ca, cb) = (semantic_cell(&ma.cell_key), semantic_cell(&mb.cell_key));
    if ca != cb {
        out.drift(
            DriftClass::Cell,
            format!("artifacts record different cells: `{ca}` vs `{cb}`"),
        );
        return Ok(out);
    }
    if ma.n_nodes != mb.n_nodes || ma.n_messages != mb.n_messages {
        out.drift(
            DriftClass::Seed,
            format!(
                "run shape differs for cell `{ca}`: {} nodes / {} messages vs {} / {}",
                ma.n_nodes, ma.n_messages, mb.n_nodes, mb.n_messages
            ),
        );
    }
    // The fingerprint folds the header, so it can differ purely because
    // the two recorders wrote to different paths (the eventlog probe's
    // path lands in the full cell key). It is only a valid fast-path
    // equality check when the full cell keys are byte-identical;
    // otherwise compare the streams themselves.
    let same_header = ma.cell_key == mb.cell_key;
    if (same_header && a.fingerprint() != b.fingerprint()) || a.events() != b.events() {
        // Name the first diverging sequence number.
        let ea = a.events();
        let eb = b.events();
        let detail = match ea.iter().zip(eb).position(|(x, y)| x != y) {
            Some(seq) => format!(
                "streams diverge at seq {seq}: {:?} vs {:?}",
                ea[seq], eb[seq]
            ),
            None if ea.len() != eb.len() => format!(
                "record counts differ: {} vs {} (streams agree up to seq {})",
                ea.len(),
                eb.len(),
                ea.len().min(eb.len())
            ),
            None => format!(
                "content fingerprints differ ({:#018x} vs {:#018x})",
                a.fingerprint(),
                b.fingerprint()
            ),
        };
        out.drift(DriftClass::Seed, format!("cell `{ca}`: {detail}"));
    } else if !same_header {
        out.info.push(format!(
            "fingerprints differ only via the recording path in the header \
             ({:#018x} vs {:#018x}); streams are identical",
            a.fingerprint(),
            b.fingerprint()
        ));
    }
    if a.control_bytes() != b.control_bytes() {
        out.drift(
            DriftClass::Seed,
            format!(
                "control traffic differs for cell `{ca}`: {} vs {} bytes",
                a.control_bytes(),
                b.control_bytes()
            ),
        );
    }
    if a.end_time() != b.end_time() && out.is_clean() {
        out.drift(
            DriftClass::Seed,
            format!(
                "end times differ: {} vs {} s",
                a.end_time().as_secs(),
                b.end_time().as_secs()
            ),
        );
    }
    Ok(out)
}

/// Diffs two report or bench-trajectory JSON documents (already read into
/// strings). Malformed JSON, unknown schemas, schema-name or version
/// mismatches classify as schema drift; added/removed cells as cell drift;
/// content divergence on matched cells as seed drift. Wall-clock fields
/// and artifact paths never gate.
pub fn diff_reports(a: &str, b: &str) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let parsed = [("left", a), ("right", b)].map(|(side, text)| match Json::parse(text) {
        Ok(j) => Some(j),
        Err(e) => {
            out.drifts.push(Drift {
                class: DriftClass::Schema,
                detail: format!("{side}: not valid JSON: {e}"),
            });
            None
        }
    });
    let [Some(ja), Some(jb)] = parsed else {
        return out;
    };
    let schema = |j: &Json| j.get("schema").and_then(Json::as_str).map(str::to_string);
    let (sa, sb) = (schema(&ja), schema(&jb));
    match (&sa, &sb) {
        (Some(x), Some(y)) if x == y => {}
        _ => {
            out.drift(
                DriftClass::Schema,
                format!("schema names differ or are missing: {sa:?} vs {sb:?}"),
            );
            return out;
        }
    }
    let version = |j: &Json| j.get("version").and_then(Json::as_u64);
    let (va, vb) = (version(&ja), version(&jb));
    if va != vb {
        out.drift(
            DriftClass::Schema,
            format!("schema versions differ: {va:?} vs {vb:?}"),
        );
    }
    match sa.as_deref() {
        Some(s) if s == REPORT_SCHEMA => diff_report_docs(a, b, &mut out),
        Some(s) if s == BENCH_SCHEMA => diff_bench_docs(&ja, &jb, &mut out),
        Some(other) => out.drift(DriftClass::Schema, format!("unknown schema `{other}`")),
        None => unreachable!("schema presence checked above"),
    }
    out
}

/// Full-report comparison: records matched on semantic cell, stats and
/// probe sections gate, wall-clock is informational.
fn diff_report_docs(a: &str, b: &str, out: &mut DiffOutcome) {
    let mut parse = |side: &str, text: &str| match ReportSpec::from_json_str(text) {
        Ok(r) => Some(r),
        Err(e) => {
            out.drifts.push(Drift {
                class: DriftClass::Schema,
                detail: format!("{side}: {e}"),
            });
            None
        }
    };
    let ra = parse("left", a);
    let rb = parse("right", b);
    let (Some(ra), Some(rb)) = (ra, rb) else {
        return;
    };
    let index = |r: &ReportSpec| -> BTreeMap<String, RunRecord> {
        r.records
            .iter()
            .map(|rec| (semantic_cell(&rec.cell), rec.clone()))
            .collect()
    };
    let (map_a, map_b) = (index(&ra), index(&rb));
    for cell in map_a.keys() {
        if !map_b.contains_key(cell) {
            out.drift(DriftClass::Cell, format!("cell only in left: `{cell}`"));
        }
    }
    for cell in map_b.keys() {
        if !map_a.contains_key(cell) {
            out.drift(DriftClass::Cell, format!("cell only in right: `{cell}`"));
        }
    }
    for (cell, rec_a) in &map_a {
        let Some(rec_b) = map_b.get(cell) else {
            continue;
        };
        for field in record_divergences(rec_a, rec_b) {
            out.drift(DriftClass::Seed, format!("cell `{cell}`: {field}"));
        }
        if rec_a.series != rec_b.series {
            out.info.push(format!(
                "cell `{cell}`: series label changed: `{}` vs `{}`",
                rec_a.series, rec_b.series
            ));
        }
        if rec_a.cached != rec_b.cached {
            out.info.push(format!(
                "cell `{cell}`: served-from-store flag differs (informational)"
            ));
        }
    }
    let wall = |r: &ReportSpec| r.records.iter().map(|x| x.wall_s).sum::<f64>();
    out.info.push(format!(
        "wall clock (informational): {:.3} s vs {:.3} s",
        wall(&ra),
        wall(&rb)
    ));
}

/// The semantic field-by-field comparison of two records for one cell.
/// `wall_s`, `artifact` and the series label are deliberately absent.
fn record_divergences(a: &RunRecord, b: &RunRecord) -> Vec<String> {
    let mut out = Vec::new();
    if a.seed != b.seed {
        out.push(format!("seed {} vs {}", a.seed, b.seed));
    }
    if a.n_nodes != b.n_nodes {
        out.push(format!("n_nodes {} vs {}", a.n_nodes, b.n_nodes));
    }
    if a.duration.to_bits() != b.duration.to_bits() {
        out.push(format!("duration {} vs {} s", a.duration, b.duration));
    }
    for (name, va, vb) in [
        ("scenario", &a.scenario, &b.scenario),
        ("workload", &a.workload, &b.workload),
        ("protocol", &a.protocol, &b.protocol),
    ] {
        if va != vb {
            out.push(format!("{name} `{va}` vs `{vb}`"));
        }
    }
    if a.stats != b.stats {
        let sa = &a.stats;
        let sb = &b.stats;
        let mut fields = Vec::new();
        for (name, x, y) in [
            ("created", sa.created, sb.created),
            ("delivered", sa.delivered, sb.delivered),
            (
                "duplicate_deliveries",
                sa.duplicate_deliveries,
                sb.duplicate_deliveries,
            ),
            ("relayed", sa.relayed, sb.relayed),
            ("aborted", sa.aborted, sb.aborted),
            ("drops_buffer", sa.drops_buffer, sb.drops_buffer),
            ("drops_ttl", sa.drops_ttl, sb.drops_ttl),
            ("drops_protocol", sa.drops_protocol, sb.drops_protocol),
            ("refused", sa.refused, sb.refused),
            ("control_bytes", sa.control_bytes, sb.control_bytes),
            ("hops_sum", sa.hops_sum, sb.hops_sum),
        ] {
            if x != y {
                fields.push(format!("{name} {x} vs {y}"));
            }
        }
        if sa.latency_sum.to_bits() != sb.latency_sum.to_bits() {
            fields.push(format!(
                "latency_sum {} vs {}",
                sa.latency_sum, sb.latency_sum
            ));
        }
        out.push(format!("stats differ: {}", fields.join(", ")));
    }
    if a.timeseries != b.timeseries {
        out.push("timeseries sections differ".to_string());
    }
    if a.latency != b.latency {
        out.push("latency_hist sections differ".to_string());
    }
    out
}

/// Bench-trajectory comparison: cells matched on the `cell` group key;
/// `delivery_ratio`, `latency_s`, `runs` and `n_nodes` gate, every
/// `wall_s*` field is informational.
fn diff_bench_docs(a: &Json, b: &Json, out: &mut DiffOutcome) {
    let cells = |j: &Json, side: &str, out: &mut DiffOutcome| -> Option<BTreeMap<String, Json>> {
        match j.get("cells").and_then(Json::as_arr) {
            Some(arr) => Some(
                arr.iter()
                    .filter_map(|c| {
                        c.get("cell")
                            .and_then(Json::as_str)
                            .map(|k| (semantic_cell(k), c.clone()))
                    })
                    .collect(),
            ),
            None => {
                out.drift(
                    DriftClass::Schema,
                    format!("{side}: bench document has no `cells` array"),
                );
                None
            }
        }
    };
    let map_a = cells(a, "left", out);
    let map_b = cells(b, "right", out);
    let (Some(map_a), Some(map_b)) = (map_a, map_b) else {
        return;
    };
    for cell in map_a.keys() {
        if !map_b.contains_key(cell) {
            out.drift(DriftClass::Cell, format!("cell only in left: `{cell}`"));
        }
    }
    for cell in map_b.keys() {
        if !map_a.contains_key(cell) {
            out.drift(DriftClass::Cell, format!("cell only in right: `{cell}`"));
        }
    }
    for (cell, ca) in &map_a {
        let Some(cb) = map_b.get(cell) else { continue };
        for field in ["runs", "n_nodes"] {
            let (x, y) = (
                ca.get(field).and_then(Json::as_u64),
                cb.get(field).and_then(Json::as_u64),
            );
            if x != y {
                out.drift(
                    DriftClass::Seed,
                    format!("cell `{cell}`: {field} {x:?} vs {y:?}"),
                );
            }
        }
        for field in ["delivery_ratio", "latency_s"] {
            let (x, y) = (
                ca.get(field).and_then(Json::as_f64),
                cb.get(field).and_then(Json::as_f64),
            );
            let same = match (x, y) {
                (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                (None, None) => true,
                _ => false,
            };
            if !same {
                out.drift(
                    DriftClass::Seed,
                    format!("cell `{cell}`: {field} {x:?} vs {y:?}"),
                );
            }
        }
        for field in ["wall_s_mean", "wall_s_max"] {
            let (x, y) = (
                ca.get(field).and_then(Json::as_f64),
                cb.get(field).and_then(Json::as_f64),
            );
            if let (Some(x), Some(y)) = (x, y) {
                if x != y {
                    out.info.push(format!(
                        "cell `{cell}`: {field} (informational): {x:.3} vs {y:.3}"
                    ));
                }
            }
        }
    }
    let (wa, wb) = (
        a.get("wall_s_total").and_then(Json::as_f64),
        b.get("wall_s_total").and_then(Json::as_f64),
    );
    if let (Some(x), Some(y)) = (wa, wb) {
        if x != y {
            out.info
                .push(format!("wall_s_total (informational): {x:.3} vs {y:.3}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::StatsSnapshot;

    /// A two-cell report with pinned values, the probed seed carrying an
    /// eventlog component so semantic matching is exercised end to end.
    fn synthetic_report_for_diff() -> ReportSpec {
        let mut report = ReportSpec::new("diff test");
        let probe = "+probe=eventlog:path=results%2frun.trace";
        for seed in [1u64, 2] {
            report.push(RunRecord {
                series: "EER".into(),
                scenario: "paper(n=20)".into(),
                workload: "paper".into(),
                protocol: "eer:lambda=4".into(),
                seed,
                n_nodes: 20,
                duration: 500.0,
                cell: format!(
                    "scenario=paper:n=20|workload=paper|protocol=eer:lambda=4{probe}|seed={seed}|dur=407f400000000000"
                ),
                group: format!(
                    "scenario=paper:n=20|workload=paper|protocol=eer:lambda=4{probe}|dur=407f400000000000"
                ),
                stats: StatsSnapshot {
                    created: 40,
                    delivered: 20 + seed,
                    duplicate_deliveries: 1,
                    relayed: 60,
                    aborted: 2,
                    drops_buffer: 3,
                    drops_ttl: 1,
                    drops_protocol: 0,
                    refused: 4,
                    control_bytes: 4096,
                    latency_sum: 1234.5,
                    hops_sum: 44,
                },
                wall_s: 0.25,
                timeseries: None,
                latency: None,
                artifact: None,
                cached: false,
            });
        }
        report
    }

    #[test]
    fn semantic_cell_strips_only_eventlog_components() {
        let cell = "scenario=paper:n=8|workload=paper|protocol=eer\
                    +probe=eventlog:path=r%2fa.trace+probe=latency|seed=3|dur=00";
        assert_eq!(
            semantic_cell(cell),
            "scenario=paper:n=8|workload=paper|protocol=eer+probe=latency|seed=3|dur=00"
        );
        // No eventlog component: identity.
        let plain = "scenario=paper|protocol=eer+probe=latency|seed=1|dur=0";
        assert_eq!(semantic_cell(plain), plain);
        // Component at end of the protocol field.
        let tail = "scenario=paper|protocol=eer+probe=eventlog:path=x|seed=1|dur=0";
        assert_eq!(
            semantic_cell(tail),
            "scenario=paper|protocol=eer|seed=1|dur=0"
        );
    }

    #[test]
    fn self_diff_of_a_report_is_clean() {
        let text = synthetic_report_for_diff().to_json_string();
        let out = diff_reports(&text, &text);
        assert!(out.is_clean(), "{:?}", out.drifts);
        assert_eq!(out.exit_code(), 0);
    }

    #[test]
    fn wall_clock_is_informational_not_drift() {
        let a = synthetic_report_for_diff();
        let mut b = a.clone();
        for r in &mut b.records {
            r.wall_s *= 100.0;
            r.cached = true;
        }
        let out = diff_reports(&a.to_json_string(), &b.to_json_string());
        assert!(out.is_clean(), "{:?}", out.drifts);
        assert!(!out.info.is_empty());
        assert!(
            out.info.iter().any(|l| l.contains("served-from-store")),
            "{:?}",
            out.info
        );
    }

    #[test]
    fn stat_change_is_seed_level() {
        let a = synthetic_report_for_diff();
        let mut b = a.clone();
        b.records[0].stats.delivered += 1;
        let out = diff_reports(&a.to_json_string(), &b.to_json_string());
        assert_eq!(out.exit_code(), 1);
        assert!(out.drifts.iter().all(|d| d.class == DriftClass::Seed));
        assert!(
            out.drifts[0].detail.contains("delivered"),
            "{:?}",
            out.drifts
        );
    }

    #[test]
    fn missing_cell_is_cell_level() {
        let a = synthetic_report_for_diff();
        let mut b = a.clone();
        b.records.pop();
        let out = diff_reports(&a.to_json_string(), &b.to_json_string());
        assert_eq!(out.exit_code(), 2);
    }

    #[test]
    fn schema_mismatch_is_schema_level_and_wins() {
        let a = synthetic_report_for_diff();
        let bench = a.to_bench_json_string("x");
        let out = diff_reports(&a.to_json_string(), &bench);
        assert_eq!(out.exit_code(), 3);
        let out = diff_reports("not json", &a.to_json_string());
        assert_eq!(out.exit_code(), 3);
    }

    #[test]
    fn bench_self_diff_clean_and_stat_gated() {
        let a = synthetic_report_for_diff();
        let text = a.to_bench_json_string("shootout");
        assert!(diff_reports(&text, &text).is_clean());
        let mut b = a.clone();
        b.records[0].stats.delivered += 7;
        let out = diff_reports(&text, &b.to_bench_json_string("shootout"));
        assert_eq!(out.exit_code(), 1, "{:?}", out.drifts);
    }
}
