//! First-class experiment reports.
//!
//! Everything a binary prints or writes flows through one audited pipeline:
//!
//! ```text
//! RunSpec ──run──▶ SimStats ──capture──▶ RunRecord ──ReportSpec::cells──▶ CellSummary
//!                                            │                                │
//!                                            ▼                                ▼
//!                                      JSON records            JSON/CSV/Markdown emitters,
//!                                                              console tables, BENCH_*.json
//! ```
//!
//! * [`record`] — [`RunRecord`] (full `(scenario, workload, protocol, seed,
//!   duration)` provenance + stats + wall-clock) and [`ReportSpec`], which
//!   aggregates records across seeds into [`CellSummary`]s
//!   (mean/stddev/min/max/95 % CI per metric).
//! * [`metrics`] — the registry enumerating every metric's key, unit and
//!   definition; emitters and the README glossary both derive from it.
//! * [`emit`] — schema-versioned JSON (with a parser: `parse ∘ emit` is the
//!   identity on records, probe sections included), long-format CSV,
//!   paper-style Markdown and the `BENCH_*.json` trajectory format,
//!   selected via repeatable `--out` flags ([`OutputSpec`]).
//! * [`json`] — the offline JSON document model the emitters build on.
//!
//! This module additionally keeps the legacy figure-table helpers
//! ([`Series`], [`print_series_table`], [`write_csv`]) and the shared CLI
//! argument parser ([`CommonArgs`]).
//!
//! ```
//! use dtn_bench::report::{ReportSpec, RunRecord};
//! use dtn_bench::{run_spec, ProtocolSpec, RunSpec, ScenarioCache};
//!
//! // Spec parsing → run → report: the whole pipeline in five lines.
//! let spec = RunSpec::new("EER", 8, ProtocolSpec::parse("eer:lambda=4").unwrap())
//!     .with_duration(300.0);
//! let cache = ScenarioCache::new();
//! let ps = cache.get_spec(&spec.scenario, &spec.workload, 1, spec.duration);
//! let stats = run_spec(&cache, &spec, 1);
//! let mut report = ReportSpec::new("quick report");
//! report.push(RunRecord::capture(&spec, &ps, 1, &stats, 0.0));
//!
//! // Emit → parse is the identity on the records.
//! let text = report.to_json_string();
//! assert_eq!(ReportSpec::from_json_str(&text).unwrap(), report);
//! assert!(report.to_markdown().contains("EER"));
//! ```

pub mod diff;
pub mod emit;
pub mod json;
pub mod metrics;
pub mod record;

pub use diff::{diff_reports, diff_traces, DiffOutcome, Drift, DriftClass};
pub use emit::{ensure_parent, validate_document, write_text, OutputFormat, OutputSpec};
pub use metrics::{glossary_markdown, MetricDef, HEADLINE, METRICS};
pub use record::{CellSummary, MetricSummary, ReportSpec, RunRecord, SCHEMA_VERSION};

use crate::probes::ProbeSpec;
use dtn_mobility::{ScenarioSpec, TraceSource, WorkloadSpec};
use dtn_sim::MetricPoint;
use std::fmt::Write as _;
use std::path::Path;

/// One plotted series: a label plus a point per x value.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, point)` pairs, in x order.
    pub points: Vec<(u32, MetricPoint)>,
}

/// Renders the three panels of a paper figure (delivery ratio, latency,
/// goodput) as aligned text tables, one row per series.
pub fn print_series_table(title: &str, xs: &[u32], series: &[Series]) -> String {
    let mut out = String::new();
    for (panel, extract) in [
        ("delivery ratio", 0usize),
        ("latency (s)", 1),
        ("goodput", 2),
    ] {
        let _ = writeln!(out, "\n{title} — {panel}");
        let _ = write!(out, "{:<16}", "N");
        for x in xs {
            let _ = write!(out, "{x:>10}");
        }
        let _ = writeln!(out);
        for s in series {
            let _ = write!(out, "{:<16}", s.label);
            for (_, p) in &s.points {
                let v = match extract {
                    0 => p.delivery_ratio,
                    1 => p.latency,
                    _ => p.goodput,
                };
                if extract == 1 {
                    let _ = write!(out, "{v:>10.1}");
                } else {
                    let _ = write!(out, "{v:>10.4}");
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Writes the series as CSV:
/// `series,n_nodes,delivery_ratio,latency,goodput,runs`.
///
/// Parent directories are created as needed; failures — including a parent
/// that exists but is not a directory, and a bare filename whose empty
/// `parent()` used to make the old implementation error spuriously — come
/// back as an [`std::io::Error`] naming the offending path (see
/// [`write_text`]).
pub fn write_csv(path: &Path, series: &[Series]) -> std::io::Result<()> {
    let mut out = String::from("series,n_nodes,delivery_ratio,latency,goodput,runs\n");
    for s in series {
        for (x, p) in &s.points {
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.3},{:.6},{}",
                s.label, x, p.delivery_ratio, p.latency, p.goodput, p.runs
            );
        }
    }
    write_text(path, &out)
}

/// Parses common CLI flags shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Seeds per point.
    pub seeds: u32,
    /// Node counts to sweep.
    pub node_counts: Vec<u32>,
    /// Scenario family argument (`--scenario`), resolved per node count via
    /// [`CommonArgs::scenario_for`].
    pub scenario: String,
    /// Message workload (`--workload`).
    pub workload: WorkloadSpec,
    /// Horizon override in seconds (`--duration`); `None` = each scenario's
    /// default. Rejected for trace replay (a recording runs at its native
    /// horizon).
    pub duration: Option<f64>,
    /// Report outputs (`--out FORMAT:PATH`, repeatable). When empty, each
    /// binary falls back to its default output files.
    pub outs: Vec<OutputSpec>,
    /// Probes attached to every run (`--probe SPEC`, repeatable; see
    /// [`crate::probes`]). Binaries with a curve mode (fig2) add their own
    /// default when this is empty.
    pub probes: Vec<ProbeSpec>,
    /// Print the paper's settings table and exit.
    pub print_settings: bool,
    /// Sweep worker threads (`--threads`); `None` = the
    /// [`SweepConfig`](crate::SweepConfig) default (available parallelism).
    pub threads: Option<usize>,
    /// Per-run contact-scan threads (`--run-threads`), forwarded to every
    /// spec via [`CommonArgs::configure`]; `None` = auto.
    pub run_threads: Option<u32>,
    /// Observer drain (`--drain inline|ring[:CAP]`): `Some(capacity)`
    /// routes every run's probes through the off-thread ring drain,
    /// `None` keeps inline dispatch. Results are bitwise identical either
    /// way — all three of these are execution knobs, never cell identity.
    pub ring_drain: Option<usize>,
    /// Result-store root override (`--store DIR`); `None` = the default
    /// root ([`crate::DEFAULT_STORE_ROOT`]) unless [`CommonArgs::no_store`].
    pub store: Option<String>,
    /// Disable the persistent result store entirely (`--no-store`): every
    /// cell computes cold and nothing is published.
    pub no_store: bool,
}

impl CommonArgs {
    /// Parses `--full`, `--seeds K`, `--nodes a,b,c`, `--quick`,
    /// `--scenario FAMILY`, `--workload KIND`, `--duration SECS`,
    /// `--out FORMAT:PATH` (repeatable), `--probe SPEC` (repeatable),
    /// `--print-settings` from `args`.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = CommonArgs {
            seeds: 3,
            node_counts: vec![40, 80, 120, 160, 200, 240],
            scenario: "paper".into(),
            workload: WorkloadSpec::PaperUniform,
            duration: None,
            outs: Vec::new(),
            probes: Vec::new(),
            print_settings: false,
            threads: None,
            run_threads: None,
            ring_drain: None,
            store: None,
            no_store: false,
        };
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.seeds = 10,
                "--quick" => {
                    out.seeds = 1;
                    out.node_counts = vec![40, 120, 200];
                }
                "--seeds" => {
                    let v = it.next().ok_or("--seeds needs a value")?;
                    out.seeds = v.parse().map_err(|e| format!("--seeds: {e}"))?;
                }
                "--nodes" => {
                    let v = it.next().ok_or("--nodes needs a value")?;
                    out.node_counts = v
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("--nodes: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--scenario" => {
                    let v = it.next().ok_or("--scenario needs a value")?;
                    // Validate now — including the trace file's existence —
                    // so typos fail before a sweep starts, not in a worker
                    // thread mid-matrix.
                    if let ScenarioSpec::TraceReplay {
                        source: TraceSource::Path(p),
                    } = ScenarioSpec::parse(&v, 2)?
                    {
                        std::fs::metadata(&p).map_err(|e| format!("cannot read {p}: {e}"))?;
                    }
                    out.scenario = v;
                }
                "--workload" => {
                    let v = it.next().ok_or("--workload needs a value")?;
                    out.workload = WorkloadSpec::parse(&v)?;
                }
                "--duration" => {
                    let v = it.next().ok_or("--duration needs a value")?;
                    let d: f64 = v.parse().map_err(|e| format!("--duration: {e}"))?;
                    if !d.is_finite() || d <= 0.0 {
                        return Err(format!("--duration: need a positive horizon, got {v}"));
                    }
                    out.duration = Some(d);
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs FORMAT:PATH")?;
                    out.outs.push(OutputSpec::parse(&v)?);
                }
                "--probe" => {
                    let v = it.next().ok_or("--probe needs a spec")?;
                    out.probes.push(ProbeSpec::parse(&v)?);
                }
                "--print-settings" => out.print_settings = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let t: usize = v.parse().map_err(|e| format!("--threads: {e}"))?;
                    out.threads = Some(t);
                }
                "--run-threads" => {
                    let v = it.next().ok_or("--run-threads needs a value")?;
                    let t: u32 = v.parse().map_err(|e| format!("--run-threads: {e}"))?;
                    out.run_threads = Some(t);
                }
                "--drain" => {
                    let v = it.next().ok_or("--drain needs inline|ring[:CAP]")?;
                    out.ring_drain = Self::parse_drain(&v)?;
                }
                "--store" => {
                    let v = it.next().ok_or("--store needs a directory")?;
                    out.store = Some(v);
                }
                "--no-store" => out.no_store = true,
                "--help" | "-h" => {
                    return Err("usage: [--full|--quick] [--seeds K] \
                                [--nodes a,b,c] [--scenario paper|rwp|trace:<path>] \
                                [--workload paper|hotspot|bursty] [--duration SECS] \
                                [--out json:PATH|csv:PATH|md:PATH ...] \
                                [--probe timeseries[:dt=SECS]|latency ...] \
                                [--threads N] [--run-threads N] \
                                [--drain inline|ring[:CAP]] \
                                [--store DIR|--no-store] \
                                [--print-settings]"
                        .into())
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if out.seeds == 0 || out.node_counts.is_empty() {
            return Err("need at least one seed and one node count".into());
        }
        if out.duration.is_some()
            && ScenarioSpec::parse(&out.scenario, 2)?
                .default_duration()
                .is_none()
        {
            return Err(
                "--duration cannot be combined with trace replay: a replayed trace runs at \
                 its recorded horizon"
                    .into(),
            );
        }
        Ok(out)
    }

    /// The scenario spec for the sweep's `n`-node point. Trace replay
    /// ignores `n` (the recording fixes the node count).
    pub fn scenario_for(&self, n: u32) -> ScenarioSpec {
        ScenarioSpec::parse(&self.scenario, n).expect("validated at parse time")
    }

    /// Parses a `--drain` value: `inline` (the default dispatch) or
    /// `ring[:CAP]` for the off-thread observer drain (`CAP` defaults to
    /// 16 in-flight batches; minimum 1).
    pub fn parse_drain(v: &str) -> Result<Option<usize>, String> {
        match v {
            "inline" => Ok(None),
            "ring" => Ok(Some(16)),
            _ => match v.strip_prefix("ring:") {
                Some(cap) => {
                    let c: usize = cap.parse().map_err(|e| format!("--drain ring:CAP: {e}"))?;
                    Ok(Some(c.max(1)))
                }
                None => Err(format!("--drain: expected inline|ring[:CAP], got {v}")),
            },
        }
    }

    /// The matrix sweep configuration these args select (`--seeds`,
    /// `--threads`).
    pub fn sweep_config(&self) -> crate::SweepConfig {
        let mut cfg = crate::SweepConfig {
            seeds: self.seeds,
            ..crate::SweepConfig::default()
        };
        if let Some(t) = self.threads {
            cfg.threads = t;
        }
        cfg
    }

    /// Applies the shared per-spec flags to one sweep cell: workload,
    /// probes, duration override, and the execution knobs
    /// (`--run-threads`, `--drain`).
    pub fn configure(&self, spec: crate::RunSpec) -> crate::RunSpec {
        let mut spec = spec
            .with_workload(self.workload.clone())
            .with_probes(self.probes.clone());
        if let Some(d) = self.duration {
            spec = spec.with_duration(d);
        }
        if let Some(t) = self.run_threads {
            spec = spec.with_run_threads(t);
        }
        if let Some(c) = self.ring_drain {
            spec = spec.with_ring_drain(c);
        }
        spec
    }

    /// Opens the persistent result store these args select: `None` under
    /// `--no-store` or when the root cannot be opened (with a warning —
    /// the sweep then runs cold; see [`crate::store::resolve_store`]).
    pub fn open_store(&self) -> Option<crate::store::CellStore> {
        crate::store::resolve_store(self.store.as_deref(), self.no_store)
    }

    /// The report outputs to write: the `--out` targets when given,
    /// otherwise `defaults` (in the same `FORMAT:PATH` grammar).
    pub fn outs_or(&self, defaults: &[&str]) -> Vec<OutputSpec> {
        if self.outs.is_empty() {
            defaults
                .iter()
                .map(|s| OutputSpec::parse(s).expect("builtin default output"))
                .collect()
        } else {
            self.outs.clone()
        }
    }
}

/// The paper's §V-A settings table, printed by every figure binary with
/// `--print-settings`.
pub fn settings_table() -> &'static str {
    "Simulation settings (paper §V-A):\n\
       mobility            vehicular map-driven (synthetic downtown, bus lines)\n\
       node speed          2.7–13.9 m/s\n\
       transmission speed  2 Mbit/s\n\
       transmission range  10 m\n\
       buffer space        1 MB per node\n\
       message size        25 KB\n\
       message interval    uniform 25–35 s\n\
       TTL                 20 min\n\
       alpha               0.28\n\
       sim duration        10 000 s\n\
       nodes               40..240 step 40\n\
       lambda              10 (fig. 2) / 6–12 (figs. 3–4)\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series> {
        vec![Series {
            label: "EER".into(),
            points: vec![
                (
                    40,
                    MetricPoint {
                        delivery_ratio: 0.5,
                        latency: 400.0,
                        goodput: 0.05,
                        relayed: 100.0,
                        control_mb: 1.0,
                        runs: 3,
                    },
                ),
                (
                    80,
                    MetricPoint {
                        delivery_ratio: 0.6,
                        latency: 380.0,
                        goodput: 0.04,
                        relayed: 120.0,
                        control_mb: 2.0,
                        runs: 3,
                    },
                ),
            ],
        }]
    }

    #[test]
    fn table_contains_all_panels() {
        let t = print_series_table("Fig. 2", &[40, 80], &sample_series());
        assert!(t.contains("delivery ratio"));
        assert!(t.contains("latency (s)"));
        assert!(t.contains("goodput"));
        assert!(t.contains("EER"));
        assert!(t.contains("0.5000"));
        assert!(t.contains("400.0"));
    }

    #[test]
    fn csv_round_trip_format() {
        let dir = std::env::temp_dir().join("dtn_bench_test_csv");
        let path = dir.join("fig.csv");
        write_csv(&path, &sample_series()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("series,n_nodes,"));
        assert!(text.contains("EER,40,0.500000,400.000,0.050000,3"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn args_parse_defaults_and_flags() {
        let d = CommonArgs::parse(std::iter::empty()).unwrap();
        assert_eq!(d.seeds, 3);
        assert_eq!(d.node_counts, vec![40, 80, 120, 160, 200, 240]);
        let f = CommonArgs::parse(["--full".to_string()].into_iter()).unwrap();
        assert_eq!(f.seeds, 10);
        let q = CommonArgs::parse(["--quick".to_string()].into_iter()).unwrap();
        assert_eq!(q.seeds, 1);
        assert_eq!(q.node_counts.len(), 3);
        let n = CommonArgs::parse(
            [
                "--nodes".to_string(),
                "40,80".to_string(),
                "--seeds".to_string(),
                "5".to_string(),
            ]
            .into_iter(),
        )
        .unwrap();
        assert_eq!(n.node_counts, vec![40, 80]);
        assert_eq!(n.seeds, 5);
        assert!(CommonArgs::parse(["--bogus".to_string()].into_iter()).is_err());
        assert!(CommonArgs::parse(["--seeds".to_string(), "0".to_string()].into_iter()).is_err());
    }

    /// `--store DIR` / `--no-store` parse, default to "no override, store
    /// on", and `open_store` honors the disable switch.
    #[test]
    fn store_flags_parse_and_resolve() {
        let d = CommonArgs::parse(std::iter::empty()).unwrap();
        assert_eq!(d.store, None);
        assert!(!d.no_store);

        let s =
            CommonArgs::parse(["--store".to_string(), "results/alt-store".to_string()].into_iter())
                .unwrap();
        assert_eq!(s.store.as_deref(), Some("results/alt-store"));

        let n = CommonArgs::parse(["--no-store".to_string()].into_iter()).unwrap();
        assert!(n.no_store);
        assert!(n.open_store().is_none(), "--no-store disables the store");
        assert!(CommonArgs::parse(["--store".to_string()].into_iter()).is_err());
    }

    /// The execution flags parse, reach `SweepConfig`/`RunSpec` through the
    /// helpers, and never perturb cell identity.
    #[test]
    fn execution_flags_parse_and_configure() {
        let args = CommonArgs::parse(
            ["--threads", "4", "--run-threads", "2", "--drain", "ring:8"]
                .map(String::from)
                .into_iter(),
        )
        .unwrap();
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.run_threads, Some(2));
        assert_eq!(args.ring_drain, Some(8));
        assert_eq!(args.sweep_config().threads, 4);
        assert_eq!(args.sweep_config().seeds, 3);

        let base = crate::RunSpec::new("EER", 8, crate::ProtocolSpec::parse("eer").unwrap());
        let spec = args.configure(base.clone());
        assert_eq!(spec.run_threads, Some(2));
        assert_eq!(spec.ring_drain, Some(8));
        assert_eq!(spec.cell_key(1), args.configure(base).cell_key(1));

        // The drain grammar: inline, bare ring (default capacity), ring:CAP
        // (clamped to >= 1), everything else refused.
        assert_eq!(CommonArgs::parse_drain("inline").unwrap(), None);
        assert_eq!(CommonArgs::parse_drain("ring").unwrap(), Some(16));
        assert_eq!(CommonArgs::parse_drain("ring:0").unwrap(), Some(1));
        assert!(CommonArgs::parse_drain("bogus").is_err());
        assert!(CommonArgs::parse_drain("ring:x").is_err());
    }

    #[test]
    fn duration_flag_parses_and_rejects_trace_replay() {
        let d =
            CommonArgs::parse(["--duration".to_string(), "1500".to_string()].into_iter()).unwrap();
        assert_eq!(d.duration, Some(1500.0));
        assert!(
            CommonArgs::parse(["--duration".to_string(), "0".to_string()].into_iter()).is_err()
        );
        assert!(
            CommonArgs::parse(["--duration".to_string(), "-5".to_string()].into_iter()).is_err()
        );
        // A replayed trace runs at its native horizon; combining it with a
        // duration override is a parse-time error, whatever the flag order.
        let err = CommonArgs::parse(
            [
                "--duration".to_string(),
                "1500".to_string(),
                "--scenario".to_string(),
                "trace:/dev/null".to_string(),
            ]
            .into_iter(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn out_flag_parses_and_defaults_apply() {
        let a = CommonArgs::parse(
            [
                "--out".to_string(),
                "json:results/a.json".to_string(),
                "--out".to_string(),
                "md:a.md".to_string(),
            ]
            .into_iter(),
        )
        .unwrap();
        assert_eq!(a.outs.len(), 2);
        assert_eq!(a.outs_or(&["csv:default.csv"]).len(), 2, "--out wins");
        let d = CommonArgs::parse(std::iter::empty()).unwrap();
        let outs = d.outs_or(&["csv:default.csv"]);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].format, OutputFormat::Csv);
        assert!(CommonArgs::parse(["--out".to_string(), "tsv:x".to_string()].into_iter()).is_err());
    }

    #[test]
    fn settings_mention_paper_constants() {
        let s = settings_table();
        assert!(s.contains("2 Mbit/s"));
        assert!(s.contains("10 m"));
        assert!(s.contains("0.28"));
    }
}
